PYTHON ?= python
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: test benchmarks bench bench-smoke specs-smoke store-smoke avf-smoke avf-golden kernel-smoke batch-smoke chaos-smoke serve-smoke serve-chaos-smoke serve-bench

test:
	$(PYTHON) -m pytest tests -q

benchmarks:
	$(PYTHON) -m pytest benchmarks -q

# Record/append performance baselines (writes BENCH_pipeline.json / BENCH_ga.json).
bench:
	$(PYTHON) -m repro bench

# Tier-2 perf regression gate: fails if the simulator regresses >30% vs the
# recorded BENCH_pipeline.json baseline (see PERFORMANCE.md).
bench-smoke:
	REPRO_PERF_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_perf_simulator.py -m perf_smoke -q

# Tier-2 spec-file gate: validate + run every examples/specs/*.json through
# the declarative run API at quick scale (see EXPERIMENTS.md).
specs-smoke:
	REPRO_SPECS_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_specs_smoke.py -m specs_smoke -q

# Tier-2 persistence gate: run -> interrupt -> resume -> byte-compare against
# an uninterrupted run, plus the shard/merge CLI round trip (EXPERIMENTS.md).
store-smoke:
	REPRO_STORE_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_store_smoke.py -m store_smoke -q

# Tier-2 accounting gate: rerun the small-scale workload matrix and
# byte-compare per-structure AVF / group SER against the checked-in golden
# (benchmarks/golden_avf.json; see ARCHITECTURE.md).
avf-smoke:
	REPRO_AVF_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_avf_smoke.py -m avf_smoke -q

# Regenerate the AVF golden — only for INTENTIONAL accounting changes.
avf-golden:
	$(PYTHON) -c "from repro.avf.goldens import write_golden; write_golden()"

# Tier-2 kernel gate: specialized-kernel vs interpreter parity on the golden
# workload matrix, plus a kernel throughput floor vs BENCH_pipeline.json
# (see PERFORMANCE.md and ARCHITECTURE.md, "Kernel lifecycle").
kernel-smoke:
	REPRO_KERNEL_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_kernel_smoke.py -m kernel_smoke -q

# Tier-2 batch-plane gate: population AVF/SER byte-identical between the
# batch kernel backend and the interpreter, plus a batch-vs-per-genome
# speedup floor against the BENCH_ga.json baseline (see PERFORMANCE.md and
# ARCHITECTURE.md, "Batch evaluation plane").
batch-smoke:
	REPRO_BATCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_batch_smoke.py -m batch_smoke -q

# Tier-2 fault-tolerance gate: a jobs=4 GA under injected worker kills and a
# torn store write must finish byte-identical to a clean serial run, with
# retries/restarts recorded in provenance (see ARCHITECTURE.md, "Failure
# semantics").
chaos-smoke:
	REPRO_CHAOS_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_chaos_smoke.py -m chaos_smoke -q

# Tier-2 evaluation-service gate: a real `repro serve` daemon subprocess must
# serve every example spec byte-identical to a local Session run, survive
# three concurrent clients mixing duplicate/unique/cancelled submissions,
# answer store hits without queueing, and shut down cleanly — exit code 0,
# `repro fsck` clean, no temp debris (see EXPERIMENTS.md).
serve-smoke:
	REPRO_SERVE_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_serve_smoke.py -m serve_smoke -q

# Tier-2 durable-service gate: a daemon SIGKILLed with >=4 queued + 1 running
# job, restarted on the same store + journal, must lose zero digests and serve
# every result byte-identical to a clean local run; chaos-hung evaluations
# must be quarantined by the watchdog (daemon exit code 3); random connection
# drops must be survived by client reconnect/failover (see EXPERIMENTS.md,
# "Failure semantics").
serve-chaos-smoke:
	REPRO_SERVE_CHAOS_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_serve_chaos_smoke.py -m serve_chaos_smoke -q

# Record/append service latency+throughput baselines (writes BENCH_serve.json).
serve-bench:
	$(PYTHON) -m repro loadtest
