"""Dependency-free registry machinery shared by every pluggable subsystem.

:class:`Registry` and :class:`RegistryError` used to live in
:mod:`repro.api.registry`; they moved here so core packages (e.g. the
vulnerability model in :mod:`repro.vuln`, which must be importable before
the heavy ``repro.api`` package initialises) can publish registries with the
same machinery.  ``repro.api.registry`` re-exports everything and hosts the
component registry *instances*.
"""

from __future__ import annotations

import difflib
from typing import Callable, Iterator, Optional


def suggest(name: str, known) -> str:
    """A ``"; did you mean 'x'?"`` suffix for error messages (or ``""``)."""
    matches = difflib.get_close_matches(str(name), list(known), n=1, cutoff=0.4)
    return f"; did you mean {matches[0]!r}?" if matches else ""


class RegistryError(KeyError):
    """Lookup of a name that is not registered.

    ``str()`` returns the human-readable message (unlike a plain
    :class:`KeyError`, which quotes its argument), so CLI error paths can
    surface it directly.
    """

    def __init__(self, message: str, suggestion: Optional[str] = None) -> None:
        super().__init__(message)
        self.message = message
        self.suggestion = suggestion

    def __str__(self) -> str:
        return self.message


class Registry:
    """An ordered name -> factory mapping for one kind of component.

    ``kind`` is a human-readable description used in error messages
    (e.g. ``"machine config"``).  Insertion order is preserved so CLI
    ``choices`` render in a deliberate order rather than alphabetically.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable] = {}

    # ------------------------------------------------------------ mutation

    def register(self, name: str, factory: Optional[Callable] = None, *, replace: bool = False):
        """Register ``factory`` under ``name``; usable as a decorator.

        Duplicate names raise ``ValueError`` unless ``replace=True`` — a
        silent overwrite would make scenario results depend on import order.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} registry names must be non-empty strings, got {name!r}")

        def decorator(fn: Callable) -> Callable:
            if not replace and name in self._entries:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._entries[name] = fn
            return fn

        if factory is not None:
            return decorator(factory)
        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registration (used by tests and plugin teardown)."""
        self._entries.pop(name, None)

    # ------------------------------------------------------------- lookups

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``.

        Raises :class:`RegistryError` with a did-you-mean suggestion for
        unknown names.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise self._unknown(name) from None

    def create(self, name: str, *args: object, **kwargs: object):
        """Instantiate the component: ``get(name)(*args, **kwargs)``."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        """Registered names in registration order."""
        return list(self._entries)

    def items(self) -> list[tuple[str, Callable]]:
        return list(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, names={self.names()!r})"

    # ------------------------------------------------------------- errors

    def _unknown(self, name: str) -> RegistryError:
        known = self.names()
        matches = difflib.get_close_matches(str(name), known, n=1, cutoff=0.4)
        suggestion = matches[0] if matches else None
        message = f"unknown {self.kind} {name!r}{suggest(name, known)}"
        if known:
            message += f" (registered: {', '.join(known)})"
        else:
            message += f" (no {self.kind} components registered)"
        return RegistryError(message, suggestion=suggestion)
