"""Synthetic program construction from a workload profile."""

from __future__ import annotations

from repro.isa.instructions import (
    ARCH_REG_COUNT,
    Instruction,
    OperandWidth,
    make_alu,
    make_branch,
    make_load,
    make_mul,
    make_nop,
    make_prefetch,
    make_store,
)
from repro.isa.memoryref import AddressPattern, RandomPattern, StridedPattern
from repro.isa.program import BranchBehavior, Program, WarmupRegion
from repro.uarch.config import MachineConfig
from repro.utils.rng import DeterministicRng
from repro.workloads.profiles import WorkloadProfile

#: Register roles: r1 holds the streaming pointer, r2 the loop index,
#: r3..r31 form the general pool.
_STREAM_REG = 1
_INDEX_REG = 2
_POOL = list(range(3, ARCH_REG_COUNT))

#: Streaming regions are placed far above the working set so they never alias.
_STREAM_REGION_BASE = 1 << 30
_STREAM_REGION_BYTES = 8 * 1024 * 1024


def build_workload(
    profile: WorkloadProfile, config: MachineConfig, seed: int = 0
) -> Program:
    """Build a synthetic :class:`Program` realising one workload profile.

    The generated loop body follows the profile's instruction mix, ILP shape,
    memory behaviour (resident working set plus optional streaming accesses),
    branch behaviour, operand widths and un-ACE content.  The program is
    deterministic for a given ``(profile, config, seed)``.
    """
    rng = DeterministicRng(seed).spawn("workload", profile.name)
    body: list[Instruction] = []
    branch_behaviors: dict[int, BranchBehavior] = {}

    counts = _instruction_counts(profile)
    line_bytes = config.dl1.line_bytes

    pool_cursor = 0

    def next_register() -> int:
        nonlocal pool_cursor
        register = _POOL[pool_cursor % len(_POOL)]
        pool_cursor += 1
        return register

    def operand_width() -> OperandWidth:
        if rng.coin(profile.narrow_width_fraction):
            return OperandWidth.WORD32
        return OperandWidth.WORD64

    def is_dead() -> bool:
        return rng.coin(profile.dead_fraction)

    def data_pattern(for_store: bool) -> AddressPattern:
        if rng.coin(profile.streaming_fraction):
            return StridedPattern(
                base=_STREAM_REGION_BASE + (rng.randint(0, 63) * line_bytes),
                stride=line_bytes,
                region=_STREAM_REGION_BYTES,
            )
        if rng.coin(profile.random_access_fraction):
            return RandomPattern(base=0, region=profile.working_set_bytes, alignment=8)
        stride = rng.choice([8, 8, 16, line_bytes])
        offset = rng.randint(0, max(0, profile.working_set_bytes // 8 - 1)) * 8
        return StridedPattern(
            base=offset % profile.working_set_bytes,
            stride=stride,
            region=profile.working_set_bytes,
        )

    def make_arithmetic(dest: int, srcs: list[int], ace: bool) -> Instruction:
        width = operand_width()
        if rng.coin(profile.long_latency_fraction):
            return make_mul(dest, srcs, width=width, ace=ace, label="arith")
        return make_alu(dest, srcs, width=width, ace=ace, label="arith")

    # ------------------------------------------------------ loads & chains
    load_dests: list[int] = []
    produced_values: list[int] = []
    chain_budget = counts["arithmetic"]

    streams: list[list[Instruction]] = []
    for load_index in range(counts["loads"]):
        dest = next_register()
        load_dests.append(dest)
        ace = not is_dead()
        stream: list[Instruction] = [
            make_load(dest, data_pattern(for_store=False), srcs=[_INDEX_REG],
                      width=operand_width(), ace=ace, label="load")
        ]
        # Attach a dependence chain of arithmetic behind some loads.
        chain_length = 0
        if chain_budget > 0:
            chain_length = min(chain_budget, max(0, round(rng.gauss(profile.chain_length, 0.75))))
            chain_budget -= chain_length
        current = dest
        for _ in range(chain_length):
            chain_dest = next_register()
            stream.append(make_arithmetic(chain_dest, [current], ace=ace and not is_dead()))
            current = chain_dest
        produced_values.append(current)
        streams.append(stream)

    # Remaining arithmetic not attached to loads (register-resident compute).
    while chain_budget > 0:
        dest = next_register()
        source = produced_values[-1] if produced_values and rng.coin(0.5) else _INDEX_REG
        length = min(chain_budget, max(1, round(rng.gauss(profile.chain_length, 0.75))))
        chain_budget -= length
        stream = []
        current = source
        for _ in range(length):
            chain_dest = next_register()
            stream.append(make_arithmetic(chain_dest, [current], ace=not is_dead()))
            current = chain_dest
        produced_values.append(current)
        streams.append(stream)

    # ------------------------------------------------------------- stores
    for store_index in range(counts["stores"]):
        if produced_values:
            value = produced_values[store_index % len(produced_values)]
        else:
            value = _INDEX_REG
        streams.append(
            [
                make_store(
                    data_pattern(for_store=True),
                    srcs=[value, _INDEX_REG],
                    width=operand_width(),
                    ace=not is_dead(),
                    label="store",
                )
            ]
        )

    # ---------------------------------------------------------- prefetches
    for _ in range(counts["prefetches"]):
        streams.append([make_prefetch(data_pattern(for_store=False), label="prefetch")])

    # --------------------------------------------------------------- nops
    for _ in range(counts["nops"]):
        streams.append([make_nop(label="nop")])

    # ---------------------------------------------------------- scheduling
    body.append(make_alu(_INDEX_REG, [_INDEX_REG], label="index_update"))
    scheduled = _interleave(streams, profile.dependency_distance, rng)
    body.extend(scheduled)

    # ------------------------------------------------------------ branches
    # Conditional branches are spread through the body; the loop-closing
    # branch at the end is always present.
    interior_branches = max(0, counts["branches"] - 1)
    if interior_branches:
        positions = sorted(
            rng.sample(range(1, len(body) + interior_branches), interior_branches)
        )
        for offset, position in enumerate(positions):
            predictable = rng.coin(profile.branch_predictability)
            taken_probability = 0.95 if predictable else profile.branch_taken_probability
            source = produced_values[offset % len(produced_values)] if produced_values else _INDEX_REG
            body.insert(
                min(position, len(body)),
                make_branch(srcs=[source], taken_probability=taken_probability, label="branch"),
            )
    branch_index = len(body)
    body.append(make_branch(srcs=[_INDEX_REG], label="loop_branch"))
    branch_behaviors[branch_index] = BranchBehavior.LOOP_CLOSING

    warmup = [
        WarmupRegion(
            base=0,
            size_bytes=profile.working_set_bytes,
            dirty=True,
            ace=True,
            word_fraction=profile.dirty_working_set_fraction,
            recurrent=False,
        )
    ]

    return Program(
        name=profile.name,
        body=body,
        iterations=10**9,
        branch_behaviors=branch_behaviors,
        warmup_regions=warmup,
        metadata={
            "suite": profile.suite.value,
            "frontend_miss_rate": profile.frontend_miss_rate,
            "frontend_miss_penalty": profile.frontend_miss_penalty,
            "working_set_bytes": profile.working_set_bytes,
        },
    )


def _instruction_counts(profile: WorkloadProfile) -> dict[str, int]:
    """Integer instruction counts per body for one profile."""
    body = profile.body_size
    loads = int(round(profile.load_fraction * body))
    stores = int(round(profile.store_fraction * body))
    branches = max(1, int(round(profile.branch_fraction * body)))
    nops = int(round(profile.nop_fraction * body))
    prefetches = int(round(profile.prefetch_fraction * body))
    used = loads + stores + branches + nops + prefetches + 1  # +1 index update
    arithmetic = max(0, body - used)
    return {
        "loads": loads,
        "stores": stores,
        "branches": branches,
        "nops": nops,
        "prefetches": prefetches,
        "arithmetic": arithmetic,
    }


def _interleave(
    streams: list[list[Instruction]], dependency_distance: int, rng: DeterministicRng
) -> list[Instruction]:
    """Interleave dependence streams (same scheme as the stressmark codegen)."""
    if not streams:
        return []
    order = list(range(len(streams)))
    rng.shuffle(order)
    shuffled = [list(streams[index]) for index in order]
    scheduled: list[Instruction] = []
    batch_size = max(1, dependency_distance)
    for start in range(0, len(shuffled), batch_size):
        batch = [stream for stream in shuffled[start : start + batch_size] if stream]
        while batch:
            for stream in list(batch):
                scheduled.append(stream.pop(0))
                if not stream:
                    batch.remove(stream)
    return scheduled
