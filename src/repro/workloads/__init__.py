"""Synthetic workload proxies for SPEC CPU2006 and MiBench.

The paper evaluates its stressmark against 11 SPEC CPU2006 integer programs,
10 SPEC CPU2006 floating-point programs and 12 MiBench programs, simulated
for 100 M instructions at SimPoint-selected regions.  Those binaries (and an
Alpha cross-compilation toolchain) are not redistributable, so this package
provides *synthetic proxies*: per-program workload profiles whose instruction
mix, working-set size, memory behaviour, branch behaviour, ILP and un-ACE
fraction are calibrated to the qualitative characterisation the paper
reports (integer codes with moderate miss rates and branchy control flow,
floating-point codes with higher ILP and larger streaming working sets,
MiBench kernels with small working sets and low SER).  See DESIGN.md for the
substitution rationale.
"""

from repro.workloads.profiles import WorkloadProfile, WorkloadSuite
from repro.workloads.synthetic import build_workload
from repro.workloads.suite import (
    all_profiles,
    mibench_profiles,
    profile_by_name,
    spec_fp_profiles,
    spec_int_profiles,
)

__all__ = [
    "WorkloadProfile",
    "WorkloadSuite",
    "build_workload",
    "all_profiles",
    "mibench_profiles",
    "profile_by_name",
    "spec_fp_profiles",
    "spec_int_profiles",
]
