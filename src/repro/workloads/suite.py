"""The 33 workload proxies used as the paper's SER-coverage baseline.

Eleven SPEC CPU2006 integer proxies, ten SPEC CPU2006 floating-point proxies
and twelve MiBench proxies.  Parameter values are calibrated to the
qualitative behaviour the paper reports (and to well-known characterisations
of the suites): integer codes are branchy with moderate working sets, FP
codes have higher ILP, more long-latency arithmetic and larger streaming
footprints (and hence the higher queue SER the paper observes), and MiBench
kernels have small working sets and low SER.  The absolute values are not —
and cannot be — trace-accurate; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from functools import lru_cache

from repro.workloads.profiles import WorkloadProfile, WorkloadSuite

_KB = 1024
_MB = 1024 * 1024


def _int_profile(name: str, **overrides: object) -> WorkloadProfile:
    """SPEC CPU2006 integer baseline parameters."""
    parameters: dict[str, object] = dict(
        suite=WorkloadSuite.SPEC_INT,
        load_fraction=0.26,
        store_fraction=0.11,
        branch_fraction=0.17,
        long_latency_fraction=0.08,
        chain_length=2.5,
        dependency_distance=3,
        working_set_bytes=2 * _MB,
        streaming_fraction=0.10,
        random_access_fraction=0.35,
        branch_predictability=0.90,
        branch_taken_probability=0.55,
        dead_fraction=0.10,
        nop_fraction=0.03,
        prefetch_fraction=0.01,
        narrow_width_fraction=0.45,
        frontend_miss_rate=0.010,
        body_size=160,
        dirty_working_set_fraction=0.5,
    )
    parameters.update(overrides)
    return WorkloadProfile(name=name, **parameters)


def _fp_profile(name: str, **overrides: object) -> WorkloadProfile:
    """SPEC CPU2006 floating-point baseline parameters."""
    parameters: dict[str, object] = dict(
        suite=WorkloadSuite.SPEC_FP,
        load_fraction=0.30,
        store_fraction=0.12,
        branch_fraction=0.04,
        long_latency_fraction=0.45,
        chain_length=3.5,
        dependency_distance=4,
        working_set_bytes=4 * _MB,
        streaming_fraction=0.30,
        random_access_fraction=0.10,
        branch_predictability=0.985,
        branch_taken_probability=0.85,
        dead_fraction=0.05,
        nop_fraction=0.02,
        prefetch_fraction=0.02,
        narrow_width_fraction=0.10,
        frontend_miss_rate=0.004,
        body_size=192,
        dirty_working_set_fraction=0.6,
    )
    parameters.update(overrides)
    return WorkloadProfile(name=name, **parameters)


def _mibench_profile(name: str, **overrides: object) -> WorkloadProfile:
    """MiBench baseline parameters."""
    parameters: dict[str, object] = dict(
        suite=WorkloadSuite.MIBENCH,
        load_fraction=0.22,
        store_fraction=0.09,
        branch_fraction=0.20,
        long_latency_fraction=0.06,
        chain_length=1.8,
        dependency_distance=2,
        working_set_bytes=32 * _KB,
        streaming_fraction=0.0,
        random_access_fraction=0.20,
        branch_predictability=0.88,
        branch_taken_probability=0.60,
        dead_fraction=0.12,
        nop_fraction=0.05,
        prefetch_fraction=0.0,
        narrow_width_fraction=0.70,
        frontend_miss_rate=0.006,
        body_size=128,
        dirty_working_set_fraction=0.4,
    )
    parameters.update(overrides)
    return WorkloadProfile(name=name, **parameters)


@lru_cache(maxsize=1)
def spec_int_profiles() -> tuple[WorkloadProfile, ...]:
    """Eleven SPEC CPU2006 integer proxies."""
    return (
        _int_profile(
            "400.perlbench_proxy",
            branch_fraction=0.21,
            working_set_bytes=1 * _MB,
            branch_predictability=0.92,
            dead_fraction=0.12,
            frontend_miss_rate=0.02,
        ),
        _int_profile(
            "401.bzip2_proxy",
            load_fraction=0.28,
            store_fraction=0.12,
            working_set_bytes=3 * _MB,
            random_access_fraction=0.45,
            branch_predictability=0.86,
            dead_fraction=0.08,
        ),
        _int_profile(
            "403.gcc_proxy",
            load_fraction=0.27,
            store_fraction=0.14,
            branch_fraction=0.16,
            working_set_bytes=6 * _MB,
            streaming_fraction=0.22,
            random_access_fraction=0.30,
            branch_predictability=0.93,
            dead_fraction=0.06,
            dirty_working_set_fraction=0.75,
            frontend_miss_rate=0.015,
        ),
        _int_profile(
            "429.mcf_proxy",
            load_fraction=0.31,
            store_fraction=0.09,
            working_set_bytes=8 * _MB,
            streaming_fraction=0.35,
            random_access_fraction=0.55,
            branch_predictability=0.88,
            chain_length=2.0,
        ),
        _int_profile(
            "445.gobmk_proxy",
            branch_fraction=0.20,
            branch_predictability=0.84,
            working_set_bytes=512 * _KB,
            dead_fraction=0.13,
            frontend_miss_rate=0.02,
        ),
        _int_profile(
            "456.hmmer_proxy",
            load_fraction=0.30,
            store_fraction=0.15,
            branch_fraction=0.08,
            chain_length=3.0,
            dependency_distance=4,
            working_set_bytes=256 * _KB,
            branch_predictability=0.97,
            dead_fraction=0.05,
        ),
        _int_profile(
            "458.sjeng_proxy",
            branch_fraction=0.19,
            branch_predictability=0.85,
            working_set_bytes=768 * _KB,
            dead_fraction=0.14,
            frontend_miss_rate=0.018,
        ),
        _int_profile(
            "462.libquantum_proxy",
            load_fraction=0.24,
            store_fraction=0.07,
            branch_fraction=0.13,
            working_set_bytes=8 * _MB,
            streaming_fraction=0.45,
            random_access_fraction=0.05,
            branch_predictability=0.97,
            chain_length=2.0,
            narrow_width_fraction=0.3,
        ),
        _int_profile(
            "464.h264ref_proxy",
            load_fraction=0.32,
            store_fraction=0.14,
            branch_fraction=0.10,
            chain_length=3.0,
            working_set_bytes=1 * _MB,
            branch_predictability=0.94,
            narrow_width_fraction=0.6,
            dead_fraction=0.07,
        ),
        _int_profile(
            "471.omnetpp_proxy",
            load_fraction=0.29,
            store_fraction=0.13,
            branch_fraction=0.18,
            working_set_bytes=6 * _MB,
            streaming_fraction=0.18,
            random_access_fraction=0.5,
            branch_predictability=0.89,
        ),
        _int_profile(
            "473.astar_proxy",
            load_fraction=0.28,
            branch_fraction=0.17,
            working_set_bytes=4 * _MB,
            random_access_fraction=0.45,
            branch_predictability=0.87,
            dead_fraction=0.09,
        ),
    )


@lru_cache(maxsize=1)
def spec_fp_profiles() -> tuple[WorkloadProfile, ...]:
    """Ten SPEC CPU2006 floating-point proxies."""
    return (
        _fp_profile(
            "410.bwaves_proxy",
            streaming_fraction=0.45,
            working_set_bytes=8 * _MB,
            chain_length=4.0,
            long_latency_fraction=0.5,
        ),
        _fp_profile(
            "433.milc_proxy",
            streaming_fraction=0.5,
            working_set_bytes=8 * _MB,
            load_fraction=0.33,
            store_fraction=0.14,
        ),
        _fp_profile(
            "434.zeusmp_proxy",
            streaming_fraction=0.4,
            working_set_bytes=6 * _MB,
            long_latency_fraction=0.5,
            chain_length=4.5,
        ),
        _fp_profile(
            "435.gromacs_proxy",
            streaming_fraction=0.15,
            working_set_bytes=1 * _MB,
            long_latency_fraction=0.55,
            chain_length=4.0,
            branch_fraction=0.06,
        ),
        _fp_profile(
            "436.cactusADM_proxy",
            streaming_fraction=0.35,
            working_set_bytes=8 * _MB,
            chain_length=5.0,
            dependency_distance=5,
        ),
        _fp_profile(
            "437.leslie3d_proxy",
            streaming_fraction=0.4,
            working_set_bytes=6 * _MB,
            long_latency_fraction=0.5,
        ),
        _fp_profile(
            "444.namd_proxy",
            streaming_fraction=0.1,
            working_set_bytes=1 * _MB,
            long_latency_fraction=0.6,
            chain_length=4.0,
            branch_fraction=0.05,
            dead_fraction=0.04,
        ),
        _fp_profile(
            "447.dealII_proxy",
            load_fraction=0.34,
            store_fraction=0.14,
            branch_fraction=0.05,
            streaming_fraction=0.28,
            working_set_bytes=4 * _MB,
            chain_length=3.0,
            dependency_distance=3,
            long_latency_fraction=0.4,
            dead_fraction=0.03,
            dirty_working_set_fraction=0.7,
        ),
        _fp_profile(
            "450.soplex_proxy",
            load_fraction=0.32,
            streaming_fraction=0.3,
            working_set_bytes=6 * _MB,
            random_access_fraction=0.25,
            branch_fraction=0.08,
        ),
        _fp_profile(
            "459.GemsFDTD_proxy",
            load_fraction=0.33,
            store_fraction=0.15,
            branch_fraction=0.03,
            streaming_fraction=0.35,
            working_set_bytes=8 * _MB,
            chain_length=4.0,
            long_latency_fraction=0.45,
            dead_fraction=0.03,
            dirty_working_set_fraction=0.7,
        ),
    )


@lru_cache(maxsize=1)
def mibench_profiles() -> tuple[WorkloadProfile, ...]:
    """Twelve MiBench proxies."""
    return (
        _mibench_profile(
            "basicmath_proxy",
            long_latency_fraction=0.35,
            chain_length=2.5,
            branch_fraction=0.12,
            working_set_bytes=16 * _KB,
        ),
        _mibench_profile(
            "bitcount_proxy",
            load_fraction=0.12,
            store_fraction=0.04,
            branch_fraction=0.24,
            working_set_bytes=8 * _KB,
            narrow_width_fraction=0.85,
        ),
        _mibench_profile(
            "qsort_proxy",
            load_fraction=0.27,
            store_fraction=0.12,
            branch_fraction=0.22,
            random_access_fraction=0.5,
            working_set_bytes=256 * _KB,
            branch_predictability=0.82,
        ),
        _mibench_profile(
            "susan_proxy",
            load_fraction=0.30,
            store_fraction=0.10,
            branch_fraction=0.10,
            long_latency_fraction=0.30,
            chain_length=2.8,
            dependency_distance=3,
            working_set_bytes=128 * _KB,
            dead_fraction=0.05,
            narrow_width_fraction=0.5,
            branch_predictability=0.95,
        ),
        _mibench_profile(
            "dijkstra_proxy",
            load_fraction=0.28,
            branch_fraction=0.21,
            random_access_fraction=0.45,
            working_set_bytes=192 * _KB,
            branch_predictability=0.85,
        ),
        _mibench_profile(
            "patricia_proxy",
            load_fraction=0.26,
            branch_fraction=0.23,
            random_access_fraction=0.55,
            working_set_bytes=256 * _KB,
            branch_predictability=0.83,
        ),
        _mibench_profile(
            "stringsearch_proxy",
            load_fraction=0.30,
            store_fraction=0.05,
            branch_fraction=0.25,
            working_set_bytes=16 * _KB,
            branch_predictability=0.86,
            narrow_width_fraction=0.9,
        ),
        _mibench_profile(
            "blowfish_proxy",
            load_fraction=0.25,
            store_fraction=0.12,
            branch_fraction=0.08,
            chain_length=2.5,
            working_set_bytes=8 * _KB,
            branch_predictability=0.97,
            narrow_width_fraction=0.8,
            dead_fraction=0.06,
        ),
        _mibench_profile(
            "sha_proxy",
            load_fraction=0.20,
            store_fraction=0.08,
            branch_fraction=0.07,
            chain_length=3.0,
            working_set_bytes=8 * _KB,
            branch_predictability=0.98,
            narrow_width_fraction=0.75,
            dead_fraction=0.05,
        ),
        _mibench_profile(
            "crc32_proxy",
            load_fraction=0.30,
            store_fraction=0.03,
            branch_fraction=0.15,
            working_set_bytes=4 * _KB,
            branch_predictability=0.99,
            narrow_width_fraction=0.9,
            chain_length=1.5,
        ),
        _mibench_profile(
            "fft_proxy",
            load_fraction=0.26,
            store_fraction=0.13,
            branch_fraction=0.08,
            long_latency_fraction=0.45,
            chain_length=3.5,
            dependency_distance=4,
            working_set_bytes=64 * _KB,
            narrow_width_fraction=0.2,
            dead_fraction=0.06,
        ),
        _mibench_profile(
            "adpcm_proxy",
            load_fraction=0.18,
            store_fraction=0.09,
            branch_fraction=0.18,
            working_set_bytes=16 * _KB,
            chain_length=2.2,
            narrow_width_fraction=0.9,
        ),
    )


def all_profiles() -> tuple[WorkloadProfile, ...]:
    """All 33 workload proxies (11 INT + 10 FP + 12 MiBench)."""
    return spec_int_profiles() + spec_fp_profiles() + mibench_profiles()


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up a profile by its exact name."""
    for profile in all_profiles():
        if profile.name == name:
            return profile
    raise KeyError(f"unknown workload profile: {name!r}")
