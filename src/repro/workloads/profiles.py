"""Workload profile definitions."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class WorkloadSuite(Enum):
    """Benchmark suite a proxy belongs to."""

    SPEC_INT = "spec_int"
    SPEC_FP = "spec_fp"
    MIBENCH = "mibench"


@dataclass(frozen=True)
class WorkloadProfile:
    """Microarchitecture-independent characterisation of one workload proxy.

    Attributes
    ----------
    name / suite:
        Identification; names carry a ``_proxy`` suffix to make clear these
        are synthetic stand-ins, not the SPEC/MiBench binaries.
    load_fraction / store_fraction / branch_fraction:
        Dynamic instruction mix; the remainder is arithmetic.
    long_latency_fraction:
        Fraction of arithmetic executed on the long-latency unit (multiplies
        for integer codes; a proxy for FP latency in FP codes).
    chain_length / dependency_distance:
        ILP shape: average dependence-chain depth and the spacing of
        dependent instructions in the generated loop body.
    working_set_bytes:
        Size of the randomly/stride accessed resident working set.
    streaming_fraction:
        Fraction of memory accesses that stream through a region larger than
        the L2 (producing compulsory misses with little reuse).
    random_access_fraction:
        Fraction of non-streaming accesses with random (rather than strided)
        addresses.
    branch_predictability:
        Fraction of branches that are strongly biased (easy to predict);
        the rest are weakly biased and mispredict frequently.
    branch_taken_probability:
        Taken probability of the weakly biased branches.
    dead_fraction / nop_fraction / prefetch_fraction:
        Un-ACE components of the dynamic stream (dynamically dead results,
        compiler NOP padding, software prefetches).
    narrow_width_fraction:
        Fraction of operations producing 32-bit results on the 64-bit
        datapath (halving the ACE bits of their data fields).
    frontend_miss_rate / frontend_miss_penalty:
        Statistical model of I-cache/I-TLB misses and fetch inefficiencies.
    body_size:
        Static size of the generated inner loop.
    dirty_working_set_fraction:
        Fraction of the working set that holds data the program writes (and
        is therefore dirty/ACE in the caches at steady state).
    """

    name: str
    suite: WorkloadSuite
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    long_latency_fraction: float
    chain_length: float
    dependency_distance: int
    working_set_bytes: int
    streaming_fraction: float
    random_access_fraction: float
    branch_predictability: float
    branch_taken_probability: float
    dead_fraction: float
    nop_fraction: float
    prefetch_fraction: float
    narrow_width_fraction: float
    frontend_miss_rate: float
    body_size: int = 160
    frontend_miss_penalty: int = 10
    dirty_working_set_fraction: float = 0.5

    def __post_init__(self) -> None:
        fractions = (
            self.load_fraction,
            self.store_fraction,
            self.branch_fraction,
            self.long_latency_fraction,
            self.streaming_fraction,
            self.random_access_fraction,
            self.branch_predictability,
            self.branch_taken_probability,
            self.dead_fraction,
            self.nop_fraction,
            self.prefetch_fraction,
            self.narrow_width_fraction,
            self.frontend_miss_rate,
            self.dirty_working_set_fraction,
        )
        for value in fractions:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"profile {self.name}: fractions must be within [0, 1]")
        if self.load_fraction + self.store_fraction + self.branch_fraction > 0.95:
            raise ValueError(f"profile {self.name}: memory+branch mix leaves no arithmetic")
        if self.working_set_bytes <= 0:
            raise ValueError(f"profile {self.name}: working set must be positive")
        if self.body_size < 16:
            raise ValueError(f"profile {self.name}: body_size must be at least 16")
        if self.chain_length < 1.0:
            raise ValueError(f"profile {self.name}: chain_length must be >= 1")
        if self.dependency_distance < 1:
            raise ValueError(f"profile {self.name}: dependency_distance must be >= 1")

    @property
    def arithmetic_fraction(self) -> float:
        """Fraction of the mix that is arithmetic."""
        return max(
            0.0, 1.0 - self.load_fraction - self.store_fraction - self.branch_fraction
        )

    @property
    def ace_instruction_fraction(self) -> float:
        """Approximate fraction of ACE instructions in the dynamic stream."""
        return max(0.0, 1.0 - self.dead_fraction - self.nop_fraction - self.prefetch_fraction)
