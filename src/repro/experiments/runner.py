"""Shared experiment infrastructure: scales, caching context, workload runs.

The paper's evaluation simulates 100 M instructions per program and runs the
GA for 2,500 evaluations (about 48 hours on the authors' infrastructure).  A
pure-Python reproduction cannot afford that, so every experiment accepts an
:class:`ExperimentScale` that fixes the simulated instruction budget and the
GA effort.  ``ExperimentScale.quick()`` is used by the test suite and the
benchmark harness; larger scales can be requested for higher-fidelity runs
(see EXPERIMENTS.md for the scales used in the recorded results).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from repro.avf.report import SerReport, build_report
from repro.ga.engine import GAParameters
from repro.parallel.backends import EvaluationBackend, create_backend, resolve_jobs
from repro.parallel.resilience import FailurePolicy, Quarantined
from repro.stressmark.fitness import FitnessFunction
from repro.stressmark.generator import StressmarkGenerator, StressmarkResult, reference_knobs
from repro.stressmark.knobs import KnobSpace
from repro.uarch.config import MachineConfig, baseline_config
from repro.uarch.faultrates import FaultRateModel, unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore, SimulationResult
from repro.workloads.profiles import WorkloadProfile, WorkloadSuite
from repro.workloads.suite import all_profiles
from repro.workloads.synthetic import build_workload


@dataclass(frozen=True)
class ExperimentScale:
    """Simulation and search effort for one experiment run."""

    name: str
    workload_instructions: int
    stressmark_instructions: int
    ga_population: int
    ga_generations: int
    seed_ga_with_reference: bool = True
    workload_seed: int = 11
    simulation_seed: int = 3

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Small scale used by tests and the default benchmark harness."""
        return cls(
            name="quick",
            workload_instructions=4_000,
            stressmark_instructions=6_000,
            ga_population=8,
            ga_generations=6,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Moderate scale for interactive use (minutes per experiment)."""
        return cls(
            name="default",
            workload_instructions=12_000,
            stressmark_instructions=12_000,
            ga_population=16,
            ga_generations=15,
        )

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's scale (100 M instructions, 50 x 50 GA); very slow in Python."""
        return cls(
            name="paper",
            workload_instructions=100_000_000,
            stressmark_instructions=100_000_000,
            ga_population=50,
            ga_generations=50,
            seed_ga_with_reference=False,
        )

    def ga_parameters(self, seed: int = 2010) -> GAParameters:
        """GA parameters at this scale (paper's crossover/mutation rates)."""
        return GAParameters(
            population_size=self.ga_population,
            generations=self.ga_generations,
            crossover_rate=0.73,
            mutation_rate=0.05,
            seed=seed,
        )

    def derive(self, **overrides: object) -> "ExperimentScale":
        """A copy of this scale with fields overridden (spec ``scale_overrides``)."""
        return replace(self, **overrides)


@dataclass
class WorkloadReportSet:
    """SER reports of a set of workloads on one configuration."""

    config: MachineConfig
    fault_rates: FaultRateModel
    reports: dict[str, SerReport] = field(default_factory=dict)

    def names(self) -> list[str]:
        return list(self.reports)

    def report(self, name: str) -> SerReport:
        return self.reports[name]

    def by_suite(self, suite: WorkloadSuite) -> dict[str, SerReport]:
        """Reports restricted to one benchmark suite."""
        return {
            name: report
            for name, report in self.reports.items()
            if report_suite(report) == suite.value
        }

    def best_by(self, metric) -> tuple[str, SerReport]:
        """Workload maximising ``metric(report)``."""
        name = max(self.reports, key=lambda key: metric(self.reports[key]))
        return name, self.reports[name]


def report_suite(report: SerReport) -> str:
    """Suite tag recorded in a workload report (empty for the stressmark)."""
    return str(report.stats.get("suite", "")) if isinstance(report.stats, dict) else ""


class _WorkloadSimulationTask:
    """Picklable task: simulate one workload proxy on one configuration."""

    def __init__(
        self,
        config: MachineConfig,
        instructions: int,
        workload_seed: int,
        simulation_seed: int,
        kernel_backend: str = "",
    ) -> None:
        self.config = config
        self.instructions = instructions
        self.workload_seed = workload_seed
        self.simulation_seed = simulation_seed
        self.kernel_backend = kernel_backend

    def __call__(self, profile: WorkloadProfile) -> SimulationResult:
        program = build_workload(profile, self.config, seed=self.workload_seed)
        core = OutOfOrderCore(self.config, seed=self.simulation_seed)
        core.kernel_backend = self.kernel_backend or None
        return core.run(program, max_instructions=self.instructions)


class ExperimentContext:
    """Caches workload runs and stressmark GA runs shared across figures.

    Figures 3, 4 and 6 all need the 33 workload reports on the baseline
    configuration, and Figures 5, 7 and 8 reuse the stressmark GA runs, so
    the context memoises both keyed by (configuration, fault-rate model).

    ``jobs`` > 1 (or ``REPRO_JOBS``) fans the independent workload
    simulations and the stressmark GA evaluations out across worker
    processes; reports and caches are always assembled in deterministic
    order, so results are identical for any worker count.

    ``store`` (a :class:`~repro.store.result_store.ResultStore`) makes the
    context's caches durable: workload simulations and whole stressmark
    searches are written to the store's artifact database and fetched back
    before anything is simulated, GA fitness evaluations write through to
    the store's persistent fitness cache, and every stressmark search
    checkpoints per generation.  ``resume=True`` consumes an existing GA
    checkpoint (continuing an interrupted search bit-identically); the
    default clears stale checkpoints and starts searches fresh.  The caller
    owns the store's lifetime.
    """

    def __init__(
        self,
        scale: Optional[ExperimentScale] = None,
        jobs: Optional[int] = None,
        backend: Optional[EvaluationBackend] = None,
        store: Optional[object] = None,
        resume: bool = False,
        owns_backend: Optional[bool] = None,
        failure_policy: Optional[FailurePolicy] = None,
        kernel_backend: str = "",
    ) -> None:
        self.scale = scale or ExperimentScale.quick()
        self.jobs = resolve_jobs(jobs) if backend is None else backend.jobs
        self.store = store
        self.resume = resume
        self.failure_policy = failure_policy
        # Execution choice only (kernel backends are bit-identical), so it
        # never enters result cache keys or stressmark artifact keys.
        self.kernel_backend = kernel_backend
        self._backend = backend
        # A context closes backends it created; a *shared* backend (the
        # Session hands one pool to every context of a sweep) is closed by
        # its owner.  Passing a backend historically transferred ownership,
        # so that stays the default.
        self._owns_backend = True if owns_backend is None else bool(owns_backend)
        self._kernel_store = None
        if store is not None:
            # Make generated simulator-kernel source durable alongside the
            # other artifacts, so sibling processes and later sessions load
            # source instead of regenerating it (never pickled closures —
            # see repro/uarch/kernel.py).
            from repro.uarch.kernel import attach_source_store

            self._kernel_store = store.artifact_store()
            attach_source_store(self._kernel_store)
        # AVF is independent of the circuit-level fault rates, so workload
        # simulations are cached per configuration and re-reported under each
        # fault-rate model without re-simulating.
        self._workload_sim_cache: dict[tuple[str, str], object] = {}
        self._workload_cache: dict[tuple[str, str], WorkloadReportSet] = {}
        self._stressmark_cache: dict[tuple, StressmarkResult] = {}
        self._workload_tasks: dict[str, _WorkloadSimulationTask] = {}

    @property
    def backend(self) -> EvaluationBackend:
        """The evaluation backend (created lazily from ``jobs``)."""
        if self._backend is None:
            self._backend = create_backend(self.jobs, policy=self.failure_policy)
        return self._backend

    def _workload_task(self, config: MachineConfig) -> _WorkloadSimulationTask:
        # One stable task object per configuration so the process pool can be
        # reused across figures instead of restarting per call.
        task = self._workload_tasks.get(config.name)
        if task is None or task.config != config:
            task = _WorkloadSimulationTask(
                config=config,
                instructions=self.scale.workload_instructions,
                workload_seed=self.scale.workload_seed,
                simulation_seed=self.scale.simulation_seed,
                kernel_backend=self.kernel_backend,
            )
            self._workload_tasks[config.name] = task
        return task

    # ----------------------------------------------------------- workloads

    def _workload_artifact_key(self, config: MachineConfig, profile: WorkloadProfile) -> str:
        from repro.store.artifacts import artifact_key

        return artifact_key(
            "workload-sim",
            config,
            profile,
            self.scale.workload_instructions,
            self.scale.workload_seed,
            self.scale.simulation_seed,
        )

    def _fetch_workload_result(
        self, config: MachineConfig, profile: WorkloadProfile
    ) -> Optional[SimulationResult]:
        """Cached simulation result from memory, then the store's artifacts."""
        sim_key = (config.name, profile.name)
        result = self._workload_sim_cache.get(sim_key)
        if result is None and self.store is not None:
            result = self.store.artifact_store().get(self._workload_artifact_key(config, profile))
            if result is not None:
                self._workload_sim_cache[sim_key] = result
        return result

    def _record_workload_result(
        self, config: MachineConfig, profile: WorkloadProfile, result: SimulationResult
    ) -> None:
        self._workload_sim_cache[(config.name, profile.name)] = result
        if self.store is not None:
            self.store.artifact_store().put(self._workload_artifact_key(config, profile), result)

    def run_workload(
        self,
        profile: WorkloadProfile,
        config: MachineConfig,
        fault_rates: Optional[FaultRateModel] = None,
    ) -> SerReport:
        """Simulate one workload proxy and return its SER report."""
        fault_rates = fault_rates or unit_fault_rates()
        result = self._fetch_workload_result(config, profile)
        if result is None:
            program = build_workload(profile, config, seed=self.scale.workload_seed)
            core = OutOfOrderCore(config, seed=self.scale.simulation_seed)
            result = core.run(program, max_instructions=self.scale.workload_instructions)
            self._record_workload_result(config, profile, result)
        report = build_report(result, fault_rates)
        report.stats["suite"] = profile.suite.value  # type: ignore[index]
        return report

    def workload_reports(
        self,
        config: Optional[MachineConfig] = None,
        fault_rates: Optional[FaultRateModel] = None,
        profiles: Optional[Sequence[WorkloadProfile]] = None,
    ) -> WorkloadReportSet:
        """Reports for (by default) all 33 workload proxies, cached."""
        config = config or baseline_config()
        fault_rates = fault_rates or unit_fault_rates()
        selected = tuple(profiles) if profiles is not None else all_profiles()
        cache_key = (config.name, fault_rates.name)
        cached = self._workload_cache.get(cache_key)
        if cached is not None and all(p.name in cached.reports for p in selected):
            return cached

        report_set = cached or WorkloadReportSet(config=config, fault_rates=fault_rates)
        missing = [profile for profile in selected if profile.name not in report_set.reports]
        # Fan the uncached, independent simulations out through the backend;
        # reports are then assembled serially in `selected` order.  The store
        # consult happens first so replayed simulations never hit a worker.
        to_simulate = [
            profile for profile in missing
            if self._fetch_workload_result(config, profile) is None
        ]
        if len(to_simulate) > 1 and self.backend.jobs > 1:
            results = self.backend.map(self._workload_task(config), to_simulate)
            for profile, result in zip(to_simulate, results, strict=True):
                # A workload the resilient backend quarantined is simply not
                # recorded: the serial loop below re-simulates it in-process,
                # so deterministic failures still surface with a real
                # traceback and transient ones produce the normal report.
                if isinstance(result, Quarantined):
                    continue
                self._record_workload_result(config, profile, result)
        for profile in missing:
            report_set.reports[profile.name] = self.run_workload(profile, config, fault_rates)
        self._workload_cache[cache_key] = report_set
        return report_set

    # ---------------------------------------------------------- stressmark

    def stressmark(
        self,
        config: Optional[MachineConfig] = None,
        fault_rates: Optional[FaultRateModel] = None,
        fitness: Optional[FitnessFunction] = None,
        allow_l2_hit_generator: bool = True,
        ga_seed: Optional[int] = None,
    ) -> StressmarkResult:
        """GA-generated stressmark for one (configuration, fault-rate) pair, cached.

        ``fitness`` defaults to the balanced objective; ``ga_seed`` overrides
        the GA seed (spec-driven runs).  Both participate in the cache key so
        distinct objectives or seeds never alias.
        """
        config = config or baseline_config()
        fault_rates = fault_rates or unit_fault_rates()
        fitness = fitness or FitnessFunction.balanced(fault_rates)
        cache_key = (config.name, fault_rates.name, fitness.name, ga_seed)
        cached = self._stressmark_cache.get(cache_key)
        if cached is not None:
            return cached

        knob_space = KnobSpace(config, allow_l2_hit_generator=allow_l2_hit_generator)
        ga_parameters = (
            self.scale.ga_parameters() if ga_seed is None else self.scale.ga_parameters(ga_seed)
        )

        fitness_store = None
        checkpoint = None
        artifact_key_str = None
        if self.store is not None:
            from repro.store.artifacts import artifact_key

            artifact_key_str = artifact_key(
                "stressmark",
                config,
                fault_rates,
                fitness,
                ga_parameters,
                self.scale.stressmark_instructions,
                self.scale.simulation_seed,
                self.scale.seed_ga_with_reference,
                allow_l2_hit_generator,
            )
            replayed = self.store.artifact_store().get(artifact_key_str)
            if replayed is not None:
                self._stressmark_cache[cache_key] = replayed
                return replayed
            fitness_store = self.store.fitness_store()
            checkpoint = self.store.checkpoint(artifact_key_str)
            if not self.resume:
                # A stale checkpoint from an abandoned run must not leak into
                # a run that did not ask to resume.
                checkpoint.clear()

        generator = StressmarkGenerator(
            config=config,
            fault_rates=fault_rates,
            fitness=fitness,
            knob_space=knob_space,
            ga_parameters=ga_parameters,
            max_instructions=self.scale.stressmark_instructions,
            simulation_seed=self.scale.simulation_seed,
            backend=self.backend,
            fitness_store=fitness_store,
            checkpoint=checkpoint,
            kernel_backend=self.kernel_backend,
        )
        seeds = None
        if self.scale.seed_ga_with_reference:
            seeds = [
                reference_knobs(config, use_l2_miss=True),
                reference_knobs(config, use_l2_miss=False),
            ]
        result = generator.generate(initial_knobs=seeds)
        self._stressmark_cache[cache_key] = result
        if self.store is not None:
            self.store.artifact_store().put(artifact_key_str, result)
            checkpoint.clear()
        return result

    # ------------------------------------------------------------- helpers

    def clear(self) -> None:
        """Drop all cached results."""
        self._workload_cache.clear()
        self._stressmark_cache.clear()

    def close(self) -> None:
        """Release the evaluation backend's worker processes, if owned."""
        if self._backend is not None and self._owns_backend:
            self._backend.close()
        if self._kernel_store is not None:
            from repro.uarch.kernel import release_source_store

            release_source_store(self._kernel_store)
            self._kernel_store = None


def max_group_ser(reports: Iterable[SerReport], group) -> float:
    """Highest SER for one group across a set of reports."""
    values = [report.ser(group) for report in reports]
    return max(values) if values else 0.0
