"""Experiment drivers: one function per table and figure of the paper."""

from repro.experiments.runner import (
    ExperimentContext,
    ExperimentScale,
    WorkloadReportSet,
)
from repro.experiments.figures import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.tables import table1, table2, table3

__all__ = [
    "ExperimentContext",
    "ExperimentScale",
    "WorkloadReportSet",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "table1",
    "table2",
    "table3",
]
