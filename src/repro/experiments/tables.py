"""Per-table experiment drivers (Tables I, II and III of the paper).

Table III is a thin consumer of its canned sweep spec (see
:mod:`repro.api.presets`): one stressmark search plus one full workload
simulation per fault-rate scenario, executed by the
:class:`~repro.api.session.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.api.presets import children_of_kind, preset_spec
from repro.api.session import Session
from repro.avf.analysis import StructureGroup, group_structures
from repro.avf.report import SerReport
from repro.experiments.figures import _session
from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.uarch.config import MachineConfig, baseline_config, config_a
from repro.uarch.faultrates import FaultRateModel
from repro.uarch.structures import core_structure_accumulators


def _config_table(config: MachineConfig) -> dict[str, object]:
    """Render a machine configuration as the paper's Table I/II rows."""
    return {
        "Integer ALUs": f"{config.int_alus}, {config.alu_latency} cycle latency",
        "Integer Multiplier": f"{config.int_multipliers}, {config.multiply_latency} cycle latency",
        "Fetch/slot/map/issue/commit": "/".join(
            str(width)
            for width in (
                config.fetch_width,
                config.dispatch_width,
                config.dispatch_width,
                config.issue_width,
                config.commit_width,
            )
        )
        + " per cycle",
        "Integer Issue Queue": f"{config.iq_entries} entries, {config.iq_bits_per_entry} bits/entry",
        "ROB": f"{config.rob_entries} entries, {config.rob_bits_per_entry} bits/entry",
        "Integer rename register file": f"{config.rename_registers}, {config.register_bits} bits/register",
        "LQ/SQ": f"{config.lq_entries} entries each, {config.lsq_bits_per_entry} bits/entry",
        "Branch Misprediction Penalty": f"{config.branch_misprediction_penalty} cycles",
        "L1 D cache": (
            f"{config.dl1.size_bytes // 1024}kB, {config.dl1.associativity}-way, "
            f"{config.dl1.line_bytes}B line, {config.dl1.hit_latency} cycle latency"
        ),
        "L1 I-cache": (
            f"{config.il1.size_bytes // 1024}kB, {config.il1.associativity}-way, "
            f"{config.il1.line_bytes}B line, {config.il1.hit_latency} cycle latency"
        ),
        "DTLB": f"{config.dtlb.entries} entry, fully associative, {config.dtlb.page_bytes // 1024}kB page",
        "L2 cache": (
            f"{config.l2.size_bytes // (1024 * 1024)}MB, "
            f"{config.l2.associativity}-way, {config.l2.hit_latency} cycle latency"
        ),
    }


def table1() -> dict[str, object]:
    """Table I: baseline configuration of the processor."""
    return _config_table(baseline_config())


def table2() -> dict[str, object]:
    """Table II: alternate configuration (Configuration A)."""
    return _config_table(config_a())


# ------------------------------------------------------------------ Table III


@dataclass
class Table3Row:
    """One row of Table III: worst-case core SER estimates for one scenario."""

    configuration: str
    stressmark_ser: float
    best_program_name: str
    best_program_ser: float
    sum_of_highest_per_structure_ser: float
    raw_circuit_ser: float

    def stressmark_margin_over_best_program(self) -> float:
        if self.best_program_ser <= 0.0:
            return float("inf")
        return self.stressmark_ser / self.best_program_ser

    def sum_of_highest_error(self) -> float:
        """Relative error of the "sum of highest per-structure SER" estimate."""
        if self.stressmark_ser <= 0.0:
            return 0.0
        return abs(self.sum_of_highest_per_structure_ser - self.stressmark_ser) / self.stressmark_ser


@dataclass
class Table3Result:
    """Table III: comparison of worst-case SER estimation methodologies."""

    rows: dict[str, Table3Row] = field(default_factory=dict)

    def row(self, configuration: str) -> Table3Row:
        return self.rows[configuration]


def _sum_of_highest_per_structure(
    reports: list[SerReport], config: MachineConfig, fault_rates: FaultRateModel
) -> float:
    """Core-normalised "sum of highest per-structure SER" over a report set."""
    accumulators = core_structure_accumulators(config)
    members = group_structures(StructureGroup.CORE)
    total_bits = 0.0
    weighted = 0.0
    for structure, accumulator in accumulators.items():
        if structure not in members:
            continue
        bits = float(accumulator.total_bits)
        highest = max(report.avf(structure) for report in reports)
        total_bits += bits
        weighted += highest * bits * fault_rates.rate(structure)
    return weighted / total_bits if total_bits else 0.0


def _raw_circuit_ser(config: MachineConfig, fault_rates: FaultRateModel) -> float:
    """Worst case assuming 100% AVF everywhere in the core."""
    accumulators = core_structure_accumulators(config)
    total_bits = float(sum(a.total_bits for a in accumulators.values()))
    weighted = sum(a.total_bits * fault_rates.rate(name) for name, a in accumulators.items())
    return weighted / total_bits if total_bits else 0.0


#: Table III's scenario labels -> registered fault-rate model names.
TABLE3_SCENARIOS = {"baseline": "unit", "rhc": "rhc", "edr": "edr"}


def table3(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Table3Result:
    """Table III: worst-case core SER estimation methodologies compared.

    For each fault-rate scenario (baseline unit rates, RHC, EDR) the table
    reports the stressmark-induced core SER, the best individual workload
    (name and core SER), the "sum of highest per-structure SER" estimate and
    the raw circuit-level bound.
    """
    session = _session(context, scale, session)
    spec = preset_spec("table3")
    stress_specs = {child.fault_rates: child for child in children_of_kind(spec, "stressmark")}
    simulate_specs = {child.fault_rates: child for child in children_of_kind(spec, "simulate")}

    result = Table3Result()
    for label, model_name in TABLE3_SCENARIOS.items():
        resolved = session.resolve(stress_specs[model_name])
        config, fault_rates = resolved.config, resolved.fault_rates
        stressmark = session.stressmark_result(stress_specs[model_name])
        workloads = session.workload_report_set(simulate_specs[model_name])
        reports = list(workloads.reports.values())
        best_name, best_report = workloads.best_by(lambda report: report.core_ser)
        result.rows[label] = Table3Row(
            configuration=label,
            stressmark_ser=stressmark.report.core_ser,
            best_program_name=best_name,
            best_program_ser=best_report.core_ser,
            sum_of_highest_per_structure_ser=_sum_of_highest_per_structure(
                reports, config, fault_rates
            ),
            raw_circuit_ser=_raw_circuit_ser(config, fault_rates),
        )
    return result
