"""Per-figure experiment drivers.

Each ``figureN`` function regenerates the data behind the corresponding
figure of the paper and returns it as plain data structures (lists of rows /
series) that the benchmark harness prints and the tests assert on.  The
figures never plot — the *rows/series* are the reproduction artefact.

Since the RunSpec/Session redesign each driver is a thin consumer of a
canned :class:`~repro.api.spec.RunSpec` (see :mod:`repro.api.presets`): the
spec declares the scenario matrix, the :class:`~repro.api.session.Session`
resolves and executes it (sharing simulations across figures through the
experiment context), and the driver only reshapes the resulting reports
into the paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.api.presets import children_of_kind, preset_spec
from repro.api.session import Session
from repro.api.spec import RunSpec
from repro.avf.analysis import StructureGroup
from repro.avf.report import SerReport
from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.uarch.structures import StructureName
from repro.workloads.profiles import WorkloadSuite

#: Structure groups plotted in Figures 3, 4, 7 and 9.
GROUP_COLUMNS = (
    StructureGroup.QS,
    StructureGroup.QS_RF,
    StructureGroup.DL1_DTLB,
    StructureGroup.L2,
)

def core_structures_of(report: SerReport) -> tuple[StructureName, ...]:
    """The core structures tracked in one report, in account (registry) order.

    Registry-driven: flag-gated core structures (e.g. the store buffer on the
    ``extended`` config) automatically join the per-structure AVF figures.
    """
    return tuple(s for s in report.structure_avf if s.is_core)


def _session(
    context: Optional[ExperimentContext],
    scale: Optional[ExperimentScale],
    session: Optional[Session],
) -> Session:
    """The Session executing a driver (wrapping a legacy context if given)."""
    if session is not None:
        return session
    return Session(context=context or ExperimentContext(scale))


@dataclass
class SerComparisonRow:
    """One bar group of Figures 3/4/7/9: a program's SER per structure group."""

    program: str
    is_stressmark: bool
    ser: dict[StructureGroup, float]

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {"program": self.program, "stressmark": self.is_stressmark}
        for group, value in self.ser.items():
            row[f"ser_{group.value}"] = round(value, 4)
        return row


@dataclass
class SerComparisonResult:
    """Result of a stressmark-vs-workloads SER comparison figure."""

    figure: str
    config_name: str
    fault_rate_name: str
    rows: list[SerComparisonRow] = field(default_factory=list)

    def stressmark_row(self) -> SerComparisonRow:
        for row in self.rows:
            if row.is_stressmark:
                return row
        raise ValueError("no stressmark row present")

    def best_workload(self, group: StructureGroup) -> SerComparisonRow:
        candidates = [row for row in self.rows if not row.is_stressmark]
        if not candidates:
            raise ValueError("no workload rows present")
        return max(candidates, key=lambda row: row.ser[group])

    def stressmark_margin(self, group: StructureGroup) -> float:
        """Stressmark SER divided by the best workload SER for a group."""
        best = self.best_workload(group).ser[group]
        if best <= 0.0:
            return float("inf")
        return self.stressmark_row().ser[group] / best


def _ser_row(name: str, report: SerReport, is_stressmark: bool) -> SerComparisonRow:
    return SerComparisonRow(
        program=name,
        is_stressmark=is_stressmark,
        ser={group: report.ser(group) for group in GROUP_COLUMNS},
    )


def _comparison(figure: str, session: Session, spec: RunSpec) -> SerComparisonResult:
    """Execute a comparison sweep (one stressmark + one simulate child)."""
    stressmark_spec = children_of_kind(spec, "stressmark")[0]
    simulate_spec = children_of_kind(spec, "simulate")[0]

    stressmark = session.stressmark_result(stressmark_spec)
    workloads = session.workload_report_set(simulate_spec)
    profiles = session.resolve_profiles(simulate_spec)

    result = SerComparisonResult(
        figure=figure,
        config_name=stressmark.config.name,
        fault_rate_name=stressmark.fault_rates.name,
    )
    result.rows.append(_ser_row("stressmark", stressmark.report, is_stressmark=True))
    for profile in profiles:
        report = workloads.report(profile.name)
        result.rows.append(_ser_row(profile.name, report, is_stressmark=False))
    return result


# --------------------------------------------------------------- Figure 3/4


def figure3(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> SerComparisonResult:
    """Figure 3: stressmark vs SPEC CPU2006 SER on the baseline configuration."""
    return _comparison("figure3", _session(context, scale, session), preset_spec("figure3"))


def figure4(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> SerComparisonResult:
    """Figure 4: stressmark vs MiBench SER on the baseline configuration."""
    return _comparison("figure4", _session(context, scale, session), preset_spec("figure4"))


# ----------------------------------------------------------------- Figure 5


@dataclass
class Figure5Result:
    """Figure 5: final knob settings (a) and GA convergence (b)."""

    knob_table: dict[str, object]
    average_fitness_per_generation: list[float]
    best_fitness_per_generation: list[float]
    cataclysm_generations: list[int]
    final_fitness: float
    evaluations: int


def figure5(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
    spec: Optional[RunSpec] = None,
) -> Figure5Result:
    """Figure 5: GA-generated stressmark for the baseline configuration."""
    session = _session(context, scale, session)
    result = session.stressmark_result(spec or preset_spec("figure5"))
    return Figure5Result(
        knob_table=result.knob_table(),
        average_fitness_per_generation=result.ga_result.average_fitness_trace(),
        best_fitness_per_generation=result.ga_result.best_fitness_trace(),
        cataclysm_generations=list(result.ga_result.cataclysm_generations),
        final_fitness=result.fitness,
        evaluations=result.ga_result.evaluations,
    )


# ----------------------------------------------------------------- Figure 6


@dataclass
class Figure6Result:
    """Figure 6: per-structure AVF of each workload (plus the stressmark)."""

    suite: WorkloadSuite
    rows: dict[str, dict[StructureName, float]] = field(default_factory=dict)

    def avf(self, program: str, structure: StructureName) -> float:
        return self.rows[program][structure]

    def stressmark_exceeds(self, structure: StructureName) -> bool:
        """True when the stressmark has the highest AVF for ``structure``."""
        stressmark = self.rows["stressmark"][structure]
        others = [row[structure] for name, row in self.rows.items() if name != "stressmark"]
        return stressmark >= max(others) if others else True


def figure6(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> dict[WorkloadSuite, Figure6Result]:
    """Figure 6 (a, b, c): per-structure AVF for SPEC INT, SPEC FP, MiBench."""
    session = _session(context, scale, session)
    spec = preset_spec("figure6")
    stressmark = session.stressmark_result(children_of_kind(spec, "stressmark")[0])
    simulate_spec = children_of_kind(spec, "simulate")[0]
    workloads = session.workload_report_set(simulate_spec)

    suite_by_name = {
        "spec_int": WorkloadSuite.SPEC_INT,
        "spec_fp": WorkloadSuite.SPEC_FP,
        "mibench": WorkloadSuite.MIBENCH,
    }
    results: dict[WorkloadSuite, Figure6Result] = {}
    structures = core_structures_of(stressmark.report)
    for suite_name in simulate_spec.suites:
        suite = suite_by_name[suite_name]
        figure = Figure6Result(suite=suite)
        figure.rows["stressmark"] = {
            structure: stressmark.report.avf(structure) for structure in structures
        }
        for profile in session.resolve_profiles(simulate_spec.replace(suites=(suite_name,))):
            report = workloads.report(profile.name)
            figure.rows[profile.name] = {
                structure: report.avf(structure) for structure in structures
            }
        results[suite] = figure
    return results


# ----------------------------------------------------------------- Figure 7


def figure7(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> dict[str, SerComparisonResult]:
    """Figure 7: SER of workloads and stressmark on the RHC and EDR configurations."""
    session = _session(context, scale, session)
    spec = preset_spec("figure7")
    results: dict[str, SerComparisonResult] = {}
    for label in spec.axes["fault_rates"]:
        scenario = RunSpec(
            kind="sweep",
            name=f"figure7_{label}",
            runs=tuple(
                child for child in spec.expand() if child.fault_rates == label
            ),
        )
        results[label] = _comparison(f"figure7_{label}", session, scenario)
    return results


# ----------------------------------------------------------------- Figure 8


@dataclass
class Figure8Result:
    """Figure 8: fault rates, per-scenario stressmark AVF and knob settings."""

    fault_rate_table: dict[str, dict[str, float]]
    queueing_avf: dict[str, dict[StructureName, float]]
    knob_tables: dict[str, dict[str, object]]
    core_ser: dict[str, float]


#: Figure 8's scenario labels -> registered fault-rate model names.
FIGURE8_SCENARIOS = {"baseline": "unit", "rhc": "rhc", "edr": "edr"}


def figure8(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure8Result:
    """Figure 8: stressmark adaptation to the RHC and EDR fault-rate models."""
    session = _session(context, scale, session)
    spec = preset_spec("figure8")
    children = {child.fault_rates: child for child in spec.expand()}

    fault_rate_table: dict[str, dict[str, float]] = {}
    queueing_avf: dict[str, dict[StructureName, float]] = {}
    knob_tables: dict[str, dict[str, object]] = {}
    core_ser: dict[str, float] = {}
    for label, model_name in FIGURE8_SCENARIOS.items():
        resolved = session.resolve(children[model_name])
        fault_rate_table[label] = {
            structure.value: resolved.fault_rates.rate(structure)
            for structure in (
                StructureName.ROB,
                StructureName.IQ,
                StructureName.FU,
                StructureName.RF,
                StructureName.LQ_TAG,
                StructureName.LQ_DATA,
                StructureName.SQ_TAG,
                StructureName.SQ_DATA,
            )
        }
        stressmark = session.stressmark_result(children[model_name])
        queueing_avf[label] = {
            structure: stressmark.report.avf(structure)
            for structure in core_structures_of(stressmark.report)
        }
        knob_tables[label] = stressmark.knob_table()
        core_ser[label] = stressmark.report.core_ser

    return Figure8Result(
        fault_rate_table=fault_rate_table,
        queueing_avf=queueing_avf,
        knob_tables=knob_tables,
        core_ser=core_ser,
    )


# ----------------------------------------------------------------- Figure 9


@dataclass
class Figure9Result:
    """Figure 9: stressmark on the baseline vs Configuration A."""

    group_ser: dict[str, dict[StructureGroup, float]]
    structure_avf: dict[str, dict[StructureName, float]]
    knob_tables: dict[str, dict[str, object]]


def figure9(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    session: Optional[Session] = None,
) -> Figure9Result:
    """Figure 9: stressmark generation for a different microarchitecture."""
    session = _session(context, scale, session)
    spec = preset_spec("figure9")
    group_ser: dict[str, dict[StructureGroup, float]] = {}
    structure_avf: dict[str, dict[StructureName, float]] = {}
    knob_tables: dict[str, dict[str, object]] = {}
    for child in spec.expand():
        stressmark = session.stressmark_result(child)
        name = stressmark.config.name
        group_ser[name] = {group: stressmark.report.ser(group) for group in GROUP_COLUMNS}
        structure_avf[name] = {
            structure: stressmark.report.avf(structure)
            for structure in core_structures_of(stressmark.report)
        }
        knob_tables[name] = stressmark.knob_table()
    return Figure9Result(
        group_ser=group_ser, structure_avf=structure_avf, knob_tables=knob_tables
    )
