"""Per-figure experiment drivers.

Each ``figureN`` function regenerates the data behind the corresponding
figure of the paper and returns it as plain data structures (lists of rows /
series) that the benchmark harness prints and the tests assert on.  The
figures never plot — the *rows/series* are the reproduction artefact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.avf.analysis import StructureGroup
from repro.avf.report import SerReport
from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.stressmark.generator import StressmarkResult
from repro.uarch.config import MachineConfig, baseline_config, config_a
from repro.uarch.faultrates import (
    FaultRateModel,
    edr_fault_rates,
    rhc_fault_rates,
    unit_fault_rates,
)
from repro.uarch.structures import StructureName
from repro.workloads.profiles import WorkloadSuite
from repro.workloads.suite import mibench_profiles, spec_fp_profiles, spec_int_profiles

#: Structure groups plotted in Figures 3, 4, 7 and 9.
GROUP_COLUMNS = (
    StructureGroup.QS,
    StructureGroup.QS_RF,
    StructureGroup.DL1_DTLB,
    StructureGroup.L2,
)

#: Core structures plotted per-workload in Figure 6 (and 8b / 9a).
FIGURE6_STRUCTURES = (
    StructureName.IQ,
    StructureName.ROB,
    StructureName.LQ_TAG,
    StructureName.LQ_DATA,
    StructureName.SQ_TAG,
    StructureName.SQ_DATA,
    StructureName.RF,
    StructureName.FU,
)


@dataclass
class SerComparisonRow:
    """One bar group of Figures 3/4/7/9: a program's SER per structure group."""

    program: str
    is_stressmark: bool
    ser: dict[StructureGroup, float]

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {"program": self.program, "stressmark": self.is_stressmark}
        for group, value in self.ser.items():
            row[f"ser_{group.value}"] = round(value, 4)
        return row


@dataclass
class SerComparisonResult:
    """Result of a stressmark-vs-workloads SER comparison figure."""

    figure: str
    config_name: str
    fault_rate_name: str
    rows: list[SerComparisonRow] = field(default_factory=list)

    def stressmark_row(self) -> SerComparisonRow:
        for row in self.rows:
            if row.is_stressmark:
                return row
        raise ValueError("no stressmark row present")

    def best_workload(self, group: StructureGroup) -> SerComparisonRow:
        candidates = [row for row in self.rows if not row.is_stressmark]
        if not candidates:
            raise ValueError("no workload rows present")
        return max(candidates, key=lambda row: row.ser[group])

    def stressmark_margin(self, group: StructureGroup) -> float:
        """Stressmark SER divided by the best workload SER for a group."""
        best = self.best_workload(group).ser[group]
        if best <= 0.0:
            return float("inf")
        return self.stressmark_row().ser[group] / best


def _ser_row(name: str, report: SerReport, is_stressmark: bool) -> SerComparisonRow:
    return SerComparisonRow(
        program=name,
        is_stressmark=is_stressmark,
        ser={group: report.ser(group) for group in GROUP_COLUMNS},
    )


def _comparison(
    figure: str,
    context: ExperimentContext,
    config: MachineConfig,
    fault_rates: FaultRateModel,
    suites: tuple[WorkloadSuite, ...],
) -> SerComparisonResult:
    profiles: list = []
    if WorkloadSuite.SPEC_INT in suites:
        profiles.extend(spec_int_profiles())
    if WorkloadSuite.SPEC_FP in suites:
        profiles.extend(spec_fp_profiles())
    if WorkloadSuite.MIBENCH in suites:
        profiles.extend(mibench_profiles())

    stressmark = context.stressmark(config, fault_rates)
    workloads = context.workload_reports(config, fault_rates, profiles=profiles)

    result = SerComparisonResult(
        figure=figure, config_name=config.name, fault_rate_name=fault_rates.name
    )
    result.rows.append(_ser_row("stressmark", stressmark.report, is_stressmark=True))
    for profile in profiles:
        report = workloads.report(profile.name)
        result.rows.append(_ser_row(profile.name, report, is_stressmark=False))
    return result


# --------------------------------------------------------------- Figure 3/4


def figure3(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
) -> SerComparisonResult:
    """Figure 3: stressmark vs SPEC CPU2006 SER on the baseline configuration."""
    context = context or ExperimentContext(scale)
    return _comparison(
        "figure3",
        context,
        baseline_config(),
        unit_fault_rates(),
        (WorkloadSuite.SPEC_INT, WorkloadSuite.SPEC_FP),
    )


def figure4(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
) -> SerComparisonResult:
    """Figure 4: stressmark vs MiBench SER on the baseline configuration."""
    context = context or ExperimentContext(scale)
    return _comparison(
        "figure4",
        context,
        baseline_config(),
        unit_fault_rates(),
        (WorkloadSuite.MIBENCH,),
    )


# ----------------------------------------------------------------- Figure 5


@dataclass
class Figure5Result:
    """Figure 5: final knob settings (a) and GA convergence (b)."""

    knob_table: dict[str, object]
    average_fitness_per_generation: list[float]
    best_fitness_per_generation: list[float]
    cataclysm_generations: list[int]
    final_fitness: float
    evaluations: int


def figure5(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[MachineConfig] = None,
    fault_rates: Optional[FaultRateModel] = None,
) -> Figure5Result:
    """Figure 5: GA-generated stressmark for the baseline configuration."""
    context = context or ExperimentContext(scale)
    result = context.stressmark(config or baseline_config(), fault_rates or unit_fault_rates())
    return Figure5Result(
        knob_table=result.knob_table(),
        average_fitness_per_generation=result.ga_result.average_fitness_trace(),
        best_fitness_per_generation=result.ga_result.best_fitness_trace(),
        cataclysm_generations=list(result.ga_result.cataclysm_generations),
        final_fitness=result.fitness,
        evaluations=result.ga_result.evaluations,
    )


# ----------------------------------------------------------------- Figure 6


@dataclass
class Figure6Result:
    """Figure 6: per-structure AVF of each workload (plus the stressmark)."""

    suite: WorkloadSuite
    rows: dict[str, dict[StructureName, float]] = field(default_factory=dict)

    def avf(self, program: str, structure: StructureName) -> float:
        return self.rows[program][structure]

    def stressmark_exceeds(self, structure: StructureName) -> bool:
        """True when the stressmark has the highest AVF for ``structure``."""
        stressmark = self.rows["stressmark"][structure]
        others = [row[structure] for name, row in self.rows.items() if name != "stressmark"]
        return stressmark >= max(others) if others else True


def figure6(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
) -> dict[WorkloadSuite, Figure6Result]:
    """Figure 6 (a, b, c): per-structure AVF for SPEC INT, SPEC FP, MiBench."""
    context = context or ExperimentContext(scale)
    config = baseline_config()
    fault_rates = unit_fault_rates()
    stressmark = context.stressmark(config, fault_rates)
    workloads = context.workload_reports(config, fault_rates)

    results: dict[WorkloadSuite, Figure6Result] = {}
    suite_profiles = {
        WorkloadSuite.SPEC_INT: spec_int_profiles(),
        WorkloadSuite.SPEC_FP: spec_fp_profiles(),
        WorkloadSuite.MIBENCH: mibench_profiles(),
    }
    for suite, profiles in suite_profiles.items():
        figure = Figure6Result(suite=suite)
        figure.rows["stressmark"] = {
            structure: stressmark.report.avf(structure) for structure in FIGURE6_STRUCTURES
        }
        for profile in profiles:
            report = workloads.report(profile.name)
            figure.rows[profile.name] = {
                structure: report.avf(structure) for structure in FIGURE6_STRUCTURES
            }
        results[suite] = figure
    return results


# ----------------------------------------------------------------- Figure 7


def figure7(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
) -> dict[str, SerComparisonResult]:
    """Figure 7: SER of workloads and stressmark on the RHC and EDR configurations."""
    context = context or ExperimentContext(scale)
    config = baseline_config()
    results: dict[str, SerComparisonResult] = {}
    for label, fault_rates in (("rhc", rhc_fault_rates()), ("edr", edr_fault_rates())):
        results[label] = _comparison(
            f"figure7_{label}",
            context,
            config,
            fault_rates,
            (WorkloadSuite.SPEC_INT, WorkloadSuite.SPEC_FP, WorkloadSuite.MIBENCH),
        )
    return results


# ----------------------------------------------------------------- Figure 8


@dataclass
class Figure8Result:
    """Figure 8: fault rates, per-scenario stressmark AVF and knob settings."""

    fault_rate_table: dict[str, dict[str, float]]
    queueing_avf: dict[str, dict[StructureName, float]]
    knob_tables: dict[str, dict[str, object]]
    core_ser: dict[str, float]


def figure8(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
) -> Figure8Result:
    """Figure 8: stressmark adaptation to the RHC and EDR fault-rate models."""
    context = context or ExperimentContext(scale)
    config = baseline_config()
    scenarios: dict[str, FaultRateModel] = {
        "baseline": unit_fault_rates(),
        "rhc": rhc_fault_rates(),
        "edr": edr_fault_rates(),
    }

    fault_rate_table: dict[str, dict[str, float]] = {}
    for label, model in scenarios.items():
        fault_rate_table[label] = {
            structure.value: model.rate(structure)
            for structure in (
                StructureName.ROB,
                StructureName.IQ,
                StructureName.FU,
                StructureName.RF,
                StructureName.LQ_TAG,
                StructureName.LQ_DATA,
                StructureName.SQ_TAG,
                StructureName.SQ_DATA,
            )
        }

    queueing_avf: dict[str, dict[StructureName, float]] = {}
    knob_tables: dict[str, dict[str, object]] = {}
    core_ser: dict[str, float] = {}
    for label, model in scenarios.items():
        stressmark = context.stressmark(config, model)
        queueing_avf[label] = {
            structure: stressmark.report.avf(structure) for structure in FIGURE6_STRUCTURES
        }
        knob_tables[label] = stressmark.knob_table()
        core_ser[label] = stressmark.report.core_ser

    return Figure8Result(
        fault_rate_table=fault_rate_table,
        queueing_avf=queueing_avf,
        knob_tables=knob_tables,
        core_ser=core_ser,
    )


# ----------------------------------------------------------------- Figure 9


@dataclass
class Figure9Result:
    """Figure 9: stressmark on the baseline vs Configuration A."""

    group_ser: dict[str, dict[StructureGroup, float]]
    structure_avf: dict[str, dict[StructureName, float]]
    knob_tables: dict[str, dict[str, object]]


def figure9(
    context: Optional[ExperimentContext] = None,
    scale: Optional[ExperimentScale] = None,
) -> Figure9Result:
    """Figure 9: stressmark generation for a different microarchitecture."""
    context = context or ExperimentContext(scale)
    fault_rates = unit_fault_rates()
    group_ser: dict[str, dict[StructureGroup, float]] = {}
    structure_avf: dict[str, dict[StructureName, float]] = {}
    knob_tables: dict[str, dict[str, object]] = {}
    for config in (baseline_config(), config_a()):
        stressmark = context.stressmark(config, fault_rates)
        group_ser[config.name] = {
            group: stressmark.report.ser(group) for group in GROUP_COLUMNS
        }
        structure_avf[config.name] = {
            structure: stressmark.report.avf(structure) for structure in FIGURE6_STRUCTURES
        }
        knob_tables[config.name] = stressmark.knob_table()
    return Figure9Result(
        group_ser=group_ser, structure_avf=structure_avf, knob_tables=knob_tables
    )
