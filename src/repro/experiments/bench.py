"""Performance regression harness (``repro bench``).

Times the repository's three throughput-critical paths and records the
numbers as *trajectories* in JSON files, so every future change is held to
the recorded baselines:

* ``BENCH_pipeline.json`` — one 50k-instruction detailed simulation of the
  reference stressmark on the baseline configuration (the unit of work every
  GA fitness evaluation pays).
* ``BENCH_ga.json`` — one full quick-scale GA stressmark search (a small
  number of generations, the shape of every figure-5/7/8 experiment), plus
  the wall-clock speedup of the process-pool backend over the serial backend
  on one batch of independent evaluations, plus the batch kernel plane's
  speedup over the per-genome source-kernel path on one GA-shaped batch of
  fresh genomes (``kernel_batch``), plus the numpy vector plane's speedup
  over the batch plane on the same batch shape (``kernel_vector``; records
  ``{"available": False}`` when numpy is not installed).

Every entry also records the environment it was measured in (python,
machine, numpy version or ``"absent"``, timestamp) so trajectory numbers
are comparable across hosts and installs.

Each ``repro bench`` run appends an entry to the files' ``entries`` list;
the first entry is the recorded baseline that ``benchmarks/
test_perf_simulator.py`` (the ``perf_smoke`` tier-2 gate, see
PERFORMANCE.md) compares against.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Optional

from repro.api.session import Session
from repro.api.spec import RunSpec
from repro.ga.individual import Individual
from repro.parallel.backends import ProcessPoolBackend, SerialBackend, resolve_jobs
from repro.stressmark.generator import StressmarkEvaluator, StressmarkGenerator, reference_knobs
from repro.stressmark.knobs import KnobSpace
from repro.uarch.config import baseline_config
from repro.uarch.pipeline import OutOfOrderCore

#: Default trajectory file names (written to the current working directory).
PIPELINE_BENCH_FILE = "BENCH_pipeline.json"
GA_BENCH_FILE = "BENCH_ga.json"


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def bench_pipeline(instructions: int = 50_000, repeats: int = 3) -> dict:
    """Time a single detailed simulation of the reference stressmark.

    Times both execution paths — the specialized kernel (the default; see
    PERFORMANCE.md and ``REPRO_KERNEL``) and the interpreted reference loop
    — and asserts they produce identical results.  ``seconds`` /
    ``instructions_per_second`` describe the *active* default path, which is
    what every GA fitness evaluation pays; ``kernel_build_seconds`` is the
    one-time codegen + compile cost of the kernel (paid once per distinct
    program per process, amortised by the memo and the artifact store).
    """
    from repro.uarch import kernel as kernel_cache

    config = baseline_config()
    generator = StressmarkGenerator(config=config, max_instructions=instructions)
    program = generator.codegen.generate(reference_knobs(config))
    core = OutOfOrderCore(config, seed=1)

    interpreted_result = core.run_interpreted(program, max_instructions=instructions)
    interpreted_seconds = _best_of(
        lambda: core.run_interpreted(program, max_instructions=instructions), repeats
    )

    kernel_active = kernel_cache.kernel_enabled()
    build_seconds = 0.0
    if kernel_active:
        # Direct codegen + compile cost, independent of the memo state (the
        # throwaway code object is not installed in the kernel cache).
        build_start = time.perf_counter()
        kernel_cache.compile_kernel(
            kernel_cache.kernel_source(config, program), ("bench", "probe")
        )
        build_seconds = time.perf_counter() - build_start
    result = core.run(program, max_instructions=instructions)  # warm-up + stats
    seconds = _best_of(lambda: core.run(program, max_instructions=instructions), repeats)
    kernel_identical = (
        result.stats == interpreted_result.stats
        and {n: (a.occupied_entry_cycles, a.ace_bit_cycles) for n, a in result.accumulators.items()}
        == {n: (a.occupied_entry_cycles, a.ace_bit_cycles)
            for n, a in interpreted_result.accumulators.items()}
    )
    return {
        "instructions": instructions,
        "seconds": seconds,
        "instructions_per_second": instructions / seconds if seconds > 0 else 0.0,
        "total_cycles": result.stats.total_cycles,
        "ipc": result.stats.ipc,
        "kernel": kernel_active,
        "kernel_identical": kernel_identical,
        "kernel_build_seconds": build_seconds,
        "interpreted_seconds": interpreted_seconds,
        "kernel_speedup": interpreted_seconds / seconds if kernel_active and seconds > 0 else 1.0,
    }


def bench_ledger(events: int = 200_000, repeats: int = 3) -> dict:
    """Time the vulnerability ledger's event paths in isolation.

    Two probes, mirroring how the simulator drives the ledger:

    * ``events`` fill/read/write/evict lifetime events against one storage
      structure's word tracker (the per-access cost the memory hierarchy
      pays), over a working set small enough to stay allocation-stable;
    * one :meth:`~repro.vuln.ledger.VulnerabilityLedger.credit` flush per
      simulated run for the core structures (amortised to ~zero — recorded
      here so a regression to per-op account writes would show up).
    """
    from repro.vuln.ledger import VulnerabilityLedger

    config = baseline_config()

    def drive_events() -> None:
        ledger = VulnerabilityLedger(config)
        tracker = ledger.word_tracker("dl1", 64)
        fill = tracker.record_fill
        read = tracker.record_read
        write = tracker.record_write
        evict = tracker.record_evict
        lines = 512
        for i in range(events // 4):
            line = i % lines
            word = (i >> 3) % 8
            fill(line, word, i)
            read(line, word, i + 1, ace=True)
            write(line, word, i + 2, ace=bool(i & 1))
            evict(line, word, i + 3)
        tracker.finalize(events)
        ledger.collect()

    seconds = _best_of(drive_events, repeats)

    core_names = ("iq", "rob", "lq_tag", "lq_data", "sq_tag", "sq_data", "rf", "fu")
    flushes_per_structure = 1_000

    def drive_credits() -> None:
        ledger = VulnerabilityLedger(config)
        credit = ledger.credit
        for name in core_names:
            for _ in range(flushes_per_structure):
                credit(name, 10.0, 640.0)

    credit_seconds = _best_of(drive_credits, repeats)
    return {
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds if seconds > 0 else 0.0,
        "credit_flushes": len(core_names) * flushes_per_structure,
        "credit_seconds": credit_seconds,
    }


def bench_ga(jobs: Optional[int] = None, generations: int = 2, population: int = 8) -> dict:
    """Time a small GA stressmark search at quick scale.

    Routed through the declarative run API like every other consumer: the
    benchmark is one canned :class:`RunSpec` whose ``scale_overrides`` pin
    the GA effort, executed by a :class:`Session`.
    """
    jobs = resolve_jobs(jobs)
    spec = RunSpec(
        kind="stressmark",
        name="bench_ga",
        scale="quick",
        scale_overrides={
            "stressmark_instructions": 6_000,
            "ga_population": population,
            "ga_generations": generations,
            "simulation_seed": 1,
        },
        seed=7,
    )
    with Session(jobs=jobs) as session:
        start = time.perf_counter()
        result = session.run(spec)
        seconds = time.perf_counter() - start
    ga = result.ga or {}
    return {
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "generations": generations,
        "population": population,
        "seconds": seconds,
        "evaluation_seconds": ga.get("evaluation_seconds", 0.0),
        "evaluations": ga.get("evaluations", 0),
        "cache_hits": ga.get("cache_hits", 0),
        "cache_misses": ga.get("cache_misses", 0),
        "best_fitness": ga.get("best_fitness", 0.0),
    }


def bench_parallel_speedup(jobs: Optional[int] = None, batch: int = 8) -> dict:
    """Serial vs process-pool wall clock on one batch of GA evaluations.

    The batch mirrors one GA generation: ``batch`` independent fitness
    evaluations of distinct genomes.  Fitness values must be identical under
    both backends (the determinism contract).

    Warm-up and steady state are timed **separately**, and the steady batch
    is shaped like a real GA generation: *fresh* genomes on a warm pool.
    ``warmup_seconds`` covers pool spin-up (process fork, module
    initialisation) plus one full untimed batch of distinct genomes so
    every worker builds its per-task state; ``steady_seconds`` then times a
    second batch of previously unseen genomes — each paying its own
    simulator-kernel build, exactly as GA generations do — on the warm
    workers.  The serial reference runs the *same* fresh batch in the
    parent process, which compiled none of its kernels (the pool forks
    before the parent touches them), so neither side gets a memoization
    head start and the headline ``speedup`` (serial over steady) measures
    parallelism honestly.  (Field-meaning change in the trajectory:
    entries before PR 5 recorded ``parallel_seconds`` after an untimed
    single-item warm-up — spin-up excluded, but ``jobs - 1`` workers still
    paying first-task construction inside the timed batch; since PR 5
    ``parallel_seconds`` is ``warmup + steady`` and *includes* spin-up, so
    compare ``steady_seconds`` across the boundary.)  ``cores`` records
    how much hardware parallelism was actually available: with fewer cores
    than jobs a steady-state speedup >1 is not physically reachable for
    this CPU-bound work, and the entry says so instead of hiding it.
    """
    jobs = resolve_jobs(jobs)
    config = baseline_config()
    knob_space = KnobSpace(config)
    generator = StressmarkGenerator(config=config, max_instructions=6_000)
    evaluator = StressmarkEvaluator(
        config=config,
        fault_rates=generator.fault_rates,
        fitness=generator.fitness,
        knob_space=knob_space,
        max_instructions=generator.max_instructions,
        simulation_seed=generator.simulation_seed,
    )
    reference = reference_knobs(config)

    def genomes(first_seed: int) -> list[Individual]:
        return [
            Individual(genome=reference.derive(random_seed=seed).to_genome())
            for seed in range(first_seed, first_seed + batch)
        ]

    warm_batch = genomes(0)
    # Two distinct fresh batches: a timing is only as good as its quietest
    # run, so steady/serial are each the best of two cold batches (a batch
    # can be cold only once — repeats would hit the kernel memo).
    fresh_batches = [genomes(batch), genomes(2 * batch)]

    # Pool first: workers fork before the parent compiles any fresh-batch
    # kernel, so the pool's steady batches and the serial reference both
    # meet those genomes cold.
    pool = ProcessPoolBackend(jobs)
    pool_outcomes = []
    steady_timings = []
    try:
        start = time.perf_counter()
        pool.evaluate_individuals(evaluator, [individual.copy() for individual in warm_batch])
        warmup_seconds = time.perf_counter() - start
        for fresh in fresh_batches:
            start = time.perf_counter()
            pool_outcomes.append(
                pool.evaluate_individuals(evaluator, [ind.copy() for ind in fresh])
            )
            steady_timings.append(time.perf_counter() - start)
    finally:
        pool.close()
    steady_seconds = min(steady_timings)

    serial = SerialBackend()
    serial.evaluate_individuals(evaluator, [warm_batch[0].copy()])  # untimed warm-up
    serial_outcomes = []
    serial_timings = []
    for fresh in fresh_batches:
        start = time.perf_counter()
        serial_outcomes.append(
            serial.evaluate_individuals(evaluator, [ind.copy() for ind in fresh])
        )
        serial_timings.append(time.perf_counter() - start)
    serial_seconds = min(serial_timings)

    serial_fitness = [fitness for run in serial_outcomes for fitness, _ in run]
    pool_fitness = [fitness for run in pool_outcomes for fitness, _ in run]
    return {
        "jobs": jobs,
        "cores": os.cpu_count() or 1,
        "batch": batch,
        "serial_seconds": serial_seconds,
        "warmup_seconds": warmup_seconds,
        "steady_seconds": steady_seconds,
        "parallel_seconds": warmup_seconds + steady_seconds,
        "speedup": serial_seconds / steady_seconds if steady_seconds > 0 else 0.0,
        "deterministic": serial_fitness == pool_fitness,
    }


def bench_batch_speedup(batch: int = 8, instructions: int = 6_000) -> dict:
    """Population-at-once batch kernels vs the per-genome source-kernel path.

    Times the comparison the batch evaluation plane exists for: one
    GA-generation-shaped batch of ``batch`` *fresh* genomes (never seen by
    any kernel memo), run once through the ``batch`` backend's ``run_many``
    — one config-specialized kernel, shared functional warm state, one
    operand plan per batch — and once through the ``source`` backend's
    per-genome ``run_one`` loop, which pays codegen + compile + functional
    warm-up for every genome, exactly what GA generations cost before the
    batch plane.  An untimed warm-up batch first compiles the config batch
    kernel and builds the shared warm state, so ``batch_seconds`` measures
    the steady state a GA search lives in; fresh batches still pay their
    own operand plans inside the timed region (so does every real
    generation).  The source side has no cross-genome state to warm — that
    asymmetry *is* the measurement.  The two backends touch disjoint memo
    caches, and the probe clears every in-process kernel memo first (other
    benchmarks in the same process touch overlapping programs), so both
    sides meet the same fresh programs cold; each side is best-of-two over
    two distinct fresh batches, and both must produce bit-identical
    simulation results (``deterministic``).  The recorded ``speedup`` is
    the number the ``batch-smoke`` tier-2 gate holds future changes to.
    """
    from repro.uarch import kernel as kernel_cache
    from repro.uarch.kernel_backends import BATCH, SOURCE

    config = baseline_config()
    generator = StressmarkGenerator(config=config, max_instructions=instructions)
    reference = reference_knobs(config)
    codegen = generator.codegen

    def programs(first_seed: int) -> list:
        return [
            codegen.generate(reference.derive(random_seed=seed))
            for seed in range(first_seed, first_seed + batch)
        ]

    from repro.uarch import kernel_batch

    kernel_cache.clear_kernels()
    kernel_batch.clear_batch_caches()
    core = OutOfOrderCore(config, seed=generator.simulation_seed)
    kernel_active = kernel_cache.kernel_enabled()
    BATCH.run_many(core, programs(0), instructions)  # untimed warm-up batch

    fresh_batches = [programs(batch), programs(2 * batch)]

    batch_results = []
    batch_timings = []
    for fresh in fresh_batches:
        start = time.perf_counter()
        batch_results.append(BATCH.run_many(core, fresh, instructions))
        batch_timings.append(time.perf_counter() - start)
    batch_seconds = min(batch_timings)

    source_results = []
    source_timings = []
    for fresh in fresh_batches:
        start = time.perf_counter()
        source_results.append(
            [SOURCE.run_one(core, program, instructions) for program in fresh]
        )
        source_timings.append(time.perf_counter() - start)
    source_seconds = min(source_timings)

    def signature(result) -> tuple:
        return (
            result.stats,
            {n: (a.occupied_entry_cycles, a.ace_bit_cycles)
             for n, a in result.accumulators.items()},
        )

    deterministic = all(
        signature(via_batch) == signature(via_source)
        for batch_run, source_run in zip(batch_results, source_results)
        for via_batch, via_source in zip(batch_run, source_run)
    )
    return {
        "batch": batch,
        "instructions": instructions,
        "kernel": kernel_active,
        "batch_seconds": batch_seconds,
        "source_seconds": source_seconds,
        "batch_ms_per_genome": 1000.0 * batch_seconds / batch,
        "source_ms_per_genome": 1000.0 * source_seconds / batch,
        "speedup": source_seconds / batch_seconds if batch_seconds > 0 else 0.0,
        "deterministic": deterministic,
    }


def bench_vector_speedup(batch: int = 8, instructions: int = 6_000) -> dict:
    """The numpy vector plane vs the batch kernel plane (PR 9).

    Same protocol as :func:`bench_batch_speedup`, one rung up the backend
    ladder: one GA-generation-shaped batch of fresh genomes through the
    ``vector`` backend's ``run_many`` (operand columns precomputed with
    numpy, flat-array hierarchy replica) and through the ``batch``
    backend's ``run_many``.  An untimed warm-up batch compiles both config
    kernels and builds/freezes the shared warm state, fresh batches pay
    their own operand plans and column builds inside the timed region, and
    both sides must be bit-identical (``deterministic``).  Without numpy
    the probe records ``{"available": False, "numpy": "absent"}`` instead
    of failing, so trajectories stay appendable on minimal installs.
    """
    from repro.uarch import kernel as kernel_cache
    from repro.uarch import kernel_batch, kernel_vector
    from repro.uarch.kernel_backends import BATCH, VECTOR

    if not kernel_vector.numpy_available():
        return {"available": False, "numpy": "absent"}

    config = baseline_config()
    generator = StressmarkGenerator(config=config, max_instructions=instructions)
    reference = reference_knobs(config)
    codegen = generator.codegen

    def programs(first_seed: int) -> list:
        return [
            codegen.generate(reference.derive(random_seed=seed))
            for seed in range(first_seed, first_seed + batch)
        ]

    kernel_cache.clear_kernels()
    core = OutOfOrderCore(config, seed=generator.simulation_seed)
    kernel_active = kernel_cache.kernel_enabled()
    # Untimed warm-up: compiles the batch and vector kernels, builds the
    # shared warm state and its frozen flat-array image.
    BATCH.run_many(core, programs(0), instructions)
    VECTOR.run_many(core, programs(0), instructions)

    fresh_batches = [programs(batch), programs(2 * batch)]

    vector_results = []
    vector_timings = []
    for fresh in fresh_batches:
        start = time.perf_counter()
        vector_results.append(VECTOR.run_many(core, fresh, instructions))
        vector_timings.append(time.perf_counter() - start)
    vector_seconds = min(vector_timings)

    batch_results = []
    batch_timings = []
    for fresh in fresh_batches:
        start = time.perf_counter()
        batch_results.append(BATCH.run_many(core, fresh, instructions))
        batch_timings.append(time.perf_counter() - start)
    batch_seconds = min(batch_timings)

    def signature(result) -> tuple:
        return (
            result.stats,
            {n: (a.occupied_entry_cycles, a.ace_bit_cycles)
             for n, a in result.accumulators.items()},
        )

    deterministic = all(
        signature(via_vector) == signature(via_batch)
        for vector_run, batch_run in zip(vector_results, batch_results)
        for via_vector, via_batch in zip(vector_run, batch_run)
    )
    return {
        "available": True,
        "batch": batch,
        "instructions": instructions,
        "kernel": kernel_active,
        "vector_seconds": vector_seconds,
        "batch_seconds": batch_seconds,
        "vector_ms_per_genome": 1000.0 * vector_seconds / batch,
        "batch_ms_per_genome": 1000.0 * batch_seconds / batch,
        "speedup": batch_seconds / vector_seconds if vector_seconds > 0 else 0.0,
        "deterministic": deterministic,
    }


# ----------------------------------------------------------- trajectories


def _environment() -> dict:
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = "absent"
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": numpy_version,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def load_trajectory(path: str | Path) -> dict:
    path = Path(path)
    if path.exists():
        return json.loads(path.read_text())
    return {"benchmark": path.stem, "entries": []}


def append_entry(path: str | Path, metrics: dict) -> dict:
    """Append one run's metrics to a trajectory file; returns the trajectory."""
    trajectory = load_trajectory(path)
    trajectory["entries"].append({**_environment(), **metrics})
    Path(path).write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory


def baseline_entry(path: str | Path, predicate=None) -> Optional[dict]:
    """The first recorded entry of a trajectory (the regression baseline).

    ``predicate`` selects the first *matching* entry instead — used for
    metrics added to the trajectory after its first recording (e.g. the
    ledger microbenchmark).
    """
    entries = load_trajectory(path).get("entries", [])
    if predicate is None:
        return entries[0] if entries else None
    for entry in entries:
        if predicate(entry):
            return entry
    return None


def run_benchmarks(
    jobs: Optional[int] = None,
    pipeline_path: str | Path = PIPELINE_BENCH_FILE,
    ga_path: str | Path = GA_BENCH_FILE,
    instructions: int = 50_000,
    repeats: int = 3,
) -> dict:
    """Run the full harness, append to the trajectory files, return metrics."""
    jobs = resolve_jobs(jobs)
    pipeline_metrics = bench_pipeline(instructions=instructions, repeats=repeats)
    ledger_metrics = bench_ledger(repeats=repeats)
    ga_metrics = bench_ga(jobs=jobs)
    # The speedup probe always runs multi-worker (default 4) so the recorded
    # number is meaningful even when the GA itself was benchmarked serially.
    speedup_metrics = bench_parallel_speedup(jobs=jobs if jobs > 1 else 4)
    batch_metrics = bench_batch_speedup()
    vector_metrics = bench_vector_speedup()
    append_entry(pipeline_path, {**pipeline_metrics, "ledger": ledger_metrics})
    append_entry(
        ga_path,
        {
            "ga": ga_metrics,
            "parallel": speedup_metrics,
            "kernel_batch": batch_metrics,
            "kernel_vector": vector_metrics,
        },
    )
    return {
        "pipeline": pipeline_metrics,
        "ledger": ledger_metrics,
        "ga": ga_metrics,
        "parallel": speedup_metrics,
        "kernel_batch": batch_metrics,
        "kernel_vector": vector_metrics,
    }
