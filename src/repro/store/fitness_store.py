"""A :class:`~repro.parallel.cache.FitnessCache` with a durable sqlite layer.

The in-process fitness cache already prevents duplicate genomes from paying
a second cycle-level simulation *within* one GA run.  The persistent variant
extends that guarantee across processes and sessions: every evaluation is
written through to an :class:`~repro.store.artifacts.ArtifactStore`, and a
miss in memory falls back to disk before the engine is told to simulate.

Keys are the same content digests the in-memory cache uses — genome plus the
evaluation-context digest (machine config, fault-rate model, fitness,
simulation budget and seed) — so one shared database safely serves every
configuration at once, and a resumed GA run observes the exact hit/miss
sequence of its uninterrupted twin.

``max_entries`` bounds only the in-memory layer (payloads carry programs and
SER reports); the on-disk layer is unbounded and survives eviction.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.parallel.cache import FitnessCache
from repro.store.artifacts import ArtifactStore


class PersistentFitnessCache(FitnessCache):
    """Write-through fitness cache: in-memory front, sqlite behind."""

    def __init__(
        self,
        store: Union[ArtifactStore, str, Path],
        context_digest: str = "",
        max_entries: Optional[int] = None,
    ) -> None:
        super().__init__(context_digest=context_digest, max_entries=max_entries)
        if isinstance(store, ArtifactStore):
            self._store = store
            self._owns_store = False
        else:
            self._store = ArtifactStore(store)
            self._owns_store = True
        self.disk_hits = 0

    # -------------------------------------------------------------- lookups

    def lookup_key(self, key: str) -> Optional[tuple[float, dict]]:
        entry = self._entries.get(key)
        if entry is not None:
            self._hits += 1
            fitness, payload = entry
            return fitness, dict(payload)
        stored = self._store.get(key)
        if stored is not None:
            fitness, payload = stored
            # Promote to the in-memory layer without re-writing disk.
            super().store_key(key, fitness, payload)
            self._hits += 1
            self.disk_hits += 1
            return float(fitness), dict(payload)
        self._misses += 1
        return None

    def lookup_many(self, keys: Sequence[str]) -> dict[str, tuple[float, dict]]:
        """Batched lookup: memory first, then one disk round-trip for misses.

        The GA engine calls this once per generation, so a population's worth
        of cache probes costs a single ``SELECT ... WHERE key IN`` instead of
        one query per genome.  Counters (hits/misses/disk_hits) advance
        exactly as the equivalent per-key lookups would.
        """
        found: dict[str, tuple[float, dict]] = {}
        missing: list[str] = []
        for key in keys:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                fitness, payload = entry
                found[key] = (fitness, dict(payload))
            else:
                missing.append(key)
        if missing:
            stored = self._store.get_many(missing)
            for key in missing:
                entry = stored.get(key)
                if entry is None:
                    self._misses += 1
                    continue
                fitness, payload = entry
                # Promote to the in-memory layer without re-writing disk.
                FitnessCache.store_key(self, key, fitness, payload)
                self._hits += 1
                self.disk_hits += 1
                found[key] = (float(fitness), dict(payload))
        return found

    def store_key(self, key: str, fitness: float, payload: Optional[dict] = None) -> None:
        super().store_key(key, fitness, payload)
        self._store.put(key, (float(fitness), dict(payload or {})))

    def store_many(self, entries: Mapping[str, tuple[float, Optional[dict]]]) -> None:
        """Write-through a whole generation in one sqlite transaction."""
        for key, (fitness, payload) in entries.items():
            FitnessCache.store_key(self, key, fitness, payload)
        self._store.put_many(
            {key: (float(fitness), dict(payload or {}))
             for key, (fitness, payload) in entries.items()}
        )

    # ------------------------------------------------------------- lifetime

    def close(self) -> None:
        """Release the sqlite handle (only if this cache opened it)."""
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "PersistentFitnessCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
