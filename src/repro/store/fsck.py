"""Integrity audit (and optional repair) of a result-store directory.

``repro fsck <store>`` walks every persistence layer rooted at one store
directory — ``meta.json``, the results backend (JSONL or sqlite), the
pickled artifact and fitness databases, and the GA checkpoints — and
reports what it finds.  With ``repair=True`` it additionally fixes the
*salvageable* classes of corruption in place:

* a crash-torn trailing fragment in ``results.jsonl`` is truncated away
  (the interrupted run recomputes that one result);
* an unreadable GA checkpoint file is deleted (the search restarts from
  scratch instead of dying at resume time);
* leftover ``*.tmp`` files from interrupted atomic writes are removed;
* the ``repro serve`` job journal (``journal.jsonl``): a torn tail is
  truncated away, and entries orphaned in the ``running`` state by a
  daemon crash are compacted back to ``queued`` so the next daemon
  replays them.

Unsalvageable damage — a corrupt record in the *middle* of the JSONL file,
a sqlite database failing its integrity check — is only ever reported:
repairing those would silently drop an unknown amount of data, which is a
decision for the operator, not a tool default.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.store.result_store import (
    JSONL_FILE,
    META_FILE,
    SCHEMA_VERSION,
    SQLITE_FILE,
)

#: Sqlite databases hosted in a store directory besides the results backend.
_SQLITE_SIBLINGS = ("artifacts.sqlite", "fitness.sqlite")


@dataclass(frozen=True)
class FsckFinding:
    """One problem found (and possibly repaired) during an fsck pass."""

    path: str
    problem: str
    repairable: bool = False
    repaired: bool = False

    def describe(self) -> str:
        status = "repaired" if self.repaired else ("repairable" if self.repairable else "damaged")
        return f"[{status}] {self.path}: {self.problem}"


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck_store` pass."""

    root: str
    findings: list[FsckFinding] = field(default_factory=list)
    checked_files: int = 0
    intact_results: int = 0
    checkpoints: int = 0
    artifacts: int = 0
    journaled_jobs: int = 0  # outstanding jobs in the serve journal

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def repaired(self) -> int:
        return sum(1 for finding in self.findings if finding.repaired)

    def summary(self) -> str:
        if self.clean:
            return (
                f"{self.root}: clean — {self.checked_files} file(s), "
                f"{self.intact_results} result(s), {self.artifacts} artifact(s), "
                f"{self.checkpoints} checkpoint(s)"
            )
        return (
            f"{self.root}: {len(self.findings)} problem(s), {self.repaired} repaired — "
            f"{self.intact_results} intact result(s)"
        )


def fsck_store(root: Union[str, Path], repair: bool = False) -> FsckReport:
    """Audit every persistence file under a store directory.

    Never raises on corrupt content — every problem becomes a
    :class:`FsckFinding`.  A missing directory or missing ``meta.json`` is
    itself a finding (the path is not a store), not an error.
    """
    root = Path(root)
    report = FsckReport(root=str(root))
    if not root.is_dir():
        report.findings.append(FsckFinding(path=str(root), problem="not a directory"))
        return report

    backend = _check_meta(root, report)
    if backend == "sqlite" or (backend is None and (root / SQLITE_FILE).exists()):
        _check_results_sqlite(root / SQLITE_FILE, report)
    if backend == "jsonl" or (backend is None and (root / JSONL_FILE).exists()):
        _check_results_jsonl(root / JSONL_FILE, report, repair)
    for name in _SQLITE_SIBLINGS:
        path = root / name
        if path.exists():
            report.checked_files += 1
            report.artifacts += _check_sqlite(path, report, table_rows="artifacts")
    _check_checkpoints(root / "checkpoints", report, repair)
    _check_journal(root, report, repair)
    _check_tmp_files(root, report, repair)
    return report


# --------------------------------------------------------------- meta.json


def _check_meta(root: Path, report: FsckReport) -> Optional[str]:
    meta_path = root / META_FILE
    if not meta_path.exists():
        report.findings.append(
            FsckFinding(path=str(meta_path), problem="missing store metadata (not a store?)")
        )
        return None
    report.checked_files += 1
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report.findings.append(FsckFinding(path=str(meta_path), problem=f"unreadable metadata: {exc}"))
        return None
    version = meta.get("schema_version")
    if version != SCHEMA_VERSION:
        report.findings.append(
            FsckFinding(
                path=str(meta_path),
                problem=f"schema {version!r} unsupported (this build reads {SCHEMA_VERSION})",
            )
        )
    backend = meta.get("backend")
    return str(backend) if backend else None


# ------------------------------------------------------------ results files


def _check_results_jsonl(path: Path, report: FsckReport, repair: bool) -> None:
    if not path.exists():
        return
    report.checked_files += 1
    try:
        data = path.read_bytes()
    except OSError as exc:  # pragma: no cover - filesystem failure
        report.findings.append(FsckFinding(path=str(path), problem=f"unreadable: {exc}"))
        return
    text = data.decode("utf-8", errors="replace")
    torn_tail = bool(text) and not text.endswith("\n")
    lines = text.splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        final = index == len(lines) - 1
        problem = _record_problem(line)
        if problem is None:
            report.intact_results += 1
            continue
        if final and (torn_tail or problem.startswith("unparseable")):
            repaired = False
            if repair:
                # Truncate away the fragment line; everything before it is
                # intact (a torn tail has no trailing newline to preserve).
                if torn_tail:
                    keep = data.rfind(b"\n") + 1
                else:
                    keep = data.rfind(b"\n", 0, len(data) - 1) + 1
                with open(path, "r+b") as handle:
                    handle.truncate(keep)
                repaired = True
            report.findings.append(
                FsckFinding(
                    path=f"{path}:{index + 1}",
                    problem=f"truncated final record ({problem})",
                    repairable=True,
                    repaired=repaired,
                )
            )
        else:
            report.findings.append(
                FsckFinding(path=f"{path}:{index + 1}", problem=problem)
            )


def _record_problem(line: str) -> Optional[str]:
    """Why a JSONL line is not a valid result record (None when valid)."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        return f"unparseable JSON: {exc}"
    if not isinstance(record, dict):
        return "not a JSON object"
    if record.get("schema_version") != SCHEMA_VERSION:
        return f"unsupported schema {record.get('schema_version')!r}"
    if "digest" not in record or "result" not in record:
        return "missing digest/result fields"
    return None


def _check_results_sqlite(path: Path, report: FsckReport) -> None:
    if not path.exists():
        return
    report.checked_files += 1
    connection = _open_checked(path, report)
    if connection is None:
        return
    try:
        rows = connection.execute("SELECT digest, schema_version FROM results")
        for digest, version in rows:
            if version != SCHEMA_VERSION:
                report.findings.append(
                    FsckFinding(
                        path=str(path),
                        problem=f"digest {digest}: unsupported schema {version!r}",
                    )
                )
            else:
                report.intact_results += 1
    except sqlite3.DatabaseError as exc:
        report.findings.append(FsckFinding(path=str(path), problem=f"unreadable results table: {exc}"))
    finally:
        connection.close()


# --------------------------------------------------------- sqlite siblings


def _open_checked(path: Path, report: FsckReport) -> Optional[sqlite3.Connection]:
    """Open a sqlite file and run its integrity check; None when damaged."""
    try:
        connection = sqlite3.connect(str(path))
        (status,) = connection.execute("PRAGMA integrity_check").fetchone()
    except sqlite3.DatabaseError as exc:
        report.findings.append(FsckFinding(path=str(path), problem=f"corrupt database: {exc}"))
        return None
    if status != "ok":
        report.findings.append(
            FsckFinding(path=str(path), problem=f"integrity check failed: {status}")
        )
        connection.close()
        return None
    return connection


def _check_sqlite(path: Path, report: FsckReport, table_rows: str) -> int:
    connection = _open_checked(path, report)
    if connection is None:
        return 0
    try:
        (count,) = connection.execute(f"SELECT COUNT(*) FROM {table_rows}").fetchone()
        return int(count)
    except sqlite3.DatabaseError:
        # The sibling exists but the expected table doesn't (empty db is
        # legitimate — created but never written).
        return 0
    finally:
        connection.close()


# ------------------------------------------------------------- checkpoints


def _check_checkpoints(directory: Path, report: FsckReport, repair: bool) -> None:
    if not directory.is_dir():
        return
    from repro.store.checkpoint import CheckpointError, CheckpointManager

    for path in sorted(directory.glob("*.ckpt")):
        report.checked_files += 1
        try:
            CheckpointManager(path).load()
            report.checkpoints += 1
        except CheckpointError as exc:
            repaired = False
            if repair:
                path.unlink(missing_ok=True)
                repaired = True
            report.findings.append(
                FsckFinding(
                    path=str(path),
                    problem=f"unloadable checkpoint: {exc}",
                    repairable=True,
                    repaired=repaired,
                )
            )


# ------------------------------------------------------------- job journal


def _check_journal(root: Path, report: FsckReport, repair: bool) -> None:
    """Audit the ``repro serve`` job journal hosted beside the results.

    A torn final record (daemon killed mid-append) is salvageable: repair
    truncates it away, exactly like the results backend.  Jobs orphaned in
    the ``running`` state (daemon killed mid-evaluation) are reported, and
    repair compacts the journal — dropping the ``start`` markers so the
    next daemon replays them as ``queued``.  Mid-file corruption is only
    reported: repairing it would silently drop acknowledged jobs.
    """
    from repro.serve.journal import JOURNAL_FILE, JobJournal, JournalError

    path = root / JOURNAL_FILE
    if not path.exists():
        return
    report.checked_files += 1
    journal = JobJournal(path)
    try:
        audit = journal.audit()
    except JournalError as exc:
        report.findings.append(
            FsckFinding(path=str(path), problem=f"corrupt job journal: {exc}")
        )
        return
    report.journaled_jobs += len(audit.entries)
    if audit.torn_tail:
        repaired = False
        if repair:
            # Drop the final (unparseable) record whether or not the tear
            # consumed its newline — mirror _check_results_jsonl.
            data = path.read_bytes()
            if data.endswith(b"\n"):
                keep = data.rfind(b"\n", 0, len(data) - 1) + 1
            else:
                keep = data.rfind(b"\n") + 1
            with open(path, "r+b") as handle:
                handle.truncate(keep)
            repaired = True
        report.findings.append(
            FsckFinding(
                path=str(path),
                problem="torn final journal record (daemon killed mid-append)",
                repairable=True,
                repaired=repaired,
            )
        )
    if audit.orphaned_running:
        repaired = False
        if repair:
            journal.compact(audit.entries)
            repaired = True
        report.findings.append(
            FsckFinding(
                path=str(path),
                problem=(
                    f"{audit.orphaned_running} job(s) orphaned in the running "
                    f"state (daemon crashed mid-evaluation); compaction requeues "
                    f"them for the next daemon"
                ),
                repairable=True,
                repaired=repaired,
            )
        )


# -------------------------------------------------------------- tmp debris


def _check_tmp_files(root: Path, report: FsckReport, repair: bool) -> None:
    for path in sorted(root.rglob("*.tmp")):
        repaired = False
        if repair:
            path.unlink(missing_ok=True)
            repaired = True
        report.findings.append(
            FsckFinding(
                path=str(path),
                problem="leftover temp file from an interrupted atomic write",
                repairable=True,
                repaired=repaired,
            )
        )
