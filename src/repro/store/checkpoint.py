"""Per-generation GA checkpoints: interrupt a search, resume bit-identically.

The :class:`~repro.ga.engine.GeneticAlgorithm` snapshots its complete loop
state after every generation — the bred population for the next generation,
the RNG state, the stall/best-so-far convergence trackers, the accumulated
history and counters — so a run killed at any point resumes from the last
completed generation and finishes with exactly the results (same best
genome, fitness, history and evaluation counts) an uninterrupted run
produces.  Combined with a persistent fitness cache the resumed run even
observes the identical cache hit/miss sequence.

Checkpoints are pickles written atomically (temp file + rename), so a crash
mid-save leaves the previous checkpoint intact.  A ``settings_digest``
recorded at save time guards against resuming with different GA parameters
or a different gene space, which could only produce garbage.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

#: Version of the pickled checkpoint layout; bump on incompatible changes.
CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint is corrupt, incompatible or from different settings."""


@dataclass
class GACheckpoint:
    """Complete engine loop state at a generation boundary."""

    settings_digest: str
    next_generation: int
    rng_state: tuple
    population: list
    best: object
    all_time_best: Optional[object]
    history: list = field(default_factory=list)
    evaluations: int = 0
    cataclysm_generations: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    stall: int = 0
    best_so_far: float = float("-inf")
    # Readers use getattr with a default: pickle restores __dict__ directly,
    # so checkpoints written before this field lack it (schema unchanged —
    # old checkpoints stay loadable, old readers ignore the extra attribute).
    quarantined: int = 0
    schema_version: int = CHECKPOINT_SCHEMA_VERSION


class CheckpointManager:
    """Atomic save/load/clear of one search's :class:`GACheckpoint` file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, checkpoint: GACheckpoint) -> None:
        """Persist a checkpoint atomically (temp file + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def load(self) -> Optional[GACheckpoint]:
        """The stored checkpoint, or ``None`` when absent."""
        if not self.path.exists():
            return None
        try:
            with open(self.path, "rb") as handle:
                checkpoint = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc
        if not isinstance(checkpoint, GACheckpoint):
            raise CheckpointError(f"{self.path} does not contain a GACheckpoint")
        if checkpoint.schema_version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has schema {checkpoint.schema_version}; "
                f"this build reads schema {CHECKPOINT_SCHEMA_VERSION}"
            )
        return checkpoint

    def clear(self) -> None:
        """Delete the checkpoint file if present."""
        self.path.unlink(missing_ok=True)
