"""Persistent, content-addressed storage for :class:`~repro.api.spec.RunResult`s.

A :class:`ResultStore` is a directory that durably maps RunSpec sha256
digests to their RunResult JSON documents.  Two interchangeable backends
persist the mapping:

``jsonl`` (the default)
    ``results.jsonl`` — one schema-versioned JSON record per line.  Appends
    are single ``write`` calls followed by a flush, and the loader tolerates
    a truncated *final* line, so a run killed mid-append never corrupts the
    records written before it.
``sqlite``
    ``results.sqlite`` — a one-table sqlite database; every put commits a
    transaction, so interrupted writes roll back cleanly.

The backend choice is recorded in ``meta.json`` (written atomically via a
temp-file rename) together with the store schema version; opening a store
with a conflicting backend or an unknown schema raises :class:`StoreError`
instead of silently misreading records.

Putting two *different* results under the same digest raises — deterministic
simulations must reproduce the same rows for the same spec, so a conflict
indicates nondeterminism (or a stale store) that should never be papered
over.  Wall-clock ``timing`` blocks and fault-tolerance
``provenance.resilience`` counters are excluded from the comparison — they
describe how a run executed, not what it computed.

``repro fsck`` (see :mod:`repro.store.fsck`) audits every file of a store
directory and can repair salvageable corruption in place.

The directory also hosts the sibling persistence layers used by the
execution stack (see :mod:`repro.store.artifacts`,
:mod:`repro.store.fitness_store` and :mod:`repro.store.checkpoint`):

.. code-block:: text

    store/
      meta.json            backend + schema version
      results.jsonl        (or results.sqlite) RunResult records
      artifacts.sqlite     pickled simulation artefacts (context caches)
      fitness.sqlite       persistent GA fitness cache
      checkpoints/*.ckpt   per-search GA generation checkpoints
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.api.spec import RunResult
from repro.store.sqlite_util import connect_with_retry, retry_locked
from repro.testing.chaos import chaos_mangle

logger = logging.getLogger("repro.store")

#: Version of the on-disk record layout; bump on incompatible changes.
SCHEMA_VERSION = 1

#: File names inside a store directory.
META_FILE = "meta.json"
JSONL_FILE = "results.jsonl"
SQLITE_FILE = "results.sqlite"

BACKENDS = ("jsonl", "sqlite")


class StoreError(RuntimeError):
    """A result store is corrupt, incompatible or used inconsistently."""


try:  # POSIX advisory locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


@contextlib.contextmanager
def _exclusive_lock(handle):
    """Advisory exclusive lock on an open file (no-op where unsupported)."""
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temp name is unique per writer: several processes opening one store
    concurrently (serve daemon + offline runs) each write ``meta.json``
    through here, and a shared ``.tmp`` name would let one writer truncate
    the file another is about to rename into place.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f"{path.name}.{os.getpid()}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def _strip_volatile(document: dict) -> dict:
    """A copy of a RunResult JSON dict without run-dependent blocks.

    ``timing``, ``provenance.resilience`` and ``ga.evaluation_seconds``
    describe *how* a run executed (wall clock, fault/retry counters), not
    *what* it computed, so two results differing only there are still the
    same result for conflict detection.
    """
    stripped = {key: value for key, value in document.items() if key != "timing"}
    provenance = stripped.get("provenance")
    if isinstance(provenance, dict) and "resilience" in provenance:
        stripped["provenance"] = {
            key: value for key, value in provenance.items() if key != "resilience"
        }
    ga = stripped.get("ga")
    if isinstance(ga, dict) and "evaluation_seconds" in ga:
        stripped["ga"] = {
            key: value for key, value in ga.items() if key != "evaluation_seconds"
        }
    if stripped.get("children"):
        stripped["children"] = [_strip_volatile(child) for child in stripped["children"]]
    return stripped


class _JsonlBackend:
    """Append-only JSONL persistence (one record per line)."""

    name = "jsonl"

    def __init__(self, root: Path) -> None:
        self.path = root / JSONL_FILE

    def load_all(self) -> dict[str, dict]:
        if not self.path.exists():
            return {}
        records: dict[str, dict] = {}
        text = self.path.read_text()
        # A file not ending in a newline was torn by a crash mid-append:
        # its final line is a fragment, even if it happens to parse.
        torn_tail = bool(text) and not text.endswith("\n")
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            final = index == len(lines) - 1
            where = f"{self.path}:{index + 1}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if final:
                    # Salvage: everything before the torn record is intact.
                    self._log_salvage(where, f"unparseable fragment ({exc})", len(records))
                    break
                raise StoreError(f"corrupt record at {where}: {exc}") from exc
            try:
                self._check_schema(record, where)
            except StoreError as exc:
                if final and torn_tail:
                    self._log_salvage(where, str(exc), len(records))
                    break
                raise
            records[str(record["digest"])] = record["result"]
        return records

    @staticmethod
    def _log_salvage(where: str, reason: str, intact: int) -> None:
        logger.warning(
            "salvaged result store: dropped truncated final record at %s (%s); "
            "%d intact record(s) kept — the interrupted run will recompute it",
            where, reason, intact,
        )

    @staticmethod
    def _check_schema(record: dict, where: str) -> None:
        version = record.get("schema_version")
        if version != SCHEMA_VERSION:
            raise StoreError(
                f"unsupported store schema {version!r} at {where} "
                f"(this build reads schema {SCHEMA_VERSION})"
            )
        if "digest" not in record or "result" not in record:
            raise StoreError(f"malformed record at {where}: expected digest + result fields")

    def append(self, digest: str, document: dict) -> None:
        record = {"schema_version": SCHEMA_VERSION, "digest": digest, "result": document}
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        # Chaos site "result-store": the truncate kind tears this write in
        # half, exactly like a crash mid-append (no-op outside chaos tests).
        line = chaos_mangle("result-store", line)
        # A single buffered write + flush keeps the line contiguous; the
        # loader above recovers from a torn final line either way.  The
        # advisory flock serializes concurrent writers — a serve daemon and
        # an offline `repro run --store` sharing one directory must not
        # interleave appends or stomp each other's tail-salvage truncation.
        # O_CREAT without O_TRUNC: two processes racing to create the file
        # must not wipe each other's first record the way open("wb") would.
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        with os.fdopen(fd, "r+b") as handle:
            with _exclusive_lock(handle):
                self._truncate_torn_tail(handle)
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    @staticmethod
    def _truncate_torn_tail(handle) -> None:
        """Drop a crash-torn final line so a fresh record never concatenates
        onto the fragment (which would corrupt both records)."""
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        content = handle.read()
        keep = content.rfind(b"\n") + 1  # 0 when no newline at all
        handle.truncate(keep)
        handle.seek(keep)

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


class _SqliteBackend:
    """Transactional sqlite persistence."""

    name = "sqlite"

    def __init__(self, root: Path) -> None:
        self.path = root / SQLITE_FILE
        self._connection = connect_with_retry(self.path)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " digest TEXT PRIMARY KEY,"
            " schema_version INTEGER NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        self._connection.commit()

    def load_all(self) -> dict[str, dict]:
        records: dict[str, dict] = {}
        rows = self._connection.execute("SELECT digest, schema_version, payload FROM results")
        for digest, version, payload in rows:
            if version != SCHEMA_VERSION:
                raise StoreError(
                    f"unsupported store schema {version!r} for digest {digest} in {self.path} "
                    f"(this build reads schema {SCHEMA_VERSION})"
                )
            records[str(digest)] = json.loads(payload)
        return records

    def append(self, digest: str, document: dict) -> None:
        payload = json.dumps(document, separators=(",", ":"))

        def _write() -> None:
            with self._connection:
                self._connection.execute(
                    "INSERT OR REPLACE INTO results (digest, schema_version, payload) VALUES (?, ?, ?)",
                    (digest, SCHEMA_VERSION, payload),
                )

        retry_locked(_write, f"append to {self.path}")

    def close(self) -> None:
        self._connection.close()


class ResultStore:
    """Durable digest -> RunResult mapping rooted at one directory.

    Use :func:`open_store` (or the constructor) to create/open; the store is
    a context manager.  ``put``/``get`` work on RunResult objects; raw JSON
    documents are kept in memory so repeated gets avoid re-parsing.
    """

    def __init__(self, root: Union[str, Path], backend: Optional[str] = None) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store path {self.root} exists and is not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self.backend_name = self._resolve_backend(backend)
        self._write_meta()
        self._backend = (
            _SqliteBackend(self.root) if self.backend_name == "sqlite" else _JsonlBackend(self.root)
        )
        self._documents: dict[str, dict] = self._backend.load_all()
        self._results: dict[str, RunResult] = {}
        self._fitness_store = None
        self._artifact_store = None

    # -------------------------------------------------------------- metadata

    def _resolve_backend(self, requested: Optional[str]) -> str:
        if requested is not None and requested not in BACKENDS:
            raise StoreError(f"unknown store backend {requested!r} (expected one of: {', '.join(BACKENDS)})")
        meta_path = self.root / META_FILE
        recorded: Optional[str] = None
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except json.JSONDecodeError as exc:
                raise StoreError(f"corrupt store metadata {meta_path}: {exc}") from exc
            version = meta.get("schema_version")
            if version != SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.root} has schema {version!r}; this build reads schema {SCHEMA_VERSION}"
                )
            recorded = meta.get("backend")
        elif (self.root / SQLITE_FILE).exists():
            recorded = "sqlite"
        elif (self.root / JSONL_FILE).exists():
            recorded = "jsonl"
        if recorded is not None and requested is not None and recorded != requested:
            raise StoreError(
                f"store {self.root} was created with the {recorded!r} backend; "
                f"cannot reopen it as {requested!r}"
            )
        return recorded or requested or "jsonl"

    def _write_meta(self) -> None:
        meta = {"schema_version": SCHEMA_VERSION, "backend": self.backend_name}
        atomic_write_text(self.root / META_FILE, json.dumps(meta, indent=2) + "\n")

    # ------------------------------------------------------------ result API

    def put(self, result: RunResult, digest: Optional[str] = None) -> str:
        """Persist a result; returns the digest it was stored under.

        ``digest`` defaults to the result's spec digest.  Re-putting the same
        result is a no-op (first write wins); putting a *different* result
        under an existing digest raises (timing excluded from the comparison).
        """
        digest = digest or result.spec_digest
        document = result.to_json_dict()
        existing = self._documents.get(digest)
        if existing is not None:
            if _strip_volatile(existing) != _strip_volatile(document):
                raise StoreError(
                    f"digest {digest} already maps to a different result in {self.root}; "
                    f"deterministic runs must agree — refusing to overwrite"
                )
            return digest
        self._backend.append(digest, document)
        self._documents[digest] = document
        self._results.pop(digest, None)
        return digest

    def get(self, digest: str) -> Optional[RunResult]:
        """The stored result for a digest, or ``None``."""
        result = self._results.get(digest)
        if result is not None:
            return result
        document = self._documents.get(digest)
        if document is None:
            return None
        result = RunResult.from_json_dict(document)
        self._results[digest] = result
        return result

    def document(self, digest: str) -> Optional[dict]:
        """The raw JSON document for a digest (merge/inspection helper)."""
        return self._documents.get(digest)

    def digests(self) -> list[str]:
        return sorted(self._documents)

    def __contains__(self, digest: str) -> bool:
        return digest in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    # --------------------------------------------------------------- merging

    def merge_from(self, other: "ResultStore") -> int:
        """Copy every record of ``other`` into this store; returns #added.

        Records present in both stores must agree (timing excluded) — a
        mismatch raises, because two shards of one sweep can only disagree if
        something nondeterministic happened.
        """
        added = 0
        for digest in other.digests():
            document = other.document(digest)
            assert document is not None
            existing = self._documents.get(digest)
            if existing is not None:
                if _strip_volatile(existing) != _strip_volatile(document):
                    raise StoreError(
                        f"merge conflict for digest {digest}: {other.root} disagrees with {self.root}"
                    )
                continue
            self._backend.append(digest, document)
            self._documents[digest] = document
            added += 1
        return added

    # ------------------------------------------------- sibling persistence

    def fitness_store(self):
        """The store's shared persistent fitness-cache database (lazy)."""
        if self._fitness_store is None:
            from repro.store.artifacts import ArtifactStore

            self._fitness_store = ArtifactStore(self.root / "fitness.sqlite")
        return self._fitness_store

    def artifact_store(self):
        """The store's pickled simulation-artefact database (lazy)."""
        if self._artifact_store is None:
            from repro.store.artifacts import ArtifactStore

            self._artifact_store = ArtifactStore(self.root / "artifacts.sqlite")
        return self._artifact_store

    def checkpoint(self, key: str):
        """A GA checkpoint manager for one search, keyed by digest."""
        from repro.store.checkpoint import CheckpointManager

        return CheckpointManager(self.root / "checkpoints" / f"{key}.ckpt")

    # -------------------------------------------------------------- lifetime

    def close(self) -> None:
        self._backend.close()
        if self._fitness_store is not None:
            self._fitness_store.close()
            self._fitness_store = None
        if self._artifact_store is not None:
            self._artifact_store.close()
            self._artifact_store = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_store(path: Union[str, Path, ResultStore], backend: Optional[str] = None) -> ResultStore:
    """Open (or create) a result store at ``path``; passes stores through."""
    if isinstance(path, ResultStore):
        return path
    return ResultStore(path, backend=backend)


def merge_stores(destination: Union[str, Path, ResultStore], sources: Iterable[Union[str, Path, ResultStore]],
                 backend: Optional[str] = None) -> tuple[ResultStore, int]:
    """Merge shard stores into ``destination``; returns (store, #added).

    The destination is created if missing; every source must already be a
    store (opening a store silently creates one, so a typo'd source path
    would otherwise merge as empty and the miss would go unnoticed).
    """
    checked: list[Union[str, Path, ResultStore]] = []
    for source in sources:
        if not isinstance(source, ResultStore) and not (Path(source) / META_FILE).exists():
            raise StoreError(f"source {source} is not a result store (no {META_FILE})")
        checked.append(source)
    dest = open_store(destination, backend=backend)
    added = 0
    for source in checked:
        src = open_store(source)
        added += dest.merge_from(src)
        if src is not dest:
            src.close()
    return dest, added
