"""Sqlite open/write helpers that survive transient ``database is locked``.

Several processes share one store directory (sharded sweeps, a warm pool
flushing the fitness cache while the orchestrator writes artifacts), so a
connection or commit can transiently hit sqlite's ``database is locked`` /
``database is busy`` errors.  Those are not corruption — another writer
merely holds the lock — so every store-side open and write retries with
capped exponential backoff before giving up.

The backoff schedule mirrors :class:`~repro.parallel.resilience.RetryPolicy`
in spirit but is deliberately independent: store contention limits are not a
per-run tunable, and importing the parallel layer here would invert the
dependency between the two subsystems.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path
from typing import Callable, TypeVar, Union

T = TypeVar("T")

#: Attempts per locked operation (first try included).
LOCKED_MAX_ATTEMPTS = 6

#: Base backoff between attempts; doubles per retry, capped below.
LOCKED_BASE_DELAY = 0.05
LOCKED_MAX_DELAY = 1.0

#: Per-connection sqlite busy timeout (seconds) — sqlite's own first line of
#: defence before our retry loop even sees a locked error.
BUSY_TIMEOUT_SECONDS = 5.0


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def retry_locked(operation: Callable[[], T], what: str) -> T:
    """Run a sqlite operation, retrying transient locked/busy errors.

    Any other :class:`sqlite3.OperationalError` (corruption, disk full,
    schema mismatch) propagates on the first attempt.
    """
    for attempt in range(1, LOCKED_MAX_ATTEMPTS + 1):
        try:
            return operation()
        except sqlite3.OperationalError as exc:
            if not _is_locked(exc) or attempt >= LOCKED_MAX_ATTEMPTS:
                raise
            time.sleep(min(LOCKED_MAX_DELAY, LOCKED_BASE_DELAY * (2.0 ** (attempt - 1))))
    raise AssertionError(f"unreachable: {what}")  # pragma: no cover


def connect_with_retry(path: Union[str, Path]) -> sqlite3.Connection:
    """Open a sqlite database, retrying while another process holds the lock."""

    def _open() -> sqlite3.Connection:
        # check_same_thread=False: the serve daemon opens stores on its
        # evaluation thread and releases them from the shutdown path; the
        # callers serialize access (one evaluation thread, close-after-join),
        # sqlite's own locking covers cross-process writers.
        connection = sqlite3.connect(
            str(path), timeout=BUSY_TIMEOUT_SECONDS, check_same_thread=False
        )
        connection.execute(f"PRAGMA busy_timeout = {int(BUSY_TIMEOUT_SECONDS * 1000)}")
        return connection

    return retry_locked(_open, f"connect {path}")
