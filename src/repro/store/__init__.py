"""Durable storage for results, simulation artefacts and GA search state.

The store subsystem gives every expensive computation in the repository a
persistent home keyed by content digests:

* :class:`ResultStore` — RunSpec-digest -> RunResult documents (JSONL or
  sqlite backend, atomic writes, schema-versioned); the unit ``repro sweep
  --shard``/``repro merge`` shard and join.
* :class:`ArtifactStore` — pickled simulation artefacts backing the
  :class:`~repro.experiments.runner.ExperimentContext` caches, so figures
  and tables replay from a populated store without re-simulating.
* :class:`PersistentFitnessCache` — the GA fitness cache with a sqlite
  write-through layer: duplicate genomes never re-simulate, across
  processes and sessions.
* :class:`CheckpointManager` / :class:`GACheckpoint` — per-generation GA
  checkpoints; an interrupted search resumes bit-identically.
* :func:`fsck_store` — the ``repro fsck`` audit/repair pass over all of the
  above (salvage torn JSONL tails, drop unloadable checkpoints, report
  sqlite corruption).
"""

from repro.store.artifacts import ArtifactStore, artifact_key
from repro.store.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointManager,
    GACheckpoint,
)
from repro.store.fitness_store import PersistentFitnessCache
from repro.store.fsck import FsckFinding, FsckReport, fsck_store
from repro.store.result_store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreError,
    atomic_write_text,
    merge_stores,
    open_store,
)

__all__ = [
    "ArtifactStore",
    "artifact_key",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "GACheckpoint",
    "PersistentFitnessCache",
    "FsckFinding",
    "FsckReport",
    "fsck_store",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreError",
    "atomic_write_text",
    "merge_stores",
    "open_store",
]
