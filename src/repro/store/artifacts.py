"""Pickled key-value persistence for heavyweight simulation artefacts.

The in-memory caches of :class:`~repro.experiments.runner.ExperimentContext`
(per-workload :class:`~repro.uarch.pipeline.SimulationResult`s, whole
:class:`~repro.stressmark.generator.StressmarkResult`s) and the GA's
persistent fitness cache all need to survive the process so figures, tables
and sweeps can replay from a populated store without re-simulating.  Those
objects are rich Python values, so they are persisted as pickles inside a
one-table sqlite database — transactional writes, safe concurrent readers,
and no bespoke file format.

Security note: pickles execute code on load.  An :class:`ArtifactStore` must
only ever open files the local toolchain wrote itself (they live inside a
result-store directory the user created); never point it at untrusted data.
"""

from __future__ import annotations

import pickle
import sqlite3
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.parallel.cache import evaluation_context_digest
from repro.store.sqlite_util import connect_with_retry, retry_locked
from repro.testing.chaos import chaos_hook


def artifact_key(*parts: object) -> str:
    """Stable sha256 key derived from the ``repr`` of every part.

    All parts must have deterministic reprs (dataclasses, ints, strings —
    never objects falling back to address-bearing ``object.__repr__``), so
    the same logical artefact maps to the same key across processes and
    sessions.  The digest scheme is shared with the fitness cache's
    evaluation-context digest so the two key spaces can never drift apart.
    """
    return evaluation_context_digest(*parts)


class ArtifactStore:
    """A durable ``key -> pickled object`` mapping backed by sqlite."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Retried open: sibling processes (pool workers flushing the fitness
        # cache, sweep shards) legitimately hold the lock in bursts.
        self._connection = connect_with_retry(self.path)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS artifacts (key TEXT PRIMARY KEY, payload BLOB NOT NULL)"
        )
        self._connection.commit()

    def get(self, key: str) -> Optional[object]:
        """Unpickle and return the stored object, or ``None`` on miss."""
        row = self._connection.execute(
            "SELECT payload FROM artifacts WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return pickle.loads(row[0])

    def put(self, key: str, value: object) -> None:
        """Persist an object under ``key`` (last write wins)."""
        chaos_hook("artifact-store")
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)

        def _write() -> None:
            with self._connection:
                self._connection.execute(
                    "INSERT OR REPLACE INTO artifacts (key, payload) VALUES (?, ?)",
                    (key, sqlite3.Binary(payload)),
                )

        retry_locked(_write, f"put into {self.path}")

    def get_many(self, keys: Sequence[str]) -> dict[str, object]:
        """Fetch every present key of ``keys`` in one round-trip.

        Returns only the hits; absent keys are simply missing from the
        result.  Queries are chunked comfortably below sqlite's bound-
        parameter limit, so arbitrarily large key lists are fine.
        """
        unique = list(dict.fromkeys(keys))
        found: dict[str, object] = {}
        for start in range(0, len(unique), 500):
            chunk = unique[start:start + 500]
            placeholders = ",".join("?" * len(chunk))
            rows = self._connection.execute(
                f"SELECT key, payload FROM artifacts WHERE key IN ({placeholders})",
                chunk,
            )
            for key, payload in rows:
                found[key] = pickle.loads(payload)
        return found

    def put_many(self, items: Union[Mapping[str, object], Iterable[tuple[str, object]]]) -> None:
        """Persist several objects in one transaction (last write wins)."""
        pairs = list(items.items()) if isinstance(items, Mapping) else list(items)
        if not pairs:
            return
        chaos_hook("artifact-store")
        payloads = [
            (key, sqlite3.Binary(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)))
            for key, value in pairs
        ]

        def _write() -> None:
            with self._connection:
                self._connection.executemany(
                    "INSERT OR REPLACE INTO artifacts (key, payload) VALUES (?, ?)",
                    payloads,
                )

        retry_locked(_write, f"put_many into {self.path}")

    def keys(self) -> list[str]:
        rows = self._connection.execute("SELECT key FROM artifacts ORDER BY key")
        return [key for (key,) in rows]

    def __contains__(self, key: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM artifacts WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        (count,) = self._connection.execute("SELECT COUNT(*) FROM artifacts").fetchone()
        return int(count)

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
