"""Static instruction definitions for the synthetic ISA.

The ISA deliberately models only what ACE analysis and queue occupancy need:

* the *class* of an instruction decides which queueing structure it occupies
  (IQ then FU for arithmetic, IQ+LQ for loads, IQ+SQ for stores) and its
  execution latency;
* register source/destination operands decide dataflow (issue readiness) and
  rename register file occupancy;
* the operand width decides what fraction of a 64-bit datapath entry is ACE;
* the ``ace`` flag marks instructions whose results can never affect program
  output (NOPs, software prefetches, dynamically dead instructions) — these
  occupy structures but contribute no ACE bits, exactly as in Mukherjee et
  al.'s classification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Sequence

from repro.isa.memoryref import AddressPattern

#: Number of architected integer registers (Alpha has 32; R31 is the zero reg,
#: which we keep writable for simplicity — the paper's stressmark uses every
#: architected register).
ARCH_REG_COUNT = 32


class InstructionClass(Enum):
    """Functional class of an instruction; decides structure occupancy."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"
    PREFETCH = "prefetch"

    @property
    def is_memory(self) -> bool:
        """True for instructions that occupy the LQ or SQ."""
        return self in (InstructionClass.LOAD, InstructionClass.STORE, InstructionClass.PREFETCH)

    @property
    def is_arithmetic(self) -> bool:
        """True for instructions executed on an arithmetic functional unit."""
        return self in (
            InstructionClass.INT_ALU,
            InstructionClass.INT_MUL,
            InstructionClass.INT_DIV,
        )


class OperandWidth(Enum):
    """Operand width in bits; sub-word operations leave un-ACE datapath bits."""

    WORD32 = 32
    WORD64 = 64

    @property
    def bits(self) -> int:
        return self.value

    def ace_fraction(self, datapath_bits: int = 64) -> float:
        """Fraction of a ``datapath_bits``-wide field that holds ACE data."""
        return min(1.0, self.value / float(datapath_bits))


@dataclass(frozen=True)
class Instruction:
    """A static instruction.

    Attributes
    ----------
    opclass:
        Functional class (load, store, ALU, ...).
    dest:
        Destination architected register, or ``None`` for stores, branches,
        NOPs and prefetches.
    srcs:
        Source architected registers (register dataflow only — immediates are
        represented simply by having fewer sources).
    width:
        Operand width; governs the ACE fraction of data fields.
    ace:
        Whether the instruction's result can reach program output.  Wrong-path
        instructions are additionally marked un-ACE dynamically by the
        simulator regardless of this flag.
    address_pattern:
        For memory instructions, how the effective address is produced per
        dynamic instance.
    taken_probability:
        For branches, the probability the branch is taken on a given dynamic
        instance (1.0 = always-taken loop branch).
    latency_override:
        Optional latency override; ``None`` uses the machine configuration's
        latency for the class.
    label:
        Free-form tag used by the code generator and tests (for example
        ``"pointer_chase"`` or ``"loop_branch"``).
    """

    opclass: InstructionClass
    dest: Optional[int] = None
    srcs: tuple[int, ...] = field(default_factory=tuple)
    width: OperandWidth = OperandWidth.WORD64
    ace: bool = True
    address_pattern: Optional[AddressPattern] = None
    taken_probability: float = 1.0
    latency_override: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.dest is not None and not 0 <= self.dest < ARCH_REG_COUNT:
            raise ValueError(f"destination register {self.dest} out of range")
        for reg in self.srcs:
            if not 0 <= reg < ARCH_REG_COUNT:
                raise ValueError(f"source register {reg} out of range")
        if self.opclass.is_memory and self.address_pattern is None:
            raise ValueError(f"{self.opclass.value} instruction requires an address pattern")
        if self.opclass is InstructionClass.BRANCH and not 0.0 <= self.taken_probability <= 1.0:
            raise ValueError("taken_probability must be within [0, 1]")

    @property
    def is_load(self) -> bool:
        return self.opclass is InstructionClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is InstructionClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.opclass is InstructionClass.BRANCH

    @property
    def is_arithmetic(self) -> bool:
        return self.opclass.is_arithmetic

    @property
    def writes_register(self) -> bool:
        """True when the instruction allocates a rename register."""
        return self.dest is not None

    def data_ace_fraction(self) -> float:
        """ACE fraction of the instruction's data fields (0.0 if un-ACE)."""
        if not self.ace:
            return 0.0
        return self.width.ace_fraction()


def make_alu(
    dest: int,
    srcs: Sequence[int],
    width: OperandWidth = OperandWidth.WORD64,
    ace: bool = True,
    label: str = "",
) -> Instruction:
    """Create a single-cycle integer ALU instruction."""
    return Instruction(
        opclass=InstructionClass.INT_ALU,
        dest=dest,
        srcs=tuple(srcs),
        width=width,
        ace=ace,
        label=label,
    )


def make_mul(
    dest: int,
    srcs: Sequence[int],
    width: OperandWidth = OperandWidth.WORD64,
    ace: bool = True,
    label: str = "",
) -> Instruction:
    """Create a long-latency integer multiply instruction."""
    return Instruction(
        opclass=InstructionClass.INT_MUL,
        dest=dest,
        srcs=tuple(srcs),
        width=width,
        ace=ace,
        label=label,
    )


def make_div(
    dest: int,
    srcs: Sequence[int],
    width: OperandWidth = OperandWidth.WORD64,
    ace: bool = True,
    label: str = "",
) -> Instruction:
    """Create a very long latency integer divide instruction."""
    return Instruction(
        opclass=InstructionClass.INT_DIV,
        dest=dest,
        srcs=tuple(srcs),
        width=width,
        ace=ace,
        label=label,
    )


def make_load(
    dest: int,
    address_pattern: AddressPattern,
    srcs: Sequence[int] = (),
    width: OperandWidth = OperandWidth.WORD64,
    ace: bool = True,
    label: str = "",
) -> Instruction:
    """Create a load instruction with the given address pattern."""
    return Instruction(
        opclass=InstructionClass.LOAD,
        dest=dest,
        srcs=tuple(srcs),
        width=width,
        ace=ace,
        address_pattern=address_pattern,
        label=label,
    )


def make_store(
    address_pattern: AddressPattern,
    srcs: Sequence[int],
    width: OperandWidth = OperandWidth.WORD64,
    ace: bool = True,
    label: str = "",
) -> Instruction:
    """Create a store instruction; ``srcs`` must include the stored value."""
    if not srcs:
        raise ValueError("store requires at least one source register (the stored value)")
    return Instruction(
        opclass=InstructionClass.STORE,
        dest=None,
        srcs=tuple(srcs),
        width=width,
        ace=ace,
        address_pattern=address_pattern,
        label=label,
    )


def make_branch(
    srcs: Sequence[int] = (),
    taken_probability: float = 1.0,
    ace: bool = True,
    label: str = "",
) -> Instruction:
    """Create a conditional branch instruction."""
    return Instruction(
        opclass=InstructionClass.BRANCH,
        dest=None,
        srcs=tuple(srcs),
        ace=ace,
        taken_probability=taken_probability,
        label=label,
    )


def make_nop(label: str = "") -> Instruction:
    """Create a NOP (always un-ACE)."""
    return Instruction(opclass=InstructionClass.NOP, ace=False, label=label)


def make_prefetch(address_pattern: AddressPattern, label: str = "") -> Instruction:
    """Create a software prefetch (always un-ACE; occupies the LQ)."""
    return Instruction(
        opclass=InstructionClass.PREFETCH,
        ace=False,
        address_pattern=address_pattern,
        label=label,
    )
