"""Program container: a setup section plus an inner loop body.

Both the AVF stressmark and the synthetic workload proxies have the same
shape the paper's code-generator framework uses: an initialisation section
that touches the data region once, followed by an inner loop executed many
times.  The simulator consumes the program as a dynamic instruction stream
produced by :meth:`Program.dynamic_stream`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping, Optional

from repro.isa.instructions import Instruction, InstructionClass


@dataclass(frozen=True)
class WarmupRegion:
    """A data region whose steady-state cache/TLB contents are pre-established.

    The paper's stressmark initialises its whole array (page_size × DTLB
    entries) before the measured loop and dumps it to a file afterwards, so in
    steady state the caches hold dirty ACE data for the array and the DTLB
    holds its translations.  A short simulation window cannot reach that
    steady state by itself, so programs declare their initialised footprint
    here and the simulator warms the memory hierarchy functionally before the
    detailed window (see DESIGN.md, "Scaled evaluation defaults").

    Attributes
    ----------
    base, size_bytes:
        Address range of the region.
    dirty:
        Whether the warmed lines hold data written by the program (dirty in
        the caches, hence ACE until written back).
    ace:
        Whether the region's contents are live program data.
    word_fraction:
        Fraction of each line's words actually holding live data (captures
        fragmented, strided footprints).
    recurrent:
        True when the program's steady-state access pattern revisits the
        region cyclically with a period longer than the simulated window;
        DTLB entries for such regions are treated as ACE until the end of the
        window unless they are evicted (steady-state extrapolation).
    """

    base: int
    size_bytes: int
    dirty: bool = True
    ace: bool = True
    word_fraction: float = 1.0
    recurrent: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("warmup region size must be positive")
        if not 0.0 <= self.word_fraction <= 1.0:
            raise ValueError("word_fraction must be within [0, 1]")


class BranchBehavior(Enum):
    """How a branch's dynamic outcome is produced.

    ``LOOP_CLOSING`` branches are taken on every iteration except the last
    one (highly predictable); ``BIASED`` branches are taken with the static
    ``taken_probability`` drawn independently per dynamic instance.
    """

    LOOP_CLOSING = "loop_closing"
    BIASED = "biased"


@dataclass(frozen=True)
class DynamicOp:
    """One dynamic instruction instance in the fetch stream."""

    seq: int
    iteration: int
    index_in_body: int
    instruction: Instruction
    in_setup: bool = False


@dataclass
class Program:
    """A synthetic program: optional setup section plus a repeated loop body.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports and experiment tables).
    body:
        Instructions of the inner loop, executed ``iterations`` times.
    setup:
        Instructions executed once before the loop (e.g. the memory
        initialisation walk of the stressmark framework).
    iterations:
        Number of loop iterations available; the simulator may stop earlier
        when it reaches its dynamic instruction budget.
    branch_behaviors:
        Optional mapping from body index to :class:`BranchBehavior` for
        branches; unmapped branches default to ``BIASED``.
    pointer_chase_indices:
        Body indices of loads that are serialised against their own previous
        dynamic instance (the paper's self-dependent strided load that defeats
        memory-level parallelism).
    warmup_regions:
        Data regions whose steady-state cache/TLB contents are established
        before the detailed simulation window (see :class:`WarmupRegion`).
    metadata:
        Free-form metadata (knob values, workload profile parameters).
    """

    name: str
    body: list[Instruction]
    setup: list[Instruction] = field(default_factory=list)
    iterations: int = 1_000_000
    branch_behaviors: dict[int, BranchBehavior] = field(default_factory=dict)
    pointer_chase_indices: frozenset[int] = frozenset()
    warmup_regions: list[WarmupRegion] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("program body must contain at least one instruction")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        for index in self.pointer_chase_indices:
            if not 0 <= index < len(self.body):
                raise ValueError(f"pointer_chase index {index} out of body range")
            if self.body[index].opclass is not InstructionClass.LOAD:
                raise ValueError("pointer_chase indices must refer to loads")

    @property
    def body_size(self) -> int:
        """Number of static instructions in the loop body."""
        return len(self.body)

    def branch_behavior(self, body_index: int) -> BranchBehavior:
        """Behaviour of the branch at ``body_index`` (default: BIASED)."""
        return self.branch_behaviors.get(body_index, BranchBehavior.BIASED)

    def instruction_mix(self) -> Mapping[str, float]:
        """Static fraction of each instruction class in the loop body."""
        counts: dict[str, int] = {}
        for instruction in self.body:
            counts[instruction.opclass.value] = counts.get(instruction.opclass.value, 0) + 1
        total = float(len(self.body))
        return {name: count / total for name, count in counts.items()}

    def ace_instruction_fraction(self) -> float:
        """Fraction of body instructions whose results can reach the output."""
        ace_count = sum(1 for instruction in self.body if instruction.ace)
        return ace_count / float(len(self.body))

    def dynamic_stream(self, max_instructions: Optional[int] = None) -> Iterator[DynamicOp]:
        """Yield the dynamic instruction stream.

        The stream is the setup section once, then the body repeated for
        ``iterations`` iterations, truncated at ``max_instructions`` dynamic
        instructions when given.
        """
        budget = max_instructions if max_instructions is not None else float("inf")
        seq = 0
        for index, instruction in enumerate(self.setup):
            if seq >= budget:
                return
            yield DynamicOp(
                seq=seq,
                iteration=-1,
                index_in_body=index,
                instruction=instruction,
                in_setup=True,
            )
            seq += 1
        for iteration in range(self.iterations):
            for index, instruction in enumerate(self.body):
                if seq >= budget:
                    return
                yield DynamicOp(
                    seq=seq,
                    iteration=iteration,
                    index_in_body=index,
                    instruction=instruction,
                    in_setup=False,
                )
                seq += 1

    def static_footprint_bytes(self) -> int:
        """Upper bound on the data footprint of all memory instructions."""
        footprint = 0
        for instruction in list(self.setup) + list(self.body):
            if instruction.address_pattern is not None:
                footprint = max(footprint, instruction.address_pattern.footprint_bytes())
        return footprint
