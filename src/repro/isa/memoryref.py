"""Address patterns for memory instructions.

The AVF of caches and the DTLB depends on *which* bytes are touched and in
what order (lifetime analysis), so memory instructions carry a declarative
address pattern rather than a concrete address.  The simulator resolves the
pattern per dynamic instance using the loop iteration index and a
deterministic per-instance RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import DeterministicRng


class AddressPattern:
    """Base class for address patterns.

    Subclasses implement :meth:`resolve`, mapping a dynamic iteration index to
    a byte address.  All patterns are immutable and deterministic given the
    iteration index (plus the seeded RNG for :class:`RandomPattern`).
    """

    def resolve(self, iteration: int, rng: DeterministicRng) -> int:
        """Return the byte address for the given dynamic iteration."""
        raise NotImplementedError

    def footprint_bytes(self) -> int:
        """Upper bound on the number of distinct bytes the pattern can touch."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedPattern(AddressPattern):
    """Always the same address (scalar global access)."""

    address: int

    def resolve(self, iteration: int, rng: DeterministicRng) -> int:
        return self.address

    def footprint_bytes(self) -> int:
        return 1


@dataclass(frozen=True)
class StridedPattern(AddressPattern):
    """Strided access over a region: ``base + (iteration * stride) % region``."""

    base: int
    stride: int
    region: int

    def __post_init__(self) -> None:
        if self.region <= 0:
            raise ValueError("region must be positive")
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    def resolve(self, iteration: int, rng: DeterministicRng) -> int:
        return self.base + (iteration * self.stride) % self.region

    def footprint_bytes(self) -> int:
        return self.region


@dataclass(frozen=True)
class PointerChasePattern(AddressPattern):
    """Strided pointer chase over a large region.

    Functionally the address sequence is the same as :class:`StridedPattern`;
    the distinction matters to the *code generator*, which makes the load that
    carries this pattern data-dependent on its own previous instance so the
    resulting L2 misses cannot overlap (no memory-level parallelism), exactly
    as the paper's inner loop does.
    """

    base: int
    stride: int
    region: int

    def __post_init__(self) -> None:
        if self.region <= 0:
            raise ValueError("region must be positive")
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    def resolve(self, iteration: int, rng: DeterministicRng) -> int:
        return self.base + (iteration * self.stride) % self.region

    def footprint_bytes(self) -> int:
        return self.region


@dataclass(frozen=True)
class LineCoverPattern(AddressPattern):
    """Walk every ``word_bytes``-sized word of consecutive cache lines.

    Used by the code generator to make loads and stores touch every byte of
    the previously fetched cache line, so the whole line becomes ACE (the
    "cover every location in previous cache line" step of the paper's
    generator framework).
    """

    base: int
    line_bytes: int
    region: int
    word_bytes: int = 8
    slot: int = 0
    slots: int = 1
    iteration_offset: int = 0

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.region <= 0 or self.word_bytes <= 0:
            raise ValueError("line_bytes, region and word_bytes must be positive")
        if self.slots <= 0 or not 0 <= self.slot < self.slots:
            raise ValueError("slot must be within [0, slots)")

    def resolve(self, iteration: int, rng: DeterministicRng) -> int:
        effective = max(0, iteration + self.iteration_offset)
        words_per_line = max(1, self.line_bytes // self.word_bytes)
        word_index = (effective * self.slots + self.slot) % words_per_line
        line_index = (effective * self.line_bytes) % self.region
        return self.base + line_index + word_index * self.word_bytes

    def footprint_bytes(self) -> int:
        return self.region


@dataclass(frozen=True)
class RandomPattern(AddressPattern):
    """Uniformly random aligned accesses within a working-set region."""

    base: int
    region: int
    alignment: int = 8

    def __post_init__(self) -> None:
        if self.region <= 0:
            raise ValueError("region must be positive")
        if self.alignment <= 0:
            raise ValueError("alignment must be positive")

    def resolve(self, iteration: int, rng: DeterministicRng) -> int:
        slots = max(1, self.region // self.alignment)
        return self.base + rng.randint(0, slots - 1) * self.alignment

    def footprint_bytes(self) -> int:
        return self.region
