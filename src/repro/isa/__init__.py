"""Synthetic ISA substrate.

The simulator does not execute Alpha binaries; instead, programs are sequences
of :class:`~repro.isa.instructions.Instruction` objects in a small synthetic
ISA that captures everything the AVF methodology depends on: instruction
class (load / store / short and long arithmetic / branch / NOP / prefetch),
register dataflow, operand width, memory address patterns, branch outcome
behaviour and per-instruction ACE-ness.
"""

from repro.isa.instructions import (
    ARCH_REG_COUNT,
    Instruction,
    InstructionClass,
    OperandWidth,
    make_alu,
    make_branch,
    make_div,
    make_load,
    make_mul,
    make_nop,
    make_prefetch,
    make_store,
)
from repro.isa.memoryref import (
    AddressPattern,
    FixedPattern,
    LineCoverPattern,
    PointerChasePattern,
    RandomPattern,
    StridedPattern,
)
from repro.isa.program import BranchBehavior, Program, WarmupRegion

__all__ = [
    "ARCH_REG_COUNT",
    "Instruction",
    "InstructionClass",
    "OperandWidth",
    "make_alu",
    "make_branch",
    "make_div",
    "make_load",
    "make_mul",
    "make_nop",
    "make_prefetch",
    "make_store",
    "AddressPattern",
    "FixedPattern",
    "LineCoverPattern",
    "PointerChasePattern",
    "RandomPattern",
    "StridedPattern",
    "BranchBehavior",
    "Program",
    "WarmupRegion",
]
