"""Genetic algorithm substrate (re-implementation of the SNAP-style engine).

The paper uses IBM's SNAP GA framework (available only under NDA) to search
the stressmark knob space.  This package provides an equivalent engine with
the behaviours the paper relies on: generational evolution with tournament
selection, crossover (rate 0.73), per-gene mutation (rate 0.05), migration of
fresh random individuals, and a *cataclysm* that re-seeds the population
around the best individual when the population converges (the fitness dip at
generation 30 of Figure 5b).
"""

from repro.ga.genes import BoolGene, FloatGene, Gene, GeneSpace, IntGene
from repro.ga.individual import Individual
from repro.ga.engine import GAParameters, GAResult, GenerationStats, GeneticAlgorithm

__all__ = [
    "BoolGene",
    "FloatGene",
    "Gene",
    "GeneSpace",
    "IntGene",
    "Individual",
    "GAParameters",
    "GAResult",
    "GenerationStats",
    "GeneticAlgorithm",
]
