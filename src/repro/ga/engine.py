"""Generational genetic-algorithm engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ga.genes import GeneSpace
from repro.ga.individual import Individual, best_of, population_diversity
from repro.ga.operators import cataclysm, crossover, migrate, mutate, tournament_selection
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class GAParameters:
    """Engine parameters.

    Defaults follow the paper: crossover rate 0.73 and mutation probability
    0.05 (from Grefenstette and Srinivas/Patnaik, as cited in Section V); the
    paper's full-scale run uses 50 generations of 50 individuals.
    """

    population_size: int = 50
    generations: int = 50
    crossover_rate: float = 0.73
    mutation_rate: float = 0.05
    tournament_size: int = 3
    elite_count: int = 2
    migration_count: int = 2
    cataclysm_diversity_threshold: float = 0.25
    cataclysm_stall_generations: int = 8
    seed: int = 2010

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be within [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be within [0, 1]")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise ValueError("elite_count must be in [0, population_size)")


@dataclass(frozen=True)
class GenerationStats:
    """Fitness statistics of one generation (Figure 5b's data points)."""

    generation: int
    best_fitness: float
    average_fitness: float
    worst_fitness: float
    diversity: float
    cataclysm: bool


@dataclass
class GAResult:
    """Outcome of a GA run."""

    best: Individual
    history: list[GenerationStats] = field(default_factory=list)
    evaluations: int = 0
    cataclysm_generations: list[int] = field(default_factory=list)

    @property
    def best_fitness(self) -> float:
        return float(self.best.fitness) if self.best.fitness is not None else float("nan")

    def average_fitness_trace(self) -> list[float]:
        """Per-generation average fitness (the curve of Figure 5b)."""
        return [stats.average_fitness for stats in self.history]

    def best_fitness_trace(self) -> list[float]:
        return [stats.best_fitness for stats in self.history]


class GeneticAlgorithm:
    """Generational GA with elitism, migration and cataclysm-on-convergence."""

    def __init__(
        self,
        space: GeneSpace,
        evaluator: Callable[[Individual], float],
        parameters: Optional[GAParameters] = None,
        on_generation: Optional[Callable[[GenerationStats, list[Individual]], None]] = None,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.parameters = parameters or GAParameters()
        self.on_generation = on_generation

    # ----------------------------------------------------------------- API

    def run(self, initial_population: Optional[list[Individual]] = None) -> GAResult:
        """Run the GA and return the best individual found."""
        params = self.parameters
        rng = DeterministicRng(params.seed)
        self._all_time_best = None
        population = self._initial_population(initial_population, rng)

        result = GAResult(best=population[0])
        stall = 0
        best_so_far = float("-inf")

        for generation in range(params.generations):
            result.evaluations += self._evaluate(population)

            stats, population = self._generation_stats(generation, population)
            if stats.best_fitness > best_so_far + 1e-12:
                best_so_far = stats.best_fitness
                stall = 0
            else:
                stall += 1

            triggered_cataclysm = False
            if generation < params.generations - 1:
                if (
                    stats.diversity <= params.cataclysm_diversity_threshold
                    or stall >= params.cataclysm_stall_generations
                ):
                    population = cataclysm(self.space, population, rng, params.mutation_rate)
                    triggered_cataclysm = True
                    stall = 0
                else:
                    population = self._next_generation(population, rng)

            stats = GenerationStats(
                generation=stats.generation,
                best_fitness=stats.best_fitness,
                average_fitness=stats.average_fitness,
                worst_fitness=stats.worst_fitness,
                diversity=stats.diversity,
                cataclysm=triggered_cataclysm,
            )
            result.history.append(stats)
            if triggered_cataclysm:
                result.cataclysm_generations.append(generation)
            if self.on_generation is not None:
                self.on_generation(stats, population)

        result.evaluations += self._evaluate(population)
        result.best = best_of(population + [result.best] if result.best.evaluated else population)
        # Keep the globally best individual (elitism already preserves it in
        # the population, but a cataclysm in the last generation could not).
        all_time_best = self._all_time_best
        if all_time_best is not None and (
            result.best.fitness is None or all_time_best.fitness >= result.best.fitness
        ):
            result.best = all_time_best
        return result

    # ------------------------------------------------------------- helpers

    _all_time_best: Optional[Individual] = None

    def _initial_population(
        self, initial: Optional[list[Individual]], rng: DeterministicRng
    ) -> list[Individual]:
        params = self.parameters
        population = [ind.copy() for ind in initial] if initial else []
        for individual in population:
            self.space.validate(individual.genome)
        while len(population) < params.population_size:
            population.append(Individual(genome=self.space.sample(rng)))
        return population[: params.population_size]

    def _evaluate(self, population: list[Individual]) -> int:
        evaluations = 0
        for individual in population:
            if individual.evaluated:
                continue
            individual.fitness = float(self.evaluator(individual))
            evaluations += 1
            if self._all_time_best is None or individual.fitness > self._all_time_best.fitness:
                self._all_time_best = individual.copy()
                self._all_time_best.payload = dict(individual.payload)
        return evaluations

    def _generation_stats(
        self, generation: int, population: list[Individual]
    ) -> tuple[GenerationStats, list[Individual]]:
        fitnesses = [float(ind.fitness) for ind in population if ind.fitness is not None]
        stats = GenerationStats(
            generation=generation,
            best_fitness=max(fitnesses),
            average_fitness=sum(fitnesses) / len(fitnesses),
            worst_fitness=min(fitnesses),
            diversity=population_diversity(population),
            cataclysm=False,
        )
        return stats, population

    def _next_generation(
        self, population: list[Individual], rng: DeterministicRng
    ) -> list[Individual]:
        params = self.parameters
        ranked = sorted(
            population,
            key=lambda ind: ind.fitness if ind.fitness is not None else float("-inf"),
            reverse=True,
        )
        next_population: list[Individual] = [ind.copy() for ind in ranked[: params.elite_count]]

        while len(next_population) < params.population_size:
            parent_a = tournament_selection(population, rng, params.tournament_size)
            if rng.coin(params.crossover_rate):
                parent_b = tournament_selection(population, rng, params.tournament_size)
                child = crossover(self.space, parent_a, parent_b, rng)
            else:
                child = parent_a.copy()
                child.fitness = None
                child.payload = {}
            child = mutate(self.space, child, rng, params.mutation_rate)
            next_population.append(child)

        if params.migration_count > 0:
            # Migration introduces fresh random genomes to keep exploring.
            evaluated_tail = [ind for ind in next_population[params.elite_count :]]
            kept_head = next_population[: params.elite_count]
            migrated = migrate(
                self.space,
                evaluated_tail,
                rng,
                params.migration_count,
            )
            next_population = kept_head + migrated
        return next_population[: params.population_size]
