"""Generational genetic-algorithm engine."""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.checkpoint import CheckpointManager

from repro.ga.genes import GeneSpace
from repro.ga.individual import Individual, best_of, population_diversity
from repro.ga.operators import cataclysm, crossover, migrate, mutate, tournament_selection
from repro.parallel.backends import EvaluationBackend, SerialBackend
from repro.parallel.cache import FitnessCache, genome_digest
from repro.parallel.resilience import Quarantined, TaskFailedError
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class GAParameters:
    """Engine parameters.

    Defaults follow the paper: crossover rate 0.73 and mutation probability
    0.05 (from Grefenstette and Srinivas/Patnaik, as cited in Section V); the
    paper's full-scale run uses 50 generations of 50 individuals.
    """

    population_size: int = 50
    generations: int = 50
    crossover_rate: float = 0.73
    mutation_rate: float = 0.05
    tournament_size: int = 3
    elite_count: int = 2
    migration_count: int = 2
    cataclysm_diversity_threshold: float = 0.25
    cataclysm_stall_generations: int = 8
    seed: int = 2010

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be at least 2")
        if self.generations < 1:
            raise ValueError("generations must be at least 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be within [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be within [0, 1]")
        if self.elite_count < 0 or self.elite_count >= self.population_size:
            raise ValueError("elite_count must be in [0, population_size)")


@dataclass(frozen=True)
class GenerationStats:
    """Fitness statistics of one generation (Figure 5b's data points)."""

    generation: int
    best_fitness: float
    average_fitness: float
    worst_fitness: float
    diversity: float
    cataclysm: bool


@dataclass
class GAResult:
    """Outcome of a GA run.

    ``evaluation_seconds`` is the wall-clock time this process spent inside
    the evaluation backend (worker fan-out included, cache hits excluded) —
    the number ``repro bench`` splits into warm-up and steady state.  Like
    the cache counters it describes *this* process's work, so a resumed run
    restarts it at zero.

    ``quarantined`` counts individuals whose evaluation kept failing and was
    quarantined by a resilient backend (see
    :class:`~repro.parallel.resilience.Quarantined`); they carry ``-inf``
    fitness and are excluded from the fitness cache.
    """

    best: Individual
    history: list[GenerationStats] = field(default_factory=list)
    evaluations: int = 0
    cataclysm_generations: list[int] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    evaluation_seconds: float = 0.0
    quarantined: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of fitness lookups served by the memoization cache."""
        lookups = self.cache_hits + self.cache_misses
        if not lookups:
            return 0.0
        return self.cache_hits / lookups

    @property
    def best_fitness(self) -> float:
        return float(self.best.fitness) if self.best.fitness is not None else float("nan")

    def average_fitness_trace(self) -> list[float]:
        """Per-generation average fitness (the curve of Figure 5b)."""
        return [stats.average_fitness for stats in self.history]

    def best_fitness_trace(self) -> list[float]:
        return [stats.best_fitness for stats in self.history]


class GeneticAlgorithm:
    """Generational GA with elitism, migration and cataclysm-on-convergence.

    ``backend`` decides where fitness evaluations run: the default
    :class:`SerialBackend` evaluates in-process, while a
    :class:`~repro.parallel.backends.ProcessPoolBackend` fans a generation out
    across worker processes.  Results are applied in population order, so a
    run is bit-identical for any worker count.

    ``fitness_cache`` memoizes evaluations by genome content (see
    :class:`~repro.parallel.cache.FitnessCache`).  The default creates a
    private cache per engine; pass ``False`` to disable memoization (for
    non-deterministic evaluators) or share a preconfigured cache across runs.

    ``on_evaluated`` is called once per newly evaluated individual — cache
    hits included — in deterministic population order, in the main process.
    """

    def __init__(
        self,
        space: GeneSpace,
        evaluator: Callable[[Individual], float],
        parameters: Optional[GAParameters] = None,
        on_generation: Optional[Callable[[GenerationStats, list[Individual]], None]] = None,
        backend: Optional[EvaluationBackend] = None,
        fitness_cache: Union[FitnessCache, bool, None] = None,
        on_evaluated: Optional[Callable[[Individual], None]] = None,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.parameters = parameters or GAParameters()
        self.on_generation = on_generation
        self.backend = backend or SerialBackend()
        if fitness_cache is False:
            self.fitness_cache: Optional[FitnessCache] = None
        elif fitness_cache is True or fitness_cache is None:
            # Bounded by default so long runs with payload-carrying
            # evaluators cannot grow memory without limit.
            self.fitness_cache = FitnessCache(max_entries=4096)
        else:
            self.fitness_cache = fitness_cache
        self.on_evaluated = on_evaluated

    # ----------------------------------------------------------------- API

    def run(
        self,
        initial_population: Optional[list[Individual]] = None,
        checkpoint: Optional["CheckpointManager"] = None,
    ) -> GAResult:
        """Run the GA and return the best individual found.

        ``checkpoint`` (a :class:`~repro.store.checkpoint.CheckpointManager`)
        persists the complete loop state after every generation; when it
        already holds a checkpoint recorded under the same parameters and
        gene space, the run resumes from the last completed generation and
        reproduces the identical search trajectory — populations,
        per-generation history, best genome and fitness — of an
        uninterrupted run.  The ``evaluations``/cache counters report the
        work *this* process performed: the re-run of the generation that was
        in flight at the interruption lands in the fitness cache (on disk
        with a :class:`~repro.store.fitness_store.PersistentFitnessCache`,
        where the interrupted process already wrote its results), so resumed
        totals can differ from the uninterrupted run's while
        ``evaluations + cache_hits`` is conserved.  ``initial_population``
        is ignored on resume — the checkpointed population already embeds
        it.
        """
        params = self.parameters
        rng = DeterministicRng(params.seed)
        settings_digest = self._settings_digest() if checkpoint is not None else ""
        resumed = checkpoint.load() if checkpoint is not None else None
        if resumed is not None and resumed.settings_digest != settings_digest:
            from repro.store.checkpoint import CheckpointError

            raise CheckpointError(
                f"checkpoint {checkpoint.path} was recorded under different GA "
                f"parameters or a different gene space; clear it to start fresh"
            )

        self._eval_seconds = 0.0
        if resumed is not None:
            rng.setstate(resumed.rng_state)
            population = [individual.copy() for individual in resumed.population]
            result = GAResult(
                best=resumed.best,
                history=list(resumed.history),
                evaluations=resumed.evaluations,
                cataclysm_generations=list(resumed.cataclysm_generations),
            )
            self._all_time_best = resumed.all_time_best
            self._run_cache_hits = resumed.cache_hits
            self._run_cache_misses = resumed.cache_misses
            # Older checkpoints (pre-resilience) lack the counter; pickle
            # restores __dict__ directly, so dataclass defaults do not apply.
            self._run_quarantined = getattr(resumed, "quarantined", 0)
            stall = resumed.stall
            best_so_far = resumed.best_so_far
            start_generation = resumed.next_generation
        else:
            self._all_time_best = None
            self._run_cache_hits = 0
            self._run_cache_misses = 0
            self._run_quarantined = 0
            population = self._initial_population(initial_population, rng)
            result = GAResult(best=population[0])
            stall = 0
            best_so_far = float("-inf")
            start_generation = 0

        for generation in range(start_generation, params.generations):
            # On KeyboardInterrupt (or an aborting worker failure) mid-
            # generation, persist the loop state *before* this generation's
            # evaluation so a resume re-runs only the in-flight generation.
            # The RNG is untouched during evaluation and the population is
            # exactly what the end of the previous generation produced, so
            # checkpointing "generation - 1" here is equivalent to the
            # checkpoint written after the previous generation — it merely
            # also exists when the interrupt precedes any completed one.
            try:
                result.evaluations += self._evaluate(population)
            except (KeyboardInterrupt, TaskFailedError):
                if checkpoint is not None:
                    self._save_checkpoint(
                        checkpoint, settings_digest, generation - 1, rng,
                        population, result, stall, best_so_far,
                    )
                raise
            result.evaluation_seconds = self._eval_seconds

            stats, population = self._generation_stats(generation, population)
            if stats.best_fitness > best_so_far + 1e-12:
                best_so_far = stats.best_fitness
                stall = 0
            else:
                stall += 1

            triggered_cataclysm = False
            if generation < params.generations - 1:
                if (
                    stats.diversity <= params.cataclysm_diversity_threshold
                    or stall >= params.cataclysm_stall_generations
                ):
                    population = cataclysm(self.space, population, rng, params.mutation_rate)
                    triggered_cataclysm = True
                    stall = 0
                else:
                    population = self._next_generation(population, rng)

            stats = GenerationStats(
                generation=stats.generation,
                best_fitness=stats.best_fitness,
                average_fitness=stats.average_fitness,
                worst_fitness=stats.worst_fitness,
                diversity=stats.diversity,
                cataclysm=triggered_cataclysm,
            )
            result.history.append(stats)
            if triggered_cataclysm:
                result.cataclysm_generations.append(generation)
            if self.on_generation is not None:
                self.on_generation(stats, population)
            if checkpoint is not None:
                self._save_checkpoint(
                    checkpoint, settings_digest, generation, rng, population,
                    result, stall, best_so_far,
                )

        try:
            result.evaluations += self._evaluate(population)
        except (KeyboardInterrupt, TaskFailedError):
            if checkpoint is not None:
                self._save_checkpoint(
                    checkpoint, settings_digest, params.generations - 1, rng,
                    population, result, stall, best_so_far,
                )
            raise
        result.evaluation_seconds = self._eval_seconds
        result.best = best_of(population + [result.best] if result.best.evaluated else population)
        # Keep the globally best individual (elitism already preserves it in
        # the population, but a cataclysm in the last generation could not).
        all_time_best = self._all_time_best
        if all_time_best is not None and (
            result.best.fitness is None or all_time_best.fitness >= result.best.fitness
        ):
            result.best = all_time_best
        result.cache_hits = self._run_cache_hits
        result.cache_misses = self._run_cache_misses
        result.quarantined = self._run_quarantined
        return result

    # ------------------------------------------------------------- helpers

    _all_time_best: Optional[Individual] = None
    _run_cache_hits: int = 0
    _run_cache_misses: int = 0
    _run_quarantined: int = 0
    _eval_seconds: float = 0.0

    def _settings_digest(self) -> str:
        """Digest of the parameters + gene space a checkpoint is valid for."""
        parts = [repr(self.parameters)] + [repr(gene) for gene in self.space]
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    def _save_checkpoint(
        self,
        checkpoint: "CheckpointManager",
        settings_digest: str,
        generation: int,
        rng: DeterministicRng,
        population: list[Individual],
        result: GAResult,
        stall: int,
        best_so_far: float,
    ) -> None:
        from repro.store.checkpoint import GACheckpoint

        all_time_best = self._all_time_best
        checkpoint.save(
            GACheckpoint(
                settings_digest=settings_digest,
                next_generation=generation + 1,
                rng_state=rng.getstate(),
                population=[individual.copy() for individual in population],
                best=result.best.copy(),
                all_time_best=None if all_time_best is None else all_time_best.copy(),
                history=list(result.history),
                evaluations=result.evaluations,
                cataclysm_generations=list(result.cataclysm_generations),
                cache_hits=self._run_cache_hits,
                cache_misses=self._run_cache_misses,
                stall=stall,
                best_so_far=best_so_far,
                quarantined=self._run_quarantined,
            )
        )

    def _initial_population(
        self, initial: Optional[list[Individual]], rng: DeterministicRng
    ) -> list[Individual]:
        params = self.parameters
        population = [ind.copy() for ind in initial] if initial else []
        for individual in population:
            self.space.validate(individual.genome)
        while len(population) < params.population_size:
            population.append(Individual(genome=self.space.sample(rng)))
        return population[: params.population_size]

    def _evaluate(self, population: list[Individual]) -> int:
        """Evaluate every not-yet-evaluated individual; returns evaluator calls.

        Invariant: already-``evaluated`` individuals (elites carried over by
        :meth:`_next_generation`) are filtered out *before* anything is
        submitted to the backend or the cache, so they are never re-simulated
        and never pay cache-lookup bookkeeping.
        """
        pending = [individual for individual in population if not individual.evaluated]
        if not pending:
            return 0

        cache = self.fitness_cache
        to_run: list[Individual] = []
        run_keys: list[str] = []
        # Duplicate genomes inside one batch share a single evaluation —
        # with or without an attached cache: the first occurrence runs, the
        # rest ride along as (dedup) cache hits.  Dedup happens *before* the
        # batch is built, so duplicates never inflate the batch shipped to
        # the backend.
        followers: dict[str, list[Individual]] = {}
        keys = [
            cache.key_for(individual.genome) if cache is not None
            else genome_digest(individual.genome)
            for individual in pending
        ]
        hits = cache.lookup_many(keys) if cache is not None else {}
        for individual, key in zip(pending, keys):
            hit = hits.get(key)
            if hit is not None:
                fitness, payload = hit
                individual.fitness = fitness
                individual.payload = dict(payload)
                self._run_cache_hits += 1
            elif key in followers:
                followers[key].append(individual)
                self._run_cache_hits += 1
            else:
                followers[key] = []
                to_run.append(individual)
                run_keys.append(key)
                if cache is not None:
                    self._run_cache_misses += 1

        eval_start = time.perf_counter()
        outcomes = self.backend.evaluate_batch(self.evaluator, to_run)
        self._eval_seconds += time.perf_counter() - eval_start
        to_store: dict[str, tuple[float, dict]] = {}
        for index, (individual, outcome) in enumerate(zip(to_run, outcomes, strict=True)):
            key = run_keys[index]
            if isinstance(outcome, Quarantined):
                # A resilient backend gave up on this individual: worst
                # possible fitness so selection discards it, and *no* cache
                # entry so a healthy later run (or a duplicate genome in a
                # later generation) still gets a real evaluation.
                individual.fitness = float("-inf")
                individual.payload = {
                    "quarantined": {"error": outcome.error, "attempts": outcome.attempts}
                }
                self._run_quarantined += 1
                for duplicate in followers[key]:
                    duplicate.fitness = individual.fitness
                    duplicate.payload = dict(individual.payload)
                continue
            fitness, payload = outcome
            individual.fitness = float(fitness)
            individual.payload = payload
            if cache is not None:
                to_store[key] = (individual.fitness, payload)
            for duplicate in followers[key]:
                duplicate.fitness = individual.fitness
                duplicate.payload = dict(payload)
        if to_store:
            # One write-through per generation (a single sqlite transaction
            # for the persistent cache) instead of one per genome.
            cache.store_many(to_store)

        # All-time-best tracking and callbacks run in population order in the
        # main process, so results are identical for any backend/worker count.
        for individual in pending:
            if self._all_time_best is None or individual.fitness > self._all_time_best.fitness:
                self._all_time_best = individual.copy()
                self._all_time_best.payload = dict(individual.payload)
            if self.on_evaluated is not None:
                self.on_evaluated(individual)
        return len(to_run)

    def _generation_stats(
        self, generation: int, population: list[Individual]
    ) -> tuple[GenerationStats, list[Individual]]:
        fitnesses = [float(ind.fitness) for ind in population if ind.fitness is not None]
        stats = GenerationStats(
            generation=generation,
            best_fitness=max(fitnesses),
            average_fitness=sum(fitnesses) / len(fitnesses),
            worst_fitness=min(fitnesses),
            diversity=population_diversity(population),
            cataclysm=False,
        )
        return stats, population

    def _next_generation(
        self, population: list[Individual], rng: DeterministicRng
    ) -> list[Individual]:
        params = self.parameters
        ranked = sorted(
            population,
            key=lambda ind: ind.fitness if ind.fitness is not None else float("-inf"),
            reverse=True,
        )
        next_population: list[Individual] = [ind.copy() for ind in ranked[: params.elite_count]]

        while len(next_population) < params.population_size:
            parent_a = tournament_selection(population, rng, params.tournament_size)
            if rng.coin(params.crossover_rate):
                parent_b = tournament_selection(population, rng, params.tournament_size)
                child = crossover(self.space, parent_a, parent_b, rng)
            else:
                child = parent_a.copy()
                child.fitness = None
                child.payload = {}
            child = mutate(self.space, child, rng, params.mutation_rate)
            next_population.append(child)

        if params.migration_count > 0:
            # Migration introduces fresh random genomes to keep exploring.
            evaluated_tail = [ind for ind in next_population[params.elite_count :]]
            kept_head = next_population[: params.elite_count]
            migrated = migrate(
                self.space,
                evaluated_tail,
                rng,
                params.migration_count,
            )
            next_population = kept_head + migrated
        return next_population[: params.population_size]
