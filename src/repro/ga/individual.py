"""GA individual: a genome plus its evaluated fitness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional


@dataclass
class Individual:
    """One candidate solution.

    ``genome`` maps gene names to values; ``fitness`` is ``None`` until the
    individual has been evaluated.  ``payload`` can carry arbitrary evaluation
    artefacts (for the stressmark: the generated program and its SER report)
    so the caller does not have to re-simulate the winner.
    """

    genome: dict[str, object]
    fitness: Optional[float] = None
    payload: dict[str, object] = field(default_factory=dict)

    @property
    def evaluated(self) -> bool:
        return self.fitness is not None

    def copy(self) -> "Individual":
        """Deep-enough copy: genome is copied, payload is shared."""
        return Individual(genome=dict(self.genome), fitness=self.fitness, payload=dict(self.payload))

    def genome_signature(self) -> tuple[tuple[str, object], ...]:
        """Hashable signature of the genome (used for convergence detection)."""
        return tuple(sorted(self.genome.items(), key=lambda item: item[0]))


def best_of(individuals: list[Individual]) -> Individual:
    """Return the evaluated individual with the highest fitness."""
    evaluated = [ind for ind in individuals if ind.evaluated]
    if not evaluated:
        raise ValueError("no evaluated individuals")
    return max(evaluated, key=lambda ind: ind.fitness)


def population_diversity(individuals: list[Individual]) -> float:
    """Fraction of distinct genomes in the population (1.0 = all distinct)."""
    if not individuals:
        return 0.0
    signatures = {ind.genome_signature() for ind in individuals}
    return len(signatures) / len(individuals)
