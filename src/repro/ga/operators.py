"""Genetic operators: selection, crossover, mutation, migration, cataclysm."""

from __future__ import annotations

from typing import Callable

from repro.ga.genes import GeneSpace
from repro.ga.individual import Individual
from repro.utils.rng import DeterministicRng


def tournament_selection(
    population: list[Individual], rng: DeterministicRng, tournament_size: int = 3
) -> Individual:
    """Pick the fittest of ``tournament_size`` randomly drawn individuals."""
    if not population:
        raise ValueError("cannot select from an empty population")
    size = min(tournament_size, len(population))
    contenders = [rng.choice(population) for _ in range(size)]
    return max(contenders, key=lambda ind: ind.fitness if ind.fitness is not None else float("-inf"))


def crossover(
    space: GeneSpace, left: Individual, right: Individual, rng: DeterministicRng
) -> Individual:
    """Create an offspring by per-gene crossover of two parents."""
    child_genome = {
        gene.name: gene.crossover(left.genome[gene.name], right.genome[gene.name], rng)
        for gene in space
    }
    return Individual(genome=child_genome)


def mutate(
    space: GeneSpace, individual: Individual, rng: DeterministicRng, mutation_rate: float
) -> Individual:
    """Mutate each gene independently with probability ``mutation_rate``."""
    if not 0.0 <= mutation_rate <= 1.0:
        raise ValueError("mutation_rate must be within [0, 1]")
    genome = dict(individual.genome)
    for gene in space:
        if rng.coin(mutation_rate):
            genome[gene.name] = gene.mutate(genome[gene.name], rng)
    return Individual(genome=genome)


def migrate(
    space: GeneSpace, population: list[Individual], rng: DeterministicRng, count: int
) -> list[Individual]:
    """Replace the ``count`` weakest individuals with fresh random immigrants."""
    if count <= 0:
        return population
    ranked = sorted(
        population,
        key=lambda ind: ind.fitness if ind.fitness is not None else float("-inf"),
        reverse=True,
    )
    survivors = ranked[: max(0, len(ranked) - count)]
    immigrants = [Individual(genome=space.sample(rng)) for _ in range(min(count, len(ranked)))]
    return survivors + immigrants


def cataclysm(
    space: GeneSpace,
    population: list[Individual],
    rng: DeterministicRng,
    mutation_rate: float,
    heavy_mutation_factor: float = 6.0,
) -> list[Individual]:
    """Re-seed a converged population around its best individual.

    The best individual survives unchanged; every other slot is filled with a
    heavily mutated copy of it, mirroring SNAP's behaviour of moving the best
    known solution into a new population of random mutations when the
    population converges (the generation-30 dip in Figure 5b of the paper).
    """
    if not population:
        return population
    best = max(
        population,
        key=lambda ind: ind.fitness if ind.fitness is not None else float("-inf"),
    )
    heavy_rate = min(1.0, mutation_rate * heavy_mutation_factor)
    reseeded: list[Individual] = [best.copy()]
    while len(reseeded) < len(population):
        candidate = mutate(space, best, rng, heavy_rate)
        # Guarantee at least one gene changed so the population is diverse again.
        if candidate.genome == best.genome:
            gene = rng.choice(list(space))
            candidate.genome[gene.name] = gene.mutate(candidate.genome[gene.name], rng)
        reseeded.append(candidate)
    return reseeded


Evaluator = Callable[[Individual], float]
