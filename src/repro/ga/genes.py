"""Gene descriptors defining the search space explored by the GA."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.utils.rng import DeterministicRng
from repro.utils.stats import clamp


class Gene:
    """Base class for a single named gene.

    A gene knows how to sample a random value, mutate an existing value, and
    blend two parent values during crossover.
    """

    name: str

    def sample(self, rng: DeterministicRng) -> object:
        raise NotImplementedError

    def mutate(self, value: object, rng: DeterministicRng) -> object:
        raise NotImplementedError

    def crossover(self, left: object, right: object, rng: DeterministicRng) -> object:
        """Default crossover: pick one parent's value uniformly."""
        return left if rng.coin(0.5) else right


@dataclass(frozen=True)
class IntGene(Gene):
    """Integer gene within an inclusive range."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"gene {self.name}: low must be <= high")

    def sample(self, rng: DeterministicRng) -> int:
        return rng.randint(self.low, self.high)

    def mutate(self, value: object, rng: DeterministicRng) -> int:
        span = max(1, (self.high - self.low) // 4)
        mutated = int(value) + rng.randint(-span, span)
        return int(clamp(mutated, self.low, self.high))

    def crossover(self, left: object, right: object, rng: DeterministicRng) -> int:
        if rng.coin(0.5):
            return int(left) if rng.coin(0.5) else int(right)
        # Arithmetic blend keeps offspring inside the parents' interval.
        blended = round((int(left) + int(right)) / 2)
        return int(clamp(blended, self.low, self.high))


@dataclass(frozen=True)
class FloatGene(Gene):
    """Floating-point gene within an inclusive range."""

    name: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"gene {self.name}: low must be <= high")

    def sample(self, rng: DeterministicRng) -> float:
        return rng.uniform(self.low, self.high)

    def mutate(self, value: object, rng: DeterministicRng) -> float:
        sigma = (self.high - self.low) * 0.15
        return clamp(float(value) + rng.gauss(0.0, sigma), self.low, self.high)

    def crossover(self, left: object, right: object, rng: DeterministicRng) -> float:
        if rng.coin(0.5):
            return float(left) if rng.coin(0.5) else float(right)
        weight = rng.random()
        return clamp(weight * float(left) + (1.0 - weight) * float(right), self.low, self.high)


@dataclass(frozen=True)
class BoolGene(Gene):
    """Boolean gene (e.g. the paper's L2-miss / L2-hit generator switch)."""

    name: str

    def sample(self, rng: DeterministicRng) -> bool:
        return rng.coin(0.5)

    def mutate(self, value: object, rng: DeterministicRng) -> bool:
        return not bool(value)


class GeneSpace:
    """An ordered collection of genes defining the GA's search space."""

    def __init__(self, genes: Sequence[Gene]) -> None:
        if not genes:
            raise ValueError("a gene space needs at least one gene")
        names = [gene.name for gene in genes]
        if len(names) != len(set(names)):
            raise ValueError("gene names must be unique")
        self._genes = list(genes)
        self._by_name = {gene.name: gene for gene in genes}

    def __iter__(self):
        return iter(self._genes)

    def __len__(self) -> int:
        return len(self._genes)

    @property
    def names(self) -> list[str]:
        return [gene.name for gene in self._genes]

    def gene(self, name: str) -> Gene:
        return self._by_name[name]

    def sample(self, rng: DeterministicRng) -> dict[str, object]:
        """Sample a complete random genome."""
        return {gene.name: gene.sample(rng) for gene in self._genes}

    def validate(self, genome: Mapping[str, object]) -> None:
        """Raise if the genome does not provide a value for every gene."""
        missing = set(self.names) - set(genome)
        if missing:
            raise ValueError(f"genome is missing genes: {sorted(missing)}")
