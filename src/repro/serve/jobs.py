"""Job table of the evaluation service: states, queueing, fair scheduling.

Every accepted ``submit`` becomes a :class:`Job` tracked here until a client
has (or could have) read its terminal state.  The table owns three policies
the server's verbs are built on:

Scheduling — FIFO with per-client round-robin
    Each client gets its own FIFO queue; :meth:`JobTable.next_job` deals one
    job per client in client-arrival order before returning to the first
    client.  A client that dumps 100 specs cannot starve one that submits a
    single spec a moment later — the single spec runs after at most one job
    per other client.

In-flight deduplication
    Two submissions with the same spec digest (content-addressed, see
    ``RunSpec.digest``) attach to one pending job: the second submitter gets
    the same ``job_id`` and both read one result.  A job only leaves the
    in-flight index when it reaches a terminal state.

Backpressure — bounded queue
    At most ``queue_limit`` jobs may be queued (the running job does not
    count).  Beyond that :meth:`JobTable.submit` raises
    :class:`QueueFullError` carrying a ``retry_after`` hint derived from the
    observed mean job duration, and the server answers ``queue_full``.

States: ``queued -> running -> done | failed | quarantined``, with
``queued -> cancelled`` when every submitter of a deduplicated job cancels
before it starts.  Running jobs are never interrupted — the evaluation
fabric underneath retries/quarantines on its own terms (see
ARCHITECTURE.md, "Failure semantics").
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

#: Job lifecycle states (wire values).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED, CANCELLED)
TERMINAL_STATES = frozenset((DONE, FAILED, QUARANTINED, CANCELLED))


class QueueFullError(RuntimeError):
    """The bounded queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class Job:
    """One submitted evaluation tracked from queue to terminal state."""

    job_id: str
    digest: str
    spec: dict
    client: str
    state: str = QUEUED
    waiters: int = 1
    result: Optional[dict] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> dict:
        """The wire-visible view of this job (no result payload)."""
        info: dict[str, object] = {
            "job_id": self.job_id,
            "digest": self.digest,
            "state": self.state,
            "waiters": self.waiters,
        }
        if self.error is not None:
            info["error"] = self.error
        if self.started_at is not None and self.finished_at is not None:
            info["run_seconds"] = round(self.finished_at - self.started_at, 6)
        return info


class JobTable:
    """Thread-safe job registry + bounded fair scheduler (see module doc)."""

    def __init__(self, queue_limit: int = 32) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.queue_limit = int(queue_limit)
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}  # digest -> queued/running job
        self._queues: dict[str, deque[Job]] = {}  # client -> FIFO
        self._clients: list[str] = []  # client ids in first-seen order
        self._rr = 0  # round-robin cursor into _clients
        self._ids = itertools.count(1)
        self._durations: deque[float] = deque(maxlen=64)
        self.counters = {
            "submitted": 0,
            "restored": 0,
            "dedup_hits": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "quarantined": 0,
            "cancelled": 0,
        }

    # ------------------------------------------------------------- submission

    def submit(self, spec: dict, digest: str, client: str,
               on_accept=None) -> tuple[Job, bool]:
        """Queue a spec (or attach to the identical in-flight job).

        Returns ``(job, deduped)``.  Raises :class:`QueueFullError` when the
        bounded queue is at ``queue_limit``.

        ``on_accept(job)`` runs under the table lock *before* the fresh job
        becomes visible to the scheduler — the write-ahead hook the server
        journals through, so a ``start`` record can never precede its
        ``submit`` record.  If it raises, the submission is not queued.
        """
        with self._changed:
            existing = self._inflight.get(digest)
            if existing is not None:
                existing.waiters += 1
                self.counters["dedup_hits"] += 1
                return existing, True
            if self._queued_count() >= self.queue_limit:
                self.counters["rejected"] += 1
                raise QueueFullError(
                    f"queue is full ({self.queue_limit} job(s) pending)",
                    retry_after=self.retry_after(),
                )
            job = Job(
                job_id=f"job-{next(self._ids)}",
                digest=digest,
                spec=spec,
                client=client,
            )
            if on_accept is not None:
                on_accept(job)
            self._jobs[job.job_id] = job
            self._inflight[digest] = job
            if client not in self._queues:
                self._queues[client] = deque()
                self._clients.append(client)
            self._queues[client].append(job)
            self.counters["submitted"] += 1
            self._changed.notify_all()
            return job, False

    def restore(self, spec: dict, digest: str, client: str) -> Job:
        """Re-enqueue a job recovered from the journal (startup replay).

        Bypasses the queue bound — acknowledged work must never be dropped
        because a restart found the queue nominally full — and counts under
        ``restored`` instead of ``submitted``.  Replay happens before the
        server threads start, so no deduplication race is possible.
        """
        with self._changed:
            existing = self._inflight.get(digest)
            if existing is not None:  # replayed twice (defensive)
                return existing
            job = Job(
                job_id=f"job-{next(self._ids)}",
                digest=digest,
                spec=spec,
                client=client,
            )
            self._jobs[job.job_id] = job
            self._inflight[digest] = job
            if client not in self._queues:
                self._queues[client] = deque()
                self._clients.append(client)
            self._queues[client].append(job)
            self.counters["restored"] += 1
            self._changed.notify_all()
            return job

    def retry_after(self) -> float:
        """Backpressure hint: roughly one mean job duration per queued job."""
        with_durations = list(self._durations)
        mean = sum(with_durations) / len(with_durations) if with_durations else 1.0
        return round(max(0.1, mean * (self._queued_count() + 1)), 3)

    # ------------------------------------------------------------- scheduling

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop and mark running the next job (fair order); ``None`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while True:
                job = self._pop_fair()
                if job is not None:
                    job.state = RUNNING
                    job.started_at = time.monotonic()
                    self._changed.notify_all()
                    return job
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._changed.wait(remaining)
                else:
                    self._changed.wait()

    def _pop_fair(self) -> Optional[Job]:
        """One round-robin step over the per-client queues (lock held)."""
        if not self._clients:
            return None
        for offset in range(len(self._clients)):
            index = (self._rr + offset) % len(self._clients)
            queue = self._queues[self._clients[index]]
            if queue:
                self._rr = (index + 1) % len(self._clients)
                return queue.popleft()
        return None

    def position(self, job: Job) -> Optional[int]:
        """0-based dispatch position of a queued job (``None`` otherwise).

        Computed by simulating the round-robin deal from the current cursor,
        so it is exactly the number of queued jobs that will start first.
        """
        with self._lock:
            if job.state != QUEUED:
                return None
            ahead = 0
            for depth in itertools.count():
                exhausted = True
                for offset in range(len(self._clients)):
                    index = (self._rr + offset) % len(self._clients)
                    queue = self._queues[self._clients[index]]
                    if depth < len(queue):
                        exhausted = False
                        if queue[depth] is job:
                            return ahead
                        ahead += 1
                if exhausted:  # pragma: no cover - job must be in some queue
                    return None

    # ------------------------------------------------------------- completion

    def finish(self, job: Job, result: dict) -> None:
        """Record a successful evaluation."""
        self._complete(job, DONE, result=result, counter="completed")

    def fail(self, job: Job, error: str, quarantined: bool = False) -> None:
        """Record a failed (or quarantined) evaluation."""
        state = QUARANTINED if quarantined else FAILED
        self._complete(job, state, error=error, counter=state)

    def _complete(
        self, job: Job, state: str, counter: str,
        result: Optional[dict] = None, error: Optional[str] = None,
    ) -> None:
        with self._changed:
            job.state = state
            job.result = result
            job.error = error
            job.finished_at = time.monotonic()
            if job.started_at is not None:
                self._durations.append(job.finished_at - job.started_at)
            if self._inflight.get(job.digest) is job:
                del self._inflight[job.digest]
            self.counters[counter] += 1
            self._changed.notify_all()

    # ------------------------------------------------------------ cancellation

    def cancel(self, job_id: str) -> tuple[Optional[Job], bool]:
        """Withdraw one submitter's interest in a job.

        The job is actually cancelled only when it is still queued and this
        was its last waiter (deduplicated submitters keep it alive).
        Returns ``(job, cancelled)``; ``(None, False)`` for unknown ids.
        """
        with self._changed:
            job = self._jobs.get(job_id)
            if job is None:
                return None, False
            if job.terminal:
                return job, False
            job.waiters = max(0, job.waiters - 1)
            if job.state != QUEUED or job.waiters > 0:
                return job, False
            self._queues[job.client].remove(job)
            job.state = CANCELLED
            job.finished_at = time.monotonic()
            if self._inflight.get(job.digest) is job:
                del self._inflight[job.digest]
            self.counters["cancelled"] += 1
            self._changed.notify_all()
            return job, True

    def cancel_all_queued(self) -> list[Job]:
        """Cancel every queued job (server shutdown); returns the jobs."""
        cancelled: list[Job] = []
        with self._changed:
            for queue in self._queues.values():
                while queue:
                    job = queue.popleft()
                    job.state = CANCELLED
                    job.finished_at = time.monotonic()
                    if self._inflight.get(job.digest) is job:
                        del self._inflight[job.digest]
                    self.counters["cancelled"] += 1
                    cancelled.append(job)
            self._changed.notify_all()
        return cancelled

    def queued_jobs(self) -> list[Job]:
        """Snapshot of the currently queued jobs (drain accounting)."""
        with self._lock:
            return [job for queue in self._queues.values() for job in queue]

    # ---------------------------------------------------------------- queries

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job: Job, timeout: Optional[float] = None,
             known_state: Optional[str] = None) -> str:
        """Block until the job's state differs from ``known_state`` (or is
        terminal when ``known_state`` is ``None``); returns the new state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._changed:
            while True:
                if known_state is None:
                    if job.terminal:
                        return job.state
                elif job.state != known_state:
                    return job.state
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return job.state
                    self._changed.wait(remaining)
                else:
                    self._changed.wait()

    def _queued_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def stats(self) -> dict:
        """Point-in-time state counts + lifetime counters (wire view)."""
        with self._lock:
            states = {state: 0 for state in STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            return {
                "queue_depth": self._queued_count(),
                "queue_limit": self.queue_limit,
                "inflight_digests": len(self._inflight),
                "clients": len(self._clients),
                "states": states,
                "counters": dict(self.counters),
            }
