"""Evaluation service: the ``repro serve`` daemon and its client proxy.

The subsystem turns the local evaluation stack into a long-running service
(see EXPERIMENTS.md, "Evaluation service", and the flow diagram in
ARCHITECTURE.md):

:mod:`repro.serve.protocol`
    Length-prefixed JSON frames, verbs and error codes.
:mod:`repro.serve.jobs`
    Job states, the bounded queue, FIFO/per-client round-robin scheduling,
    in-flight deduplication.
:mod:`repro.serve.journal`
    :class:`JobJournal` — the crash-safe append-only job journal the daemon
    replays on startup so acknowledged work survives a ``kill -9``.
:mod:`repro.serve.server`
    :class:`ReproServer` — the threaded daemon with one watchdogged
    evaluation thread over one shared warm
    :class:`~repro.api.session.Session`.
:mod:`repro.serve.client`
    :class:`ServeClient` — the proxy mirroring ``Session.run`` so specs run
    unchanged against a remote host, with endpoint failover and resumable
    watch streams.
:mod:`repro.serve.loadtest`
    The ``repro loadtest`` harness recording ``BENCH_serve.json``.
"""

from repro.serve.client import (
    RemoteError,
    RemoteRunError,
    ServeBusyError,
    ServeClient,
    wait_until_ready,
)
from repro.serve.jobs import JobTable, QueueFullError
from repro.serve.journal import JOURNAL_FILE, JobJournal, JournalError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_endpoint,
    parse_endpoints,
)
from repro.serve.server import (
    DEFAULT_PORT,
    DEFAULT_QUEUE_LIMIT,
    EXIT_CLEAN,
    EXIT_WATCHDOG,
    ReproServer,
    serve,
)

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "EXIT_CLEAN",
    "EXIT_WATCHDOG",
    "JOURNAL_FILE",
    "JobJournal",
    "JobTable",
    "JournalError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "RemoteError",
    "RemoteRunError",
    "ReproServer",
    "ServeBusyError",
    "ServeClient",
    "parse_endpoint",
    "parse_endpoints",
    "serve",
    "wait_until_ready",
]
