"""The evaluation daemon: a threaded JSON-over-TCP front of one warm Session.

``repro serve`` turns the whole evaluation stack — declarative RunSpecs,
digest-keyed ResultStore, warm never-recycled worker pools, the resilient
backend — into a long-running service.  The process model mirrors the
instamatic ``tem_server.py`` split the ROADMAP cites: *many* connection
handler threads parse frames and answer cheap verbs, but exactly **one
evaluation loop** drains the job queue onto one shared
:class:`~repro.api.session.Session`, so every client's work lands on the
same warm fabric and pays no cold-start.

Request flow for ``submit``::

    validate spec -> content digest
        digest in ResultStore?       -> answer immediately (never queued)
        digest already in flight?    -> attach to that job (one evaluation)
        queue below the bound?       -> journal + enqueue FIFO / round-robin
        otherwise                    -> queue_full + retry_after hint

Durability (PR 6's failure-semantics contract extended to the service):

* Every accepted job is recorded in a crash-safe
  :class:`~repro.serve.journal.JobJournal` beside the store *before* the
  submit response hits the wire.  A killed daemon restarted on the same
  store + journal replays the log, re-enqueues every lost queued/running
  job (content-addressed results make re-evaluation safe; digests already
  in the store short-circuit to done) and compacts the journal.
* The evaluation loop is **watchdogged**: each job runs on a supervised
  thread under a per-job deadline (spec ``task_timeout`` >
  ``--job-timeout`` > :data:`DEFAULT_JOB_TIMEOUT`).  A hung evaluation is
  quarantined and journaled, its thread abandoned, and the loop takes the
  next job instead of wedging the daemon.  (An abandoned thread may still
  hold the session; a genuinely hung evaluation is assumed wedged, not
  racing.)
* ``watch`` streams emit periodic keepalive frames
  (``heartbeat_seconds``), so a long-queued job never trips the client's
  socket timeout, and :meth:`ServeClient.wait` re-opens dropped streams.
* ``stop(drain=True)`` (``repro serve --drain`` + SIGTERM/SIGINT) leaves
  the queued jobs journaled instead of cancelling them: the persisted
  queue is exactly what the next daemon re-enqueues.

Results returned over the wire are byte-identical to a local
``Session.run`` of the same spec (volatile ``timing`` and
``provenance.resilience`` aside) because they *are* ``Session.run`` outputs
— the server adds nothing but transport.  See EXPERIMENTS.md ("Evaluation
service") for the verb and failure semantics and ARCHITECTURE.md for the
client -> journal -> queue -> fabric -> store diagram.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.api.registry import RegistryError
from repro.api.spec import RunSpec, SpecError
from repro.parallel.resilience import TaskFailedError
from repro.serve import jobs as jobstates
from repro.serve.journal import JOURNAL_FILE, JobJournal, JournalError
from repro.serve.jobs import Job, JobTable, QueueFullError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    recv_frame,
    send_frame,
)
from repro.testing.chaos import ChaosError, chaos_hook

logger = logging.getLogger("repro.serve")

#: Default TCP port (unassigned by IANA; override with ``--port``).
DEFAULT_PORT = 9474

#: Default bound on queued jobs (see JobTable backpressure).
DEFAULT_QUEUE_LIMIT = 32

#: Default per-job watchdog deadline in seconds.  Deliberately generous —
#: it exists to unwedge a daemon whose evaluation hung *forever*, not to
#: police slow-but-live runs.  Spec ``task_timeout`` > ``--job-timeout`` >
#: this value; ``job_timeout=None`` disables the watchdog entirely.
DEFAULT_JOB_TIMEOUT = 3600.0

#: Seconds between keepalive frames on an otherwise idle ``watch`` stream.
#: Well inside the client's default 60s socket timeout.
HEARTBEAT_SECONDS = 15.0

#: Exit status of a clean shutdown or drain (``repro serve``).
EXIT_CLEAN = 0

#: Exit status when the watchdog had to abandon at least one hung
#: evaluation during the daemon's lifetime (``repro serve``).
EXIT_WATCHDOG = 3


class ReproServer:
    """Threaded evaluation daemon around one shared Session.

    ``session`` only needs the Session surface the server uses: ``.store``
    (may be ``None``) and ``.run(RunSpec) -> RunResult`` — tests substitute
    a controllable fake.  With ``owns_session`` (the default) the server
    closes the session — and thereby the warm worker pools — on ``stop``.

    ``journal`` is a :class:`JobJournal`, a path to one, or ``None`` (no
    durability; a crash loses the in-memory queue exactly as before PR 10).
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        owns_session: bool = True,
        journal: Optional[Union[JobJournal, str, Path]] = None,
        job_timeout: Optional[float] = DEFAULT_JOB_TIMEOUT,
        heartbeat_seconds: float = HEARTBEAT_SECONDS,
        drain_on_stop: bool = False,
    ) -> None:
        self._session = session
        self._owns_session = owns_session
        self.host = host
        self.table = JobTable(queue_limit=queue_limit)
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(journal)
        self.journal = journal
        self.job_timeout = job_timeout
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.drain_on_stop = drain_on_stop
        self.store_hits = 0
        self.watchdog_fired = 0
        self.restored_jobs = 0
        self.started_at = time.monotonic()
        self._drained = False
        self._started = False
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]

    # -------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Replay the journal, then spawn the accept and evaluation threads.

        Idempotent: the CLI starts the server before printing its replay
        summary, then :meth:`serve_forever` calls through here again.
        """
        if self._started:
            return
        self._started = True
        self._replay_journal()
        for name, target in (("serve-accept", self._accept_loop),
                             ("serve-eval", self._eval_loop)):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        logger.info("repro serve: listening on %s:%d (pid %d)", self.host, self.port, os.getpid())

    def _replay_journal(self) -> None:
        """Re-enqueue every journaled job without a terminal record.

        Digests already in the store short-circuit to ``done`` (their result
        survived the crash); everything else — queued *or* running when the
        old daemon died — goes back to ``queued``.  Re-evaluation is safe:
        results are content-addressed, so a job that actually finished but
        missed its terminal record simply recomputes into the same digest.
        """
        if self.journal is None:
            return
        entries = self.journal.outstanding()  # may raise JournalError: loud > lossy
        store = getattr(self._session, "store", None)
        requeued = 0
        for entry in entries:
            if store is not None and store.get(entry.digest) is not None:
                self.journal.append_terminal(entry.digest, jobstates.DONE)
                continue
            self.table.restore(entry.spec, entry.digest, entry.client)
            requeued += 1
        self.restored_jobs = requeued
        self.journal.compact()
        if entries:
            logger.info(
                "repro serve: journal replay recovered %d job(s) "
                "(%d re-enqueued, %d already in the store)",
                len(entries), requeued, len(entries) - requeued,
            )

    def stop(self, drain: Optional[bool] = None) -> None:
        """Shut down: no new work, the running job finishes, pools close.

        ``drain=False`` cancels the queued jobs (journaling each
        cancellation).  ``drain=True`` leaves them journaled as outstanding
        — the persisted queue a restarted daemon replays.  ``None`` uses
        ``drain_on_stop`` (the CLI's ``--drain`` flag).
        """
        if self._stopping.is_set():
            return
        drain = self.drain_on_stop if drain is None else drain
        self._drained = drain
        self._stopping.set()
        if drain:
            queued = self.table.queued_jobs()
            if self.journal is not None:
                self.journal.compact()
            logger.info("repro serve: draining — %d queued job(s) persisted "
                        "for the next daemon", len(queued))
            return
        cancelled = self.table.cancel_all_queued()
        for job in cancelled:
            self._journal_terminal(job)
        if cancelled:
            logger.info("repro serve: cancelled %d queued job(s) on shutdown", len(cancelled))

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the server threads to exit and release the session."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            return  # timed out; caller may retry
        if not self._stopped.is_set():
            self._stopped.set()
            self._listener.close()
            if self._owns_session:
                self._session.close()

    def serve_forever(self) -> int:
        """Run until :meth:`stop`; returns the process exit code
        (:data:`EXIT_CLEAN`, or :data:`EXIT_WATCHDOG` when a hung evaluation
        had to be abandoned).  The CLI propagates it; tests use
        start/stop/join directly."""
        self.start()
        try:
            while not self._stopping.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            # SIGINT takes the same drain-or-cancel path as SIGTERM.
            logger.info("repro serve: interrupted, shutting down")
            self.stop()
        finally:
            self.stop()
            self.join()
        return EXIT_WATCHDOG if self.watchdog_fired else EXIT_CLEAN

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
        self.join()

    # ------------------------------------------------------------ journaling

    def _journal_submit(self, job: Job) -> None:
        if self.journal is not None:
            self.journal.append_submit(job.digest, job.spec, job.client)

    def _journal_start(self, job: Job) -> None:
        if self.journal is not None:
            self.journal.append_start(job.digest)

    def _journal_terminal(self, job: Job) -> None:
        if self.journal is not None:
            self.journal.append_terminal(job.digest, job.state, error=job.error)

    # ---------------------------------------------------------------- accept

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, address = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection, f"{address[0]}:{address[1]}"),
                name=f"serve-conn-{address[1]}",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, connection: socket.socket, peer: str) -> None:
        with connection:
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_frame(connection)
                    # Chaos site "serve_conn": the drop kind severs this
                    # connection mid-conversation (client failover fodder).
                    chaos_hook("serve_conn")
                except (ProtocolError, OSError, ChaosError) as exc:
                    logger.debug("repro serve: dropping %s: %s", peer, exc)
                    return
                if request is None:
                    return
                try:
                    self._dispatch(connection, peer, request)
                except (ProtocolError, OSError) as exc:
                    logger.debug("repro serve: lost %s mid-response: %s", peer, exc)
                    return

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, connection: socket.socket, peer: str, request: dict) -> None:
        verb = request.get("verb")
        handler = getattr(self, f"_verb_{verb}", None) if isinstance(verb, str) else None
        if handler is None:
            send_frame(connection, error_response("bad_frame", f"unknown verb {verb!r}"))
            return
        try:
            handler(connection, peer, request)
        except (ProtocolError, OSError):
            raise  # transport is gone; the connection loop drops the peer
        except Exception as exc:  # noqa: BLE001 - no request may kill a handler thread
            logger.warning("repro serve: %s sent a malformed %r request: %s", peer, verb, exc)
            send_frame(connection, error_response(
                "bad_frame", f"malformed {verb!r} request: {type(exc).__name__}: {exc}"))

    def _verb_ping(self, connection: socket.socket, peer: str, request: dict) -> None:
        from repro import package_version

        store = getattr(self._session, "store", None)
        send_frame(connection, {
            "ok": True,
            "server_version": package_version(),
            "protocol_version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "store_attached": store is not None,
            "store_results": len(store) if store is not None else None,
            "journal_attached": self.journal is not None,
        })

    def _verb_submit(self, connection: socket.socket, peer: str, request: dict) -> None:
        if self._stopping.is_set():
            send_frame(connection, error_response("shutting_down", "server is shutting down"))
            return
        payload = request.get("spec")
        try:
            if not isinstance(payload, dict):
                raise SpecError(f"submit needs a 'spec' object, got {type(payload).__name__}")
            spec = RunSpec.from_json_dict(payload).validate()
        except (SpecError, RegistryError) as exc:
            send_frame(connection, error_response("invalid_spec", str(exc)))
            return
        digest = spec.digest
        client = str(request.get("client") or peer)
        # Duplicate of a finished run: answer straight from the store, the
        # job queue never sees it.
        store = getattr(self._session, "store", None)
        if store is not None:
            stored = store.get(digest)
            if stored is not None:
                with self._lock:
                    self.store_hits += 1
                send_frame(connection, {
                    "ok": True,
                    "job_id": None,
                    "digest": digest,
                    "state": jobstates.DONE,
                    "source": "store",
                    "result": stored.to_json_dict(),
                })
                return
        try:
            # The journal append runs under the table lock, before the job is
            # visible to the eval loop: an accepted job is durable *first*,
            # so a crash can never leave a start record without its submit.
            job, deduped = self.table.submit(
                spec.to_json_dict(), digest, client, on_accept=self._journal_submit)
        except QueueFullError as exc:
            send_frame(connection, error_response(
                "queue_full", str(exc), retry_after=exc.retry_after))
            return
        response: dict[str, object] = {
            "ok": True,
            "job_id": job.job_id,
            "digest": digest,
            "state": job.state,
            "source": "inflight" if deduped else "queue",
        }
        position = self.table.position(job)
        if position is not None:
            response["position"] = position
        send_frame(connection, response)

    def _verb_status(self, connection: socket.socket, peer: str, request: dict) -> None:
        job = self._lookup(connection, request)
        if job is None:
            return
        info = job.describe()
        position = self.table.position(job)
        if position is not None:
            info["position"] = position
        send_frame(connection, {"ok": True, **info})

    @staticmethod
    def _coerce_timeout(request: dict) -> Optional[float]:
        """The optional ``timeout`` field as a float; bad types answer
        ``bad_frame`` (via the dispatch guard) instead of killing the
        handler thread."""
        raw = request.get("timeout")
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ValueError(f"timeout must be a number, got {type(raw).__name__}")
        value = float(raw)
        if value < 0:
            raise ValueError(f"timeout must be non-negative, got {value}")
        return value

    def _verb_result(self, connection: socket.socket, peer: str, request: dict) -> None:
        timeout = self._coerce_timeout(request)
        job = self._lookup(connection, request)
        if job is None:
            return
        if timeout is not None:
            self.table.wait(job, timeout=timeout)
        send_frame(connection, self._result_frame(job))

    def _verb_watch(self, connection: socket.socket, peer: str, request: dict) -> None:
        """Stream one frame per observed state change until terminal.

        Heartbeat frames (``{"heartbeat": true, "final": false}``) are
        interleaved every ``heartbeat_seconds`` while nothing changes, so a
        job sitting deep in the queue never trips the client's socket
        timeout (the PR 9-era failure mode: change-only frames vs the
        client's 60s default).
        """
        self._coerce_timeout(request)  # reject bad-typed fields up front
        job = self._lookup(connection, request)
        if job is None:
            return
        state = None
        last_frame = time.monotonic()
        poll = min(0.5, max(0.05, self.heartbeat_seconds / 3.0))
        while True:
            if job.terminal:
                send_frame(connection, self._result_frame(job))
                return
            if state is not None and self._stopping.is_set():
                send_frame(connection, error_response(
                    "shutting_down", "server stopped while the job was pending",
                    job_id=job.job_id, state=job.state, drained=self._drained))
                return
            if job.state != state:
                state = job.state
                info = job.describe()
                position = self.table.position(job)
                if position is not None:
                    info["position"] = position
                send_frame(connection, {"ok": True, "final": False, **info})
                last_frame = time.monotonic()
            elif time.monotonic() - last_frame >= self.heartbeat_seconds:
                send_frame(connection, {
                    "ok": True, "final": False, "heartbeat": True,
                    "job_id": job.job_id, "state": job.state,
                })
                last_frame = time.monotonic()
            self.table.wait(job, timeout=poll, known_state=state)

    def _result_frame(self, job) -> dict:
        if job.state == jobstates.DONE:
            return {"ok": True, "final": True, "job_id": job.job_id,
                    "digest": job.digest, "state": job.state, "result": job.result}
        if job.terminal:
            code = {
                jobstates.FAILED: "job_failed",
                jobstates.QUARANTINED: "job_quarantined",
                jobstates.CANCELLED: "job_cancelled",
            }[job.state]
            return error_response(code, job.error or f"job is {job.state}",
                                  final=True, job_id=job.job_id, state=job.state)
        return {"ok": True, "final": False, "job_id": job.job_id, "state": job.state}

    def _verb_cancel(self, connection: socket.socket, peer: str, request: dict) -> None:
        job_id = request.get("job_id")
        job, cancelled = self.table.cancel(str(job_id))
        if job is None:
            send_frame(connection, error_response("unknown_job", f"no job {job_id!r}"))
            return
        if cancelled:
            self._journal_terminal(job)
        send_frame(connection, {
            "ok": True, "job_id": job.job_id, "state": job.state, "cancelled": cancelled,
        })

    def _verb_stats(self, connection: socket.socket, peer: str, request: dict) -> None:
        from repro import package_version

        stats = self.table.stats()
        stats["counters"]["store_hits"] = self.store_hits
        stats["counters"]["watchdog_fired"] = self.watchdog_fired
        store = getattr(self._session, "store", None)
        send_frame(connection, {
            "ok": True,
            "server_version": package_version(),
            "protocol_version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "store_results": len(store) if store is not None else None,
            "journal_attached": self.journal is not None,
            **stats,
        })

    def _verb_shutdown(self, connection: socket.socket, peer: str, request: dict) -> None:
        drain = bool(request.get("drain", False))
        logger.info("repro serve: shutdown requested by %s (drain=%s)", peer, drain)
        send_frame(connection, {"ok": True, "stopping": True, "drain": drain})
        self.stop(drain=drain)

    def _lookup(self, connection: socket.socket, request: dict):
        job_id = request.get("job_id")
        job = self.table.get(str(job_id))
        if job is None:
            send_frame(connection, error_response("unknown_job", f"no job {job_id!r}"))
        return job

    # ------------------------------------------------------------- evaluation

    def _eval_loop(self) -> None:
        """The evaluation loop: queue -> watchdogged run on the shared Session."""
        while True:
            if self._stopping.is_set() and self._drained:
                return  # drain: leave the rest of the queue journaled
            job = self.table.next_job(timeout=0.2)
            if job is None:
                if self._stopping.is_set():
                    return
                continue
            self._journal_start(job)
            # Chaos site "serve_daemon": the exit kind is a kill -9 proxy —
            # the daemon dies with this job journaled as running.
            chaos_hook("serve_daemon")
            self._run_supervised(job)

    def _job_deadline(self, job: Job) -> Optional[float]:
        """Watchdog deadline: spec ``task_timeout`` > server ``job_timeout``."""
        raw = job.spec.get("task_timeout") if isinstance(job.spec, dict) else None
        if isinstance(raw, (int, float)) and not isinstance(raw, bool) and raw > 0:
            return float(raw)
        return self.job_timeout

    def _run_supervised(self, job: Job) -> None:
        """Run one job on a watchdogged thread; never wedges the eval loop.

        The evaluation itself happens on a disposable worker thread.  If it
        exceeds the per-job deadline the job is quarantined + journaled and
        the thread abandoned (daemonic, so it cannot block exit); the loop
        is then free to take the next job.  A finished-but-abandoned
        evaluation is harmless: its result (already in the content-addressed
        store, if any) is what a resubmission will be answered from.
        """
        outcome: dict[str, object] = {}
        finished = threading.Event()

        def evaluate() -> None:
            try:
                # Chaos site "serve_eval": the hang kind wedges exactly this
                # thread, proving the watchdog frees the loop.
                chaos_hook("serve_eval")
                spec = RunSpec.from_json_dict(job.spec)
                outcome["result"] = self._session.run(spec)
            except BaseException as exc:  # noqa: BLE001 - marshalled to the supervisor
                outcome["error"] = exc
            finally:
                finished.set()

        worker = threading.Thread(
            target=evaluate, name=f"serve-eval-{job.job_id}", daemon=True)
        worker.start()
        deadline = self._job_deadline(job)
        if not finished.wait(timeout=deadline):
            with self._lock:
                self.watchdog_fired += 1
            message = (f"watchdog: evaluation exceeded the {deadline:.1f}s deadline; "
                       f"the job was abandoned and quarantined")
            logger.warning("repro serve: job %s %s", job.job_id, message)
            self.table.fail(job, message, quarantined=True)
            self._journal_terminal(job)
            return
        error = outcome.get("error")
        if error is None:
            result = outcome["result"]
            self.table.finish(job, result.to_json_dict())
        elif isinstance(error, TaskFailedError):
            logger.warning("repro serve: job %s quarantined: %s", job.job_id, error)
            self.table.fail(job, str(error), quarantined=True)
        else:
            logger.warning("repro serve: job %s failed: %s", job.job_id, error)
            self.table.fail(job, f"{type(error).__name__}: {error}")
        self._journal_terminal(job)


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    store: Optional[str] = None,
    jobs: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    retry=None,
    job_timeout: Optional[float] = DEFAULT_JOB_TIMEOUT,
    drain_on_stop: bool = False,
) -> ReproServer:
    """Build a ready-to-start server around a fresh shared Session.

    With a ``store`` the job journal lives beside it
    (``<store>/journal.jsonl``) and the daemon is crash-safe; without one
    there is nowhere durable to journal, so the queue is in-memory only.
    """
    from repro.api.session import Session

    session = Session(jobs=jobs, store=store, retry=retry)
    journal = JobJournal(Path(store) / JOURNAL_FILE) if store else None
    return ReproServer(
        session,
        host=host,
        port=port,
        queue_limit=queue_limit,
        journal=journal,
        job_timeout=job_timeout,
        drain_on_stop=drain_on_stop,
    )
