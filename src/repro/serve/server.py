"""The evaluation daemon: a threaded JSON-over-TCP front of one warm Session.

``repro serve`` turns the whole evaluation stack — declarative RunSpecs,
digest-keyed ResultStore, warm never-recycled worker pools, the resilient
backend — into a long-running service.  The process model mirrors the
instamatic ``tem_server.py`` split the ROADMAP cites: *many* connection
handler threads parse frames and answer cheap verbs, but exactly **one
evaluation thread** drains the job queue onto one shared
:class:`~repro.api.session.Session`, so every client's work lands on the
same warm fabric and pays no cold-start.

Request flow for ``submit``::

    validate spec -> content digest
        digest in ResultStore?       -> answer immediately (never queued)
        digest already in flight?    -> attach to that job (one evaluation)
        queue below the bound?       -> enqueue FIFO / per-client round-robin
        otherwise                    -> queue_full + retry_after hint

Results returned over the wire are byte-identical to a local
``Session.run`` of the same spec (volatile ``timing`` and
``provenance.resilience`` aside) because they *are* ``Session.run`` outputs
— the server adds nothing but transport.  See EXPERIMENTS.md ("Evaluation
service") for the verb and failure semantics and ARCHITECTURE.md for the
client -> queue -> fabric -> store diagram.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from typing import Optional

from repro.api.registry import RegistryError
from repro.api.spec import RunSpec, SpecError
from repro.parallel.resilience import TaskFailedError
from repro.serve import jobs as jobstates
from repro.serve.jobs import JobTable, QueueFullError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    error_response,
    recv_frame,
    send_frame,
)

logger = logging.getLogger("repro.serve")

#: Default TCP port (unassigned by IANA; override with ``--port``).
DEFAULT_PORT = 9474

#: Default bound on queued jobs (see JobTable backpressure).
DEFAULT_QUEUE_LIMIT = 32


class ReproServer:
    """Threaded evaluation daemon around one shared Session.

    ``session`` only needs the Session surface the server uses: ``.store``
    (may be ``None``) and ``.run(RunSpec) -> RunResult`` — tests substitute
    a controllable fake.  With ``owns_session`` (the default) the server
    closes the session — and thereby the warm worker pools — on ``stop``.
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        owns_session: bool = True,
    ) -> None:
        self._session = session
        self._owns_session = owns_session
        self.host = host
        self.table = JobTable(queue_limit=queue_limit)
        self.store_hits = 0
        self.started_at = time.monotonic()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]

    # -------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn the accept loop and the single evaluation thread."""
        for name, target in (("serve-accept", self._accept_loop),
                             ("serve-eval", self._eval_loop)):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        logger.info("repro serve: listening on %s:%d (pid %d)", self.host, self.port, os.getpid())

    def stop(self) -> None:
        """Graceful shutdown: no new work, running job finishes, pools close."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        cancelled = self.table.cancel_all_queued()
        if cancelled:
            logger.info("repro serve: cancelled %d queued job(s) on shutdown", cancelled)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the server threads to exit and release the session."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            return  # timed out; caller may retry
        if not self._stopped.is_set():
            self._stopped.set()
            self._listener.close()
            if self._owns_session:
                self._session.close()

    def serve_forever(self) -> None:
        """Run until :meth:`stop` (for the CLI; tests use start/stop/join)."""
        self.start()
        try:
            while not self._stopping.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            logger.info("repro serve: interrupted, shutting down")
            self.stop()
        finally:
            self.stop()
            self.join()

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
        self.join()

    # ---------------------------------------------------------------- accept

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, address = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection, f"{address[0]}:{address[1]}"),
                name=f"serve-conn-{address[1]}",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, connection: socket.socket, peer: str) -> None:
        with connection:
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    request = recv_frame(connection)
                except (ProtocolError, OSError) as exc:
                    logger.debug("repro serve: dropping %s: %s", peer, exc)
                    return
                if request is None:
                    return
                try:
                    self._dispatch(connection, peer, request)
                except (ProtocolError, OSError) as exc:
                    logger.debug("repro serve: lost %s mid-response: %s", peer, exc)
                    return

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, connection: socket.socket, peer: str, request: dict) -> None:
        verb = request.get("verb")
        handler = getattr(self, f"_verb_{verb}", None) if isinstance(verb, str) else None
        if handler is None:
            send_frame(connection, error_response("bad_frame", f"unknown verb {verb!r}"))
            return
        handler(connection, peer, request)

    def _verb_ping(self, connection: socket.socket, peer: str, request: dict) -> None:
        from repro import package_version

        store = getattr(self._session, "store", None)
        send_frame(connection, {
            "ok": True,
            "server_version": package_version(),
            "protocol_version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "store_attached": store is not None,
            "store_results": len(store) if store is not None else None,
        })

    def _verb_submit(self, connection: socket.socket, peer: str, request: dict) -> None:
        if self._stopping.is_set():
            send_frame(connection, error_response("shutting_down", "server is shutting down"))
            return
        payload = request.get("spec")
        try:
            if not isinstance(payload, dict):
                raise SpecError(f"submit needs a 'spec' object, got {type(payload).__name__}")
            spec = RunSpec.from_json_dict(payload).validate()
        except (SpecError, RegistryError) as exc:
            send_frame(connection, error_response("invalid_spec", str(exc)))
            return
        digest = spec.digest
        client = str(request.get("client") or peer)
        # Duplicate of a finished run: answer straight from the store, the
        # job queue never sees it.
        store = getattr(self._session, "store", None)
        if store is not None:
            stored = store.get(digest)
            if stored is not None:
                with self._lock:
                    self.store_hits += 1
                send_frame(connection, {
                    "ok": True,
                    "job_id": None,
                    "digest": digest,
                    "state": jobstates.DONE,
                    "source": "store",
                    "result": stored.to_json_dict(),
                })
                return
        try:
            job, deduped = self.table.submit(spec.to_json_dict(), digest, client)
        except QueueFullError as exc:
            send_frame(connection, error_response(
                "queue_full", str(exc), retry_after=exc.retry_after))
            return
        response: dict[str, object] = {
            "ok": True,
            "job_id": job.job_id,
            "digest": digest,
            "state": job.state,
            "source": "inflight" if deduped else "queue",
        }
        position = self.table.position(job)
        if position is not None:
            response["position"] = position
        send_frame(connection, response)

    def _verb_status(self, connection: socket.socket, peer: str, request: dict) -> None:
        job = self._lookup(connection, request)
        if job is None:
            return
        info = job.describe()
        position = self.table.position(job)
        if position is not None:
            info["position"] = position
        send_frame(connection, {"ok": True, **info})

    def _verb_result(self, connection: socket.socket, peer: str, request: dict) -> None:
        job = self._lookup(connection, request)
        if job is None:
            return
        timeout = request.get("timeout")
        if timeout is not None:
            self.table.wait(job, timeout=float(timeout))
        send_frame(connection, self._result_frame(job))

    def _verb_watch(self, connection: socket.socket, peer: str, request: dict) -> None:
        """Stream one frame per observed state change until terminal."""
        job = self._lookup(connection, request)
        if job is None:
            return
        state = None
        while True:
            if job.terminal:
                send_frame(connection, self._result_frame(job))
                return
            if state is not None and self._stopping.is_set():
                send_frame(connection, error_response(
                    "shutting_down", "server stopped while the job was pending",
                    job_id=job.job_id, state=job.state))
                return
            if job.state != state:
                state = job.state
                info = job.describe()
                position = self.table.position(job)
                if position is not None:
                    info["position"] = position
                send_frame(connection, {"ok": True, "final": False, **info})
            self.table.wait(job, timeout=0.5, known_state=state)

    def _result_frame(self, job) -> dict:
        if job.state == jobstates.DONE:
            return {"ok": True, "final": True, "job_id": job.job_id,
                    "digest": job.digest, "state": job.state, "result": job.result}
        if job.terminal:
            code = {
                jobstates.FAILED: "job_failed",
                jobstates.QUARANTINED: "job_quarantined",
                jobstates.CANCELLED: "job_cancelled",
            }[job.state]
            return error_response(code, job.error or f"job is {job.state}",
                                  final=True, job_id=job.job_id, state=job.state)
        return {"ok": True, "final": False, "job_id": job.job_id, "state": job.state}

    def _verb_cancel(self, connection: socket.socket, peer: str, request: dict) -> None:
        job_id = request.get("job_id")
        job, cancelled = self.table.cancel(str(job_id))
        if job is None:
            send_frame(connection, error_response("unknown_job", f"no job {job_id!r}"))
            return
        send_frame(connection, {
            "ok": True, "job_id": job.job_id, "state": job.state, "cancelled": cancelled,
        })

    def _verb_stats(self, connection: socket.socket, peer: str, request: dict) -> None:
        from repro import package_version

        stats = self.table.stats()
        stats["counters"]["store_hits"] = self.store_hits
        store = getattr(self._session, "store", None)
        send_frame(connection, {
            "ok": True,
            "server_version": package_version(),
            "protocol_version": PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "store_results": len(store) if store is not None else None,
            **stats,
        })

    def _verb_shutdown(self, connection: socket.socket, peer: str, request: dict) -> None:
        logger.info("repro serve: shutdown requested by %s", peer)
        send_frame(connection, {"ok": True, "stopping": True})
        self.stop()

    def _lookup(self, connection: socket.socket, request: dict):
        job_id = request.get("job_id")
        job = self.table.get(str(job_id))
        if job is None:
            send_frame(connection, error_response("unknown_job", f"no job {job_id!r}"))
        return job

    # ------------------------------------------------------------- evaluation

    def _eval_loop(self) -> None:
        """The single evaluation thread: queue -> shared warm Session."""
        while True:
            job = self.table.next_job(timeout=0.2)
            if job is None:
                if self._stopping.is_set():
                    return
                continue
            try:
                spec = RunSpec.from_json_dict(job.spec)
                result = self._session.run(spec)
            except TaskFailedError as exc:
                logger.warning("repro serve: job %s quarantined: %s", job.job_id, exc)
                self.table.fail(job, str(exc), quarantined=True)
            except Exception as exc:  # noqa: BLE001 - one job must not kill the daemon
                logger.warning("repro serve: job %s failed: %s", job.job_id, exc)
                self.table.fail(job, f"{type(exc).__name__}: {exc}")
            else:
                self.table.finish(job, result.to_json_dict())


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    store: Optional[str] = None,
    jobs: Optional[int] = None,
    queue_limit: int = DEFAULT_QUEUE_LIMIT,
    retry=None,
) -> ReproServer:
    """Build a ready-to-start server around a fresh shared Session."""
    from repro.api.session import Session

    session = Session(jobs=jobs, store=store, retry=retry)
    return ReproServer(session, host=host, port=port, queue_limit=queue_limit)
