"""Client proxy for the evaluation daemon — mirrors the Session surface.

:class:`ServeClient` is the remote twin of
:class:`~repro.api.session.Session`: it accepts the same spec shapes
(:class:`RunSpec`, JSON mapping, or a path to a spec file), and its
:meth:`ServeClient.run` blocks until the daemon returns the
:class:`RunResult` — so ``examples/`` specs run unchanged against a remote
host (``repro run spec.json --remote HOST:PORT[,HOST:PORT...]``).  The
async half of the surface (``submit`` / ``status`` / ``wait`` / ``cancel``)
exposes the job table for callers that fan many specs out before
collecting.

One proxy holds one persistent TCP connection (lazily opened, re-opened
after errors) and serializes its requests with a lock, so a proxy may be
shared across threads; for *parallel* requests use one proxy per thread —
they are cheap.

Failure semantics map the server's error codes onto exceptions:
``queue_full`` is retried internally by :meth:`run` (honouring the server's
``retry_after`` backpressure hint, bounded by ``busy_deadline``), while
failed / quarantined / cancelled jobs raise :class:`RemoteRunError` with
the job's state on it.

Failover and durability (PR 10):

* A proxy accepts a comma-separated **endpoint list**.  Connections try
  the active endpoint first and rotate through the rest; requests that die
  mid-flight are retried once per endpoint.  Submitting is safe to retry —
  specs are content-addressed, so a duplicate lands as a store hit or an
  in-flight dedup, never a second evaluation.
* :meth:`wait` consumes the server's **heartbeat frames** (keepalives on
  an idle watch stream) and transparently **re-opens a dropped stream**
  under a capped-backoff :class:`~repro.parallel.resilience.RetryPolicy`.
  When the stream comes back ``unknown_job`` (the daemon restarted or the
  proxy failed over) and the spec is known, the job is **resubmitted by
  digest** — the journal-replaying daemon answers from its store or
  re-runs it, byte-identically either way.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.api.spec import RunResult, RunSpec
from repro.parallel.resilience import RetryPolicy
from repro.serve import jobs as jobstates
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_endpoint,
    parse_endpoints,
    recv_frame,
    send_frame,
)

SpecLike = Union[RunSpec, Mapping[str, object], str, Path]

#: Watch streams dropped mid-wait are re-opened under this schedule.
DEFAULT_WATCH_RETRY = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=2.0)

#: Error codes that mean "this daemon cannot finish the job, but another
#: (or a restarted) daemon can": the wait loop resubmits by digest.
_RESUBMIT_CODES = ("unknown_job", "shutting_down")


class RemoteError(RuntimeError):
    """The daemon answered with an error frame (``code`` + message)."""

    def __init__(self, message: str, code: str = "", payload: Optional[dict] = None) -> None:
        super().__init__(message)
        self.code = code
        self.payload = payload or {}


class RemoteRunError(RemoteError):
    """A submitted job reached a non-``done`` terminal state."""

    @property
    def state(self) -> str:
        return str(self.payload.get("state", ""))


class ServeBusyError(RemoteError):
    """The daemon's queue stayed full past the client's busy deadline."""

    @property
    def retry_after(self) -> float:
        return float(self.payload.get("retry_after", 1.0))


class _StreamClosed(ProtocolError):
    """The watch stream ended without a final frame (peer died mid-watch)."""


class ServeClient:
    """Proxy object speaking the ``repro serve`` wire protocol.

    ``endpoint`` is ``"HOST:PORT"`` — or a comma-separated failover list
    ``"HOST:PORT,HOST:PORT"`` / a sequence of endpoints (or pass
    ``host=``/``port=`` for a single one).  The ``client_id`` identifies
    this proxy in the server's per-client fair scheduler; all proxies of
    one process share fairness unless given distinct ids.
    """

    def __init__(
        self,
        endpoint: Optional[Union[str, Sequence[str]]] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        client_id: Optional[str] = None,
        watch_retry: Optional[RetryPolicy] = None,
        request_retry: Optional[RetryPolicy] = None,
    ) -> None:
        if endpoint is not None:
            self.endpoints = parse_endpoints(endpoint)
        else:
            self.endpoints = [(host, int(port) if port else 0)]
        for pair in self.endpoints:
            if not pair[1]:
                raise ValueError(
                    f"ServeClient needs a port for every endpoint "
                    f"(got {pair[0]!r}; use 'HOST:PORT[,HOST:PORT...]' or port=...)")
        self.timeout = timeout
        self.client_id = client_id or f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self.watch_retry = watch_retry or DEFAULT_WATCH_RETRY
        # At least one reconnect per endpoint plus headroom for a flaky
        # (drop-prone) connection to a single live daemon.
        self.request_retry = request_retry or RetryPolicy(
            max_attempts=len(self.endpoints) + 3, base_delay=0.05, max_delay=1.0)
        self._active = 0
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    @property
    def host(self) -> str:
        """Host of the active endpoint (single-endpoint back-compat)."""
        return self.endpoints[self._active][0]

    @property
    def port(self) -> int:
        """Port of the active endpoint (single-endpoint back-compat)."""
        return self.endpoints[self._active][1]

    # ------------------------------------------------------------- transport

    def _connection(self) -> socket.socket:
        """The live socket, connecting if needed — active endpoint first,
        then failing over through the rest of the list."""
        if self._sock is not None:
            return self._sock
        last_error: Optional[OSError] = None
        for offset in range(len(self.endpoints)):
            index = (self._active + offset) % len(self.endpoints)
            address = self.endpoints[index]
            try:
                sock = socket.create_connection(address, timeout=self.timeout)
            except OSError as exc:
                last_error = exc
                continue
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            self._active = index
            return sock
        raise last_error if last_error is not None else OSError("no endpoints configured")

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _advance_endpoint(self) -> None:
        """Rotate to the next endpoint (used when the active one answered
        that it is shutting down — connecting to it again is pointless)."""
        with self._lock:
            self._drop_connection()
            self._active = (self._active + 1) % len(self.endpoints)

    def _request(self, payload: dict) -> dict:
        """One request/response round trip.

        Reconnects (failing over through the endpoint list) and retries under
        ``request_retry`` backoff — dead sockets, severed connections and
        unreachable daemons surface only after every endpoint refused
        repeatedly.  Retrying a submit is safe (content-addressed dedup);
        every other verb is a read or idempotent.
        """
        with self._lock:
            policy = self.request_retry
            last_error: Exception = RemoteError("no request attempted")
            for attempt in range(1, policy.max_attempts + 1):
                try:
                    sock = self._connection()
                    send_frame(sock, payload)
                    response = recv_frame(sock)
                    if response is None:
                        raise _StreamClosed("server closed the connection without answering")
                    return response
                except (OSError, ProtocolError) as exc:
                    last_error = exc
                    self._drop_connection()
                    if attempt < policy.max_attempts:
                        time.sleep(policy.delay_for(attempt))
            raise last_error

    @staticmethod
    def _checked(response: dict, tolerate: tuple[str, ...] = ()) -> dict:
        if response.get("ok") or response.get("code") in tolerate:
            return response
        code = str(response.get("code", ""))
        message = str(response.get("error", "remote error"))
        if code in ("job_failed", "job_quarantined", "job_cancelled"):
            raise RemoteRunError(message, code=code, payload=response)
        if code == "queue_full":
            raise ServeBusyError(message, code=code, payload=response)
        raise RemoteError(message, code=code, payload=response)

    # ------------------------------------------------------------ spec coerce

    @staticmethod
    def coerce(spec: SpecLike) -> RunSpec:
        """Accept a RunSpec, a JSON mapping, or a path — like Session."""
        if isinstance(spec, RunSpec):
            return spec
        if isinstance(spec, Mapping):
            return RunSpec.from_json_dict(spec)
        return RunSpec.load(spec)

    # ----------------------------------------------------------------- verbs

    def ping(self) -> dict:
        """Server liveness + version/protocol info (skew diagnosis)."""
        info = self._checked(self._request({"verb": "ping"}))
        if info.get("protocol_version") != PROTOCOL_VERSION:
            raise RemoteError(
                f"protocol skew: server speaks v{info.get('protocol_version')}, "
                f"this client v{PROTOCOL_VERSION} (server version "
                f"{info.get('server_version')})", code="bad_frame", payload=info)
        return info

    def submit(self, spec: SpecLike) -> dict:
        """Enqueue a spec; returns the raw submit response.

        ``result`` is present (and ``job_id`` is ``None``) when the digest
        was answered straight from the server's store; otherwise ``job_id``
        names the queued/attached job.  Raises :class:`ServeBusyError` on
        backpressure.
        """
        document = self.coerce(spec).validate().to_json_dict()
        return self._checked(self._request({
            "verb": "submit", "spec": document, "client": self.client_id,
        }))

    def status(self, job_id: str) -> dict:
        return self._checked(self._request({"verb": "status", "job_id": job_id}))

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Poll (or wait up to ``timeout`` for) a job's result frame."""
        request: dict[str, object] = {"verb": "result", "job_id": job_id}
        if timeout is not None:
            request["timeout"] = timeout
        return self._checked(self._request(request))

    def cancel(self, job_id: str) -> dict:
        """Withdraw this client's interest in a job (cancels when queued
        and no deduplicated submitter still wants it)."""
        return self._checked(self._request({"verb": "cancel", "job_id": job_id}))

    def stats(self) -> dict:
        return self._checked(self._request({"verb": "stats"}))

    def shutdown(self, drain: bool = False) -> dict:
        """Ask the daemon to stop.  ``drain=False`` cancels its queue;
        ``drain=True`` persists the queued jobs to the journal for the next
        daemon to replay."""
        return self._checked(self._request({"verb": "shutdown", "drain": drain}))

    # ------------------------------------------------------------ run surface

    def _watch_stream(self, job_id: str) -> dict:
        """One watch stream: returns the final frame (success or error).

        Heartbeat keepalives and state-change frames are consumed silently.
        Raises :class:`_StreamClosed`/``OSError``/``ProtocolError`` when the
        stream dies before a final frame — the caller re-opens it.
        """
        with self._lock:
            try:
                sock = self._connection()
                send_frame(sock, {"verb": "watch", "job_id": job_id})
                while True:
                    frame = recv_frame(sock)
                    if frame is None:
                        raise _StreamClosed("server closed the watch stream")
                    if frame.get("final") or not frame.get("ok"):
                        return frame
            except (OSError, ProtocolError):
                self._drop_connection()
                raise

    def wait(self, job_id: str, spec: Optional[SpecLike] = None) -> RunResult:
        """Block until a job is terminal; returns its RunResult or raises.

        Uses the streaming ``watch`` verb: the server pushes a frame per
        state change (plus heartbeats), so waiting costs no polling traffic.
        A dropped stream is re-opened under ``watch_retry`` backoff, failing
        over through the endpoint list.  With ``spec`` given, a daemon that
        no longer knows the job (restart / failover / drain) gets the spec
        resubmitted by digest instead of erroring out.
        """
        document = None if spec is None else self.coerce(spec).validate().to_json_dict()
        policy = self.watch_retry
        drops = 0
        while True:
            try:
                frame = self._watch_stream(job_id)
            except (OSError, ProtocolError):
                drops += 1
                if drops >= policy.max_attempts:
                    raise
                time.sleep(policy.delay_for(drops))
                continue
            code = str(frame.get("code", ""))
            if code in _RESUBMIT_CODES and document is not None:
                drops += 1
                if drops >= policy.max_attempts:
                    self._checked(frame)  # raises with the server's message
                if code == "shutting_down":
                    # That daemon is done; its connection would keep
                    # answering shutting_down forever.  Rotate away.
                    self._advance_endpoint()
                time.sleep(policy.delay_for(drops))
                try:
                    response = self._checked(self._request({
                        "verb": "submit", "spec": document, "client": self.client_id,
                    }))
                except (ServeBusyError, RemoteError):
                    continue  # resubmit again after the next backoff
                if response.get("result") is not None:
                    return RunResult.from_json_dict(response["result"])
                job_id = str(response["job_id"])
                continue
            self._checked(frame)
            return RunResult.from_json_dict(frame["result"])

    def run(self, spec: SpecLike, busy_deadline: Optional[float] = 300.0) -> RunResult:
        """Submit and wait — the remote mirror of ``Session.run``.

        Store-hit answers return immediately; queued work is awaited via the
        watch stream (re-opened and failed over as needed).  ``queue_full``
        responses are retried (sleeping the server's ``retry_after`` hint)
        and ``shutting_down`` answers rotate to the next endpoint, until
        ``busy_deadline`` seconds pass.
        """
        document = self.coerce(spec).validate().to_json_dict()
        deadline = None if busy_deadline is None else time.monotonic() + busy_deadline
        while True:
            try:
                response = self.submit(document)
            except ServeBusyError as exc:
                pause = min(5.0, max(0.05, exc.retry_after))
                if deadline is not None and time.monotonic() + pause > deadline:
                    raise
                time.sleep(pause)
                continue
            except RemoteError as exc:
                if exc.code == "shutting_down" and len(self.endpoints) > 1:
                    if deadline is not None and time.monotonic() + 0.2 > deadline:
                        raise
                    self._advance_endpoint()
                    time.sleep(0.2)
                    continue
                raise
            break
        if response.get("result") is not None:
            return RunResult.from_json_dict(response["result"])
        return self.wait(str(response["job_id"]), spec=document)

    # -------------------------------------------------------------- lifetime

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def wait_until_ready(endpoint: str, timeout: float = 30.0, interval: float = 0.1) -> dict:
    """Poll ``ping`` until a freshly spawned daemon answers (or timeout)."""
    host, port = parse_endpoint(endpoint)
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host=host, port=port, timeout=min(5.0, timeout)) as client:
                return client.ping()
        except (OSError, RemoteError, ProtocolError) as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(f"no repro serve daemon answered at {endpoint} within {timeout}s: {last_error}")


# Re-exported for callers that match on job states without importing jobs.
TERMINAL_STATES = jobstates.TERMINAL_STATES
