"""Client proxy for the evaluation daemon — mirrors the Session surface.

:class:`ServeClient` is the remote twin of
:class:`~repro.api.session.Session`: it accepts the same spec shapes
(:class:`RunSpec`, JSON mapping, or a path to a spec file), and its
:meth:`ServeClient.run` blocks until the daemon returns the
:class:`RunResult` — so ``examples/`` specs run unchanged against a remote
host (``repro run spec.json --remote HOST:PORT``).  The async half of the
surface (``submit`` / ``status`` / ``wait`` / ``cancel``) exposes the job
table for callers that fan many specs out before collecting.

One proxy holds one persistent TCP connection (lazily opened, re-opened
after errors) and serializes its requests with a lock, so a proxy may be
shared across threads; for *parallel* requests use one proxy per thread —
they are cheap.

Failure semantics map the server's error codes onto exceptions:
``queue_full`` is retried internally by :meth:`run` (honouring the server's
``retry_after`` backpressure hint, bounded by ``busy_deadline``), while
failed / quarantined / cancelled jobs raise :class:`RemoteRunError` with
the job's state on it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.api.spec import RunResult, RunSpec
from repro.serve import jobs as jobstates
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    parse_endpoint,
    recv_frame,
    send_frame,
)

SpecLike = Union[RunSpec, Mapping[str, object], str, Path]


class RemoteError(RuntimeError):
    """The daemon answered with an error frame (``code`` + message)."""

    def __init__(self, message: str, code: str = "", payload: Optional[dict] = None) -> None:
        super().__init__(message)
        self.code = code
        self.payload = payload or {}


class RemoteRunError(RemoteError):
    """A submitted job reached a non-``done`` terminal state."""

    @property
    def state(self) -> str:
        return str(self.payload.get("state", ""))


class ServeBusyError(RemoteError):
    """The daemon's queue stayed full past the client's busy deadline."""

    @property
    def retry_after(self) -> float:
        return float(self.payload.get("retry_after", 1.0))


class ServeClient:
    """Proxy object speaking the ``repro serve`` wire protocol.

    ``endpoint`` is ``"HOST:PORT"`` (or pass ``host=``/``port=``).  The
    ``client_id`` identifies this proxy in the server's per-client fair
    scheduler; all proxies of one process share fairness unless given
    distinct ids.
    """

    def __init__(
        self,
        endpoint: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 60.0,
        client_id: Optional[str] = None,
    ) -> None:
        if endpoint is not None:
            host, port = parse_endpoint(endpoint)
        if not port:
            raise ValueError("ServeClient needs a port (endpoint 'HOST:PORT' or port=...)")
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.client_id = client_id or f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------- transport

    def _connection(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request(self, payload: dict) -> dict:
        """One request/response round trip (reconnects once on a dead socket)."""
        with self._lock:
            for attempt in (1, 2):
                try:
                    sock = self._connection()
                    send_frame(sock, payload)
                    response = recv_frame(sock)
                    break
                except (OSError, ProtocolError):
                    self._drop_connection()
                    if attempt == 2:
                        raise
            if response is None:
                self._drop_connection()
                raise RemoteError("server closed the connection without answering")
            return response

    @staticmethod
    def _checked(response: dict, tolerate: tuple[str, ...] = ()) -> dict:
        if response.get("ok") or response.get("code") in tolerate:
            return response
        code = str(response.get("code", ""))
        message = str(response.get("error", "remote error"))
        if code in ("job_failed", "job_quarantined", "job_cancelled"):
            raise RemoteRunError(message, code=code, payload=response)
        if code == "queue_full":
            raise ServeBusyError(message, code=code, payload=response)
        raise RemoteError(message, code=code, payload=response)

    # ------------------------------------------------------------ spec coerce

    @staticmethod
    def coerce(spec: SpecLike) -> RunSpec:
        """Accept a RunSpec, a JSON mapping, or a path — like Session."""
        if isinstance(spec, RunSpec):
            return spec
        if isinstance(spec, Mapping):
            return RunSpec.from_json_dict(spec)
        return RunSpec.load(spec)

    # ----------------------------------------------------------------- verbs

    def ping(self) -> dict:
        """Server liveness + version/protocol info (skew diagnosis)."""
        info = self._checked(self._request({"verb": "ping"}))
        if info.get("protocol_version") != PROTOCOL_VERSION:
            raise RemoteError(
                f"protocol skew: server speaks v{info.get('protocol_version')}, "
                f"this client v{PROTOCOL_VERSION} (server version "
                f"{info.get('server_version')})", code="bad_frame", payload=info)
        return info

    def submit(self, spec: SpecLike) -> dict:
        """Enqueue a spec; returns the raw submit response.

        ``result`` is present (and ``job_id`` is ``None``) when the digest
        was answered straight from the server's store; otherwise ``job_id``
        names the queued/attached job.  Raises :class:`ServeBusyError` on
        backpressure.
        """
        document = self.coerce(spec).validate().to_json_dict()
        return self._checked(self._request({
            "verb": "submit", "spec": document, "client": self.client_id,
        }))

    def status(self, job_id: str) -> dict:
        return self._checked(self._request({"verb": "status", "job_id": job_id}))

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """Poll (or wait up to ``timeout`` for) a job's result frame."""
        request: dict[str, object] = {"verb": "result", "job_id": job_id}
        if timeout is not None:
            request["timeout"] = timeout
        return self._checked(self._request(request))

    def cancel(self, job_id: str) -> dict:
        """Withdraw this client's interest in a job (cancels when queued
        and no deduplicated submitter still wants it)."""
        return self._checked(self._request({"verb": "cancel", "job_id": job_id}))

    def stats(self) -> dict:
        return self._checked(self._request({"verb": "stats"}))

    def shutdown(self) -> dict:
        """Ask the daemon to stop (running job finishes, queue is cancelled)."""
        return self._checked(self._request({"verb": "shutdown"}))

    # ------------------------------------------------------------ run surface

    def wait(self, job_id: str) -> RunResult:
        """Block until a job is terminal; returns its RunResult or raises.

        Uses the streaming ``watch`` verb: the server pushes a frame per
        state change, so waiting costs no polling traffic.
        """
        with self._lock:
            sock = self._connection()
            try:
                send_frame(sock, {"verb": "watch", "job_id": job_id})
                while True:
                    frame = recv_frame(sock)
                    if frame is None:
                        raise RemoteError("server closed the watch stream")
                    if frame.get("final") or not frame.get("ok"):
                        break
            except (OSError, ProtocolError):
                self._drop_connection()
                raise
        self._checked(frame)
        return RunResult.from_json_dict(frame["result"])

    def run(self, spec: SpecLike, busy_deadline: Optional[float] = 300.0) -> RunResult:
        """Submit and wait — the remote mirror of ``Session.run``.

        Store-hit answers return immediately; queued work is awaited via the
        watch stream.  ``queue_full`` responses are retried (sleeping the
        server's ``retry_after`` hint) until ``busy_deadline`` seconds pass.
        """
        deadline = None if busy_deadline is None else time.monotonic() + busy_deadline
        while True:
            try:
                response = self.submit(spec)
            except ServeBusyError as exc:
                pause = min(5.0, max(0.05, exc.retry_after))
                if deadline is not None and time.monotonic() + pause > deadline:
                    raise
                time.sleep(pause)
                continue
            break
        if response.get("result") is not None:
            return RunResult.from_json_dict(response["result"])
        return self.wait(str(response["job_id"]))

    # -------------------------------------------------------------- lifetime

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def wait_until_ready(endpoint: str, timeout: float = 30.0, interval: float = 0.1) -> dict:
    """Poll ``ping`` until a freshly spawned daemon answers (or timeout)."""
    host, port = parse_endpoint(endpoint)
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host=host, port=port, timeout=min(5.0, timeout)) as client:
                return client.ping()
        except (OSError, RemoteError, ProtocolError) as exc:
            last_error = exc
            time.sleep(interval)
    raise TimeoutError(f"no repro serve daemon answered at {endpoint} within {timeout}s: {last_error}")


# Re-exported for callers that match on job states without importing jobs.
TERMINAL_STATES = jobstates.TERMINAL_STATES
