"""Crash-safe job journal of the evaluation daemon (``repro serve``).

The daemon's :class:`~repro.serve.jobs.JobTable` lives in memory: before
this module existed, a daemon crash silently lost every queued and running
job.  The journal is the write-ahead log that closes that hole — an
append-only, schema-versioned JSONL file beside the result store recording
one record per job *transition*:

``submit``
    The accepted spec (full JSON document), its content digest and the
    submitting client.  Written before the submit response goes back on the
    wire, so an acknowledged job is always recoverable.
``start``
    The digest left the queue for the evaluation thread.
``done`` / ``failed`` / ``quarantined`` / ``cancelled``
    Terminal transitions.  ``done`` results live in the content-addressed
    ResultStore, not here — the journal records *that* a digest finished,
    never *what* it computed.

On startup the daemon replays the journal: every digest with a ``submit``
but no terminal record is *outstanding* and is re-enqueued (results are
content-addressed, so re-evaluating a lost running job is safe, and a
digest already in the store short-circuits to ``done``).  The journal is
then compacted to just the outstanding submits so it never grows without
bound across restarts.

Durability mirrors the result store's JSONL backend: single buffered
write + fsync per record under an advisory flock, torn tails truncated
before appending and salvaged on load (a crash mid-append costs at most
the record being written — and an unacknowledged submit is the client's
to retry).  Corruption in the *middle* of the file raises
:class:`JournalError`; ``repro fsck --repair`` reports and repairs what is
salvageable (see :mod:`repro.store.fsck`).
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.store.result_store import _exclusive_lock, atomic_write_text
from repro.testing.chaos import chaos_mangle

logger = logging.getLogger("repro.serve")

#: File name of the journal inside a store directory.
JOURNAL_FILE = "journal.jsonl"

#: Bumped on incompatible journal record changes.
JOURNAL_SCHEMA_VERSION = 1

#: Event kinds a record may carry.
SUBMIT = "submit"
START = "start"
TERMINAL_EVENTS = ("done", "failed", "quarantined", "cancelled")
EVENTS = (SUBMIT, START, *TERMINAL_EVENTS)


class JournalError(RuntimeError):
    """The journal file is damaged beyond the salvageable torn tail."""


@dataclass
class JournalEntry:
    """One outstanding job reconstructed by :meth:`JobJournal.outstanding`."""

    digest: str
    spec: dict
    client: str
    started: bool = False
    error: Optional[str] = None

    def describe(self) -> str:
        state = "running" if self.started else "queued"
        return f"{self.digest} ({state}, client {self.client})"


@dataclass
class JournalAudit:
    """What a full journal read saw (consumed by fsck and tests)."""

    entries: list[JournalEntry] = field(default_factory=list)
    records: int = 0
    torn_tail: bool = False
    orphaned_running: int = 0


class JobJournal:
    """Append-only JSONL write-ahead log of job transitions (module doc).

    One daemon owns one journal; the advisory flock merely protects against
    a misconfigured second daemon sharing the file.  All methods are safe to
    call from the server's connection and evaluation threads — appends are
    single atomic writes and replay happens before the threads start.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- append

    def append_submit(self, digest: str, spec: dict, client: str) -> None:
        """Journal an accepted submission (before it is acknowledged)."""
        self._append({"event": SUBMIT, "digest": digest, "spec": spec, "client": client})

    def append_start(self, digest: str) -> None:
        """Journal a digest leaving the queue for the evaluation thread."""
        self._append({"event": START, "digest": digest})

    def append_terminal(self, digest: str, state: str, error: Optional[str] = None) -> None:
        """Journal a terminal transition (``done``/``failed``/...)."""
        if state not in TERMINAL_EVENTS:
            raise ValueError(f"not a terminal journal event: {state!r}")
        record: dict[str, object] = {"event": state, "digest": digest}
        if error is not None:
            record["error"] = str(error)
        self._append(record)

    def _append(self, record: dict) -> None:
        record = {"schema_version": JOURNAL_SCHEMA_VERSION, **record}
        line = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        # Chaos site "serve-journal": the truncate kind tears this append in
        # half, exactly like a daemon killed mid-write (no-op outside tests).
        line = chaos_mangle("serve-journal", line)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        with os.fdopen(fd, "r+b") as handle:
            with _exclusive_lock(handle):
                self._truncate_torn_tail(handle)
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    @staticmethod
    def _truncate_torn_tail(handle) -> None:
        """Drop a crash-torn final line before appending a fresh record."""
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        content = handle.read()
        keep = content.rfind(b"\n") + 1  # 0 when no newline at all
        handle.truncate(keep)
        handle.seek(keep)

    # ---------------------------------------------------------------- replay

    def outstanding(self) -> list[JournalEntry]:
        """Replay the journal: jobs submitted but never finished, in order."""
        return self.audit().entries

    def audit(self) -> JournalAudit:
        """Full replay with damage accounting (fsck uses the extra fields).

        Raises :class:`JournalError` on mid-file corruption; a torn *final*
        line is salvaged (``torn_tail`` set) exactly like the result store.
        """
        audit = JournalAudit()
        if not self.path.exists():
            return audit
        data = self.path.read_bytes()
        text = data.decode("utf-8", errors="replace")
        torn_tail = bool(text) and not text.endswith("\n")
        lines = text.splitlines()
        entries: dict[str, JournalEntry] = {}
        order: list[str] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            final = index == len(lines) - 1
            where = f"{self.path}:{index + 1}"
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise JournalError(f"journal record at {where} is not a JSON object")
                self._check_schema(record, where)
            except json.JSONDecodeError as exc:
                if final:
                    audit.torn_tail = True
                    logger.warning(
                        "salvaged job journal: dropped truncated final record at %s (%s)",
                        where, exc,
                    )
                    break
                raise JournalError(f"corrupt journal record at {where}: {exc}") from exc
            except JournalError:
                if final and torn_tail:
                    audit.torn_tail = True
                    logger.warning(
                        "salvaged job journal: dropped torn final record at %s", where)
                    break
                raise
            audit.records += 1
            event = record["event"]
            digest = str(record["digest"])
            if event == SUBMIT:
                if digest not in entries:
                    order.append(digest)
                entries[digest] = JournalEntry(
                    digest=digest,
                    spec=dict(record.get("spec") or {}),
                    client=str(record.get("client") or "journal-replay"),
                )
            elif event == START:
                entry = entries.get(digest)
                if entry is not None:
                    entry.started = True
            else:  # terminal
                entry = entries.pop(digest, None)
                if entry is not None:
                    order.remove(digest)
        audit.entries = [entries[digest] for digest in order]
        audit.orphaned_running = sum(1 for entry in audit.entries if entry.started)
        return audit

    @staticmethod
    def _check_schema(record: dict, where: str) -> None:
        version = record.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"unsupported journal schema {version!r} at {where} "
                f"(this build reads schema {JOURNAL_SCHEMA_VERSION})"
            )
        if record.get("event") not in EVENTS:
            raise JournalError(f"unknown journal event {record.get('event')!r} at {where}")
        if not record.get("digest"):
            raise JournalError(f"journal record at {where} has no digest")
        if record["event"] == SUBMIT and not isinstance(record.get("spec"), dict):
            raise JournalError(f"submit record at {where} has no spec document")

    # --------------------------------------------------------------- compact

    def compact(self, entries: Optional[Iterable[JournalEntry]] = None) -> int:
        """Atomically rewrite the journal to just the outstanding submits.

        Called after replay (so the file stays bounded across restarts) and
        on drain shutdown (so the persisted queue is exactly what the next
        daemon re-enqueues).  ``start`` markers are dropped: a recovered job
        goes back to ``queued``.  Returns the number of entries kept.
        """
        if entries is None:
            entries = self.outstanding()
        kept = list(entries)
        lines = []
        for entry in kept:
            lines.append(json.dumps({
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "event": SUBMIT,
                "digest": entry.digest,
                "spec": entry.spec,
                "client": entry.client,
            }, separators=(",", ":")))
        atomic_write_text(self.path, "".join(line + "\n" for line in lines))
        return len(kept)
