"""Load-test harness for the evaluation daemon (``repro loadtest``).

Spins a ``repro serve`` daemon in a subprocess (or targets a live one via
``endpoint``), fires N synthetic clients at it concurrently — each client
alternating between one shared *duplicate* spec (exercising the store-hit
fast path after its first evaluation) and *unique* specs rotating over the
workload-proxy suite (exercising the warm fabric) — and records the service
metrics the ROADMAP's "heavy traffic" story is judged by:

* ``p50_ms`` / ``p99_ms`` — per-request submit-to-result latency
* ``throughput_rps`` — completed requests per wall-clock second
* ``store_hit_ratio`` — fraction of requests answered from the ResultStore
  without queueing (duplicates after the first evaluation)
* ``dedup_hits`` — concurrent identical submissions folded onto one job

Each run appends a provenance-stamped entry (server + client version,
protocol version, python/platform) to ``BENCH_serve.json``, the same
trajectory format as ``BENCH_pipeline.json`` / ``BENCH_ga.json``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional

from repro.experiments.bench import append_entry
from repro.serve.client import ServeClient, wait_until_ready
from repro.serve.protocol import PROTOCOL_VERSION

#: Default trajectory file (written to the current working directory).
SERVE_BENCH_FILE = "BENCH_serve.json"

#: Workload proxies the unique-spec stream rotates over (cheap but real).
_UNIQUE_WORKLOADS = (
    "400.perlbench_proxy",
    "401.bzip2_proxy",
    "429.mcf_proxy",
    "458.sjeng_proxy",
    "462.libquantum_proxy",
)

_LISTENING = re.compile(r"listening on ([0-9.]+):(\d+)")


def duplicate_spec() -> dict:
    """The shared spec every client re-submits (the store-hit workload)."""
    return {
        "kind": "simulate",
        "name": "loadtest-duplicate",
        "workloads": ["403.gcc_proxy"],
        "scale": "quick",
        "scale_overrides": {"workload_instructions": 2000},
    }


def unique_spec(index: int) -> dict:
    """The ``index``-th unique spec (distinct digest, rotating workload)."""
    return {
        "kind": "simulate",
        "name": f"loadtest-unique-{index}",
        "workloads": [_UNIQUE_WORKLOADS[index % len(_UNIQUE_WORKLOADS)]],
        "scale": "quick",
        "scale_overrides": {"workload_instructions": 2000},
    }


def spawn_daemon(
    store: str,
    host: str = "127.0.0.1",
    jobs: Optional[int] = None,
    queue_limit: Optional[int] = None,
    extra_env: Optional[dict] = None,
    extra_args: Optional[list] = None,
) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve`` on an ephemeral port; returns (process, endpoint).

    The endpoint is parsed from the daemon's "listening on HOST:PORT" line,
    so no port is hardwired and parallel harnesses never collide.
    ``extra_args`` are appended verbatim (``["--job-timeout", "2"]`` etc.).
    """
    command = [sys.executable, "-m", "repro", "serve",
               "--host", host, "--port", "0", "--store", store]
    if jobs is not None:
        command += ["--jobs", str(jobs)]
    if queue_limit is not None:
        command += ["--queue-limit", str(queue_limit)]
    command += [str(arg) for arg in (extra_args or [])]
    env = dict(os.environ)
    # Run from a source checkout without installation: put the package's
    # parent (src/) on the child's path.
    src_dir = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    # Any failure before the daemon is confirmed ready must reap the child:
    # a leaked daemon would hold the store lock and the port forever.
    try:
        deadline = time.monotonic() + 60.0
        assert process.stdout is not None
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"repro serve exited before listening (rc={process.poll()})")
            match = _LISTENING.search(line)
            if match:
                endpoint = f"{match.group(1)}:{match.group(2)}"
                wait_until_ready(endpoint, timeout=30.0)
                return process, endpoint
        raise RuntimeError("repro serve never printed its listening address")
    except BaseException:
        process.kill()
        process.wait()
        raise


def _percentile(sorted_values: list[float], quantile: float) -> float:
    if not sorted_values:
        return 0.0
    index = round(quantile * (len(sorted_values) - 1))
    return sorted_values[min(len(sorted_values) - 1, max(0, index))]


def run_loadtest(
    endpoint: Optional[str] = None,
    clients: int = 3,
    requests: int = 8,
    store: Optional[str] = None,
    jobs: Optional[int] = None,
    out: Optional[str | Path] = SERVE_BENCH_FILE,
    quiet: bool = False,
) -> dict:
    """Fire ``clients`` concurrent clients x ``requests`` each; return metrics.

    Without ``endpoint`` a daemon is spawned (and shut down) around the run,
    persisting into ``store`` (a temporary directory by default).  Request
    index 0 and every odd index submit the shared duplicate spec; even
    indexes submit unique specs — so >= half the workload exercises the
    dedup/store path and the rest the warm fabric.
    """
    if clients < 1 or requests < 1:
        raise ValueError("loadtest needs at least 1 client and 1 request")
    process = None
    tmp = None
    shutdown_sent = False
    if endpoint is None:
        if store is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
            store = tmp.name
        try:
            process, endpoint = spawn_daemon(store, jobs=jobs)
        except BaseException:
            if tmp is not None:
                tmp.cleanup()
            raise
    try:
        ping = wait_until_ready(endpoint, timeout=30.0)
        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()

        def client_worker(client_index: int) -> None:
            with ServeClient(endpoint, client_id=f"loadtest-{client_index}") as client:
                for request_index in range(requests):
                    spec = (
                        duplicate_spec() if request_index % 2 else
                        unique_spec(client_index * requests + request_index)
                    )
                    start = time.perf_counter()
                    try:
                        client.run(spec)
                    except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                        with lock:
                            failures.append(f"client {client_index}: {exc}")
                        continue
                    elapsed = time.perf_counter() - start
                    with lock:
                        latencies.append(elapsed)

        threads = [threading.Thread(target=client_worker, args=(i,), daemon=True)
                   for i in range(clients)]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_seconds = time.perf_counter() - wall_start

        with ServeClient(endpoint, client_id="loadtest-stats") as client:
            stats = client.stats()
            if process is not None:
                client.shutdown()
                shutdown_sent = True
    finally:
        # Tear the daemon down on *every* path out of the run.  A graceful
        # wait is only worth anything after the shutdown verb was actually
        # sent; on error paths go straight to terminate/kill so a failing
        # loadtest never leaks a daemon holding the store and port.
        if process is not None and process.poll() is None:
            if shutdown_sent:
                try:
                    process.wait(timeout=30.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
            else:
                process.terminate()
                try:
                    process.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
        if tmp is not None:
            tmp.cleanup()

    total = clients * requests
    ordered = sorted(latencies)
    counters = stats.get("counters", {})
    store_hits = int(counters.get("store_hits", 0))
    metrics = {
        "serve": {
            "clients": clients,
            "requests_per_client": requests,
            "total_requests": total,
            "completed": len(latencies),
            "failures": len(failures),
            "wall_seconds": round(wall_seconds, 6),
            "throughput_rps": round(len(latencies) / wall_seconds, 3) if wall_seconds else 0.0,
            "p50_ms": round(_percentile(ordered, 0.50) * 1000, 3),
            "p99_ms": round(_percentile(ordered, 0.99) * 1000, 3),
            "store_hits": store_hits,
            "store_hit_ratio": round(store_hits / total, 4) if total else 0.0,
            "dedup_hits": int(counters.get("dedup_hits", 0)),
            "rejected": int(counters.get("rejected", 0)),
            "server_version": ping.get("server_version"),
            "protocol_version": PROTOCOL_VERSION,
        },
    }
    if failures:
        metrics["serve"]["failure_samples"] = failures[:5]
    if out:
        append_entry(out, metrics)
    if not quiet:
        serve = metrics["serve"]
        print(f"loadtest: {serve['completed']}/{total} requests over {clients} clients "
              f"in {serve['wall_seconds']:.2f}s ({serve['throughput_rps']} req/s)")
        print(f"latency p50 {serve['p50_ms']} ms / p99 {serve['p99_ms']} ms; "
              f"store hits {store_hits} ({serve['store_hit_ratio']:.0%}), "
              f"dedup {serve['dedup_hits']}, rejected {serve['rejected']}")
        if out:
            print(f"entry appended to {out}")
    return metrics
