"""Wire protocol of the evaluation service (``repro serve``).

The server and the :class:`~repro.serve.client.ServeClient` proxy exchange
*frames*: a 4-byte big-endian unsigned length followed by that many bytes of
UTF-8 JSON.  One frame carries one JSON object.  Requests name a ``verb``
(:data:`VERBS`); responses always carry ``ok`` (``true``/``false``) and, on
failure, ``error`` (human-readable message) plus ``code`` (stable
machine-readable identifier, :data:`ERROR_CODES`).

The protocol is deliberately dumb — length-prefixed JSON over a plain TCP
socket, no TLS, no pickling — so any language (or ``netcat`` plus a JSON
encoder) can drive the daemon, and a malicious peer can at worst submit a
spec.  ``PROTOCOL_VERSION`` is echoed in every ``ping`` response together
with the server's package version, so client/server skew is diagnosable
before it turns into a confusing error.

Frame layout::

    +----------------+---------------------------+
    | length (4B BE) | UTF-8 JSON object (length)|
    +----------------+---------------------------+

A frame longer than :data:`MAX_FRAME_BYTES` is refused on both sides — it
indicates a corrupt stream (or a port-scanner speaking another protocol),
not a legitimate result.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

#: Bumped on incompatible wire-format changes; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Frames above this size are refused (corrupt stream / foreign protocol).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The request verbs the server understands.
VERBS = ("ping", "submit", "status", "result", "watch", "cancel", "stats", "shutdown")

#: Stable error codes carried in failing responses.
ERROR_CODES = (
    "bad_frame",       # not JSON, no verb, or an unknown verb
    "invalid_spec",    # the submitted payload failed RunSpec validation
    "queue_full",      # backpressure: resubmit after ``retry_after`` seconds
    "unknown_job",     # no job with that id (expired or never existed)
    "job_failed",      # the evaluation raised; ``error`` has the message
    "job_quarantined", # every retry failed; the job's spec is quarantined
    "job_cancelled",   # the job was cancelled before it ran
    "shutting_down",   # the server is stopping and accepts no new work
)

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """The byte stream violated the framing rules (truncated / oversized)."""


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` as one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"refusing to send {len(body)}-byte frame (max {MAX_FRAME_BYTES})")
    sock.sendall(_HEADER.pack(len(body)) + body)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF (peer closed between frames)."""
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"refusing {length}-byte frame (max {MAX_FRAME_BYTES})")
    body = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


def _recv_exact(sock: socket.socket, length: int, eof_ok: bool) -> Optional[bytes]:
    """Read exactly ``length`` bytes; EOF mid-read always raises."""
    chunks: list[bytes] = []
    remaining = length
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if eof_ok and remaining == length:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({length - remaining}/{length} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks) if chunks else b""


def error_response(code: str, message: str, **extra: object) -> dict:
    """A failing response frame (``ok`` false, stable ``code``)."""
    assert code in ERROR_CODES, f"unknown error code {code!r}"
    return {"ok": False, "code": code, "error": message, **extra}


def parse_endpoint(endpoint: str, default_port: int = 0) -> tuple[str, int]:
    """Split ``HOST:PORT`` (or bare ``HOST``) into an address pair."""
    host, sep, port_text = endpoint.rpartition(":")
    if not sep:
        return endpoint, default_port
    try:
        return host or "127.0.0.1", int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid endpoint {endpoint!r} (expected HOST:PORT)") from exc


def parse_endpoints(endpoints, default_port: int = 0) -> list[tuple[str, int]]:
    """Parse a failover list: ``"HOST:PORT[,HOST:PORT...]"`` or a sequence.

    Order is significant — clients try endpoints in the order given and fail
    over down the list.  Duplicates are dropped (keeping first occurrence).
    """
    if isinstance(endpoints, str):
        parts = [part.strip() for part in endpoints.split(",")]
    else:
        parts = [str(part).strip() for part in endpoints]
    pairs: list[tuple[str, int]] = []
    for part in parts:
        if not part:
            continue
        pair = parse_endpoint(part, default_port=default_port)
        if pair not in pairs:
            pairs.append(pair)
    if not pairs:
        raise ValueError(f"no endpoints in {endpoints!r} (expected HOST:PORT[,HOST:PORT...])")
    return pairs
