"""Set-associative writeback cache emitting per-word lifetime ACE events."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.vuln.ledger import LifetimeTracker


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int
    word_bytes: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("cache size must be a multiple of line_bytes * associativity")
        if self.line_bytes % self.word_bytes:
            raise ValueError("line size must be a multiple of the word size")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // self.word_bytes

    @property
    def total_bits(self) -> int:
        """Data array bits (tag bits are not modelled for SER accounting)."""
        return self.size_bytes * 8


@dataclass(slots=True)
class _Line:
    """One resident cache line."""

    tag: int
    dirty: bool = False
    dirty_ace: bool = False
    last_use: int = 0
    words_touched: set[int] = field(default_factory=set)


@dataclass(frozen=True, slots=True)
class CacheAccessResult:
    """Outcome of a cache access."""

    hit: bool
    evicted_dirty: bool
    evicted_address: Optional[int]
    evicted_ace: bool = False


@dataclass
class CacheStats:
    """Hit/miss counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A set-associative, writeback, write-allocate cache with LRU replacement.

    Every access emits fill/read/write/evict lifetime events.  When the cache
    belongs to a simulated machine, ``tracker`` is the structure's state
    machine obtained from the per-run :class:`~repro.vuln.ledger.
    VulnerabilityLedger` (so the cache's ACE word-cycles land in the unified
    accounts); standalone caches own a private tracker.
    """

    def __init__(self, config: CacheConfig, tracker: Optional[LifetimeTracker] = None) -> None:
        self.config = config
        self.stats = CacheStats()
        self.lifetime = tracker if tracker is not None else LifetimeTracker(
            word_bits=config.word_bytes * 8
        )
        self._sets: list[dict[int, _Line]] = [dict() for _ in range(config.num_sets)]
        # Geometry hoisted out of the hot access path.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._word_bytes = config.word_bytes
        self._associativity = config.associativity
        self._words_per_line = config.words_per_line

    def _decompose(self, address: int) -> tuple[int, int, int]:
        """Return ``(set_index, tag, word_index)`` for a byte address."""
        line_address = address // self._line_bytes
        set_index = line_address % self._num_sets
        tag = line_address // self._num_sets
        word_index = (address % self._line_bytes) // self._word_bytes
        return set_index, tag, word_index

    def line_address(self, address: int) -> int:
        """Aligned line address for a byte address."""
        return (address // self.config.line_bytes) * self.config.line_bytes

    def _evict(self, set_index: int, cycle: int) -> tuple[bool, Optional[int], bool]:
        """Evict the LRU line of a set; returns (dirty, line_address, dirty_ace)."""
        cache_set = self._sets[set_index]
        if not cache_set:
            return False, None, False
        victim_tag = min(cache_set, key=lambda tag: cache_set[tag].last_use)
        victim = cache_set.pop(victim_tag)
        line_number = victim_tag * self._num_sets + set_index
        self.lifetime.evict_words(line_number, victim.words_touched, cycle)
        self.stats.evictions += 1
        if victim.dirty:
            self.stats.dirty_evictions += 1
        evicted_address = line_number * self._line_bytes
        return victim.dirty, evicted_address, victim.dirty_ace

    def access(self, address: int, is_write: bool, cycle: int, ace: bool = True) -> CacheAccessResult:
        """Perform a read or write access of one word at ``address``."""
        return CacheAccessResult(*self.access_parts(address, is_write, cycle, ace))

    def access_parts(
        self, address: int, is_write: bool, cycle: int, ace: bool = True
    ) -> tuple[bool, bool, Optional[int], bool]:
        """:meth:`access` returning a plain ``(hit, evicted_dirty,
        evicted_address, evicted_ace)`` tuple — the allocation-light form the
        memory hierarchy's per-op path uses."""
        self.stats.accesses += 1
        line_address = address // self._line_bytes
        set_index = line_address % self._num_sets
        tag = line_address // self._num_sets
        word_index = (address % self._line_bytes) // self._word_bytes
        line_number = tag * self._num_sets + set_index
        cache_set = self._sets[set_index]
        line = cache_set.get(tag)

        evicted_dirty = False
        evicted_address: Optional[int] = None
        evicted_ace = False
        if line is None:
            self.stats.misses += 1
            if len(cache_set) >= self._associativity:
                evicted_dirty, evicted_address, evicted_ace = self._evict(set_index, cycle)
            line = _Line(tag=tag, last_use=cycle)
            cache_set[tag] = line
            # The whole line is brought in on a miss; only the accessed word
            # is recorded as filled eagerly, remaining words are filled lazily
            # on their first touch so untouched words never accrue ACE time.
            self.lifetime.record_fill(line_number, word_index, cycle, ace=ace)
            line.words_touched.add(word_index)
            hit = False
        else:
            self.stats.hits += 1
            hit = True
            if word_index not in line.words_touched:
                self.lifetime.record_fill(line_number, word_index, cycle, ace=ace)
                line.words_touched.add(word_index)

        line.last_use = cycle
        if is_write:
            self.lifetime.record_write(line_number, word_index, cycle, ace=ace)
            line.dirty = True
            if ace:
                line.dirty_ace = True
        else:
            self.lifetime.record_read(line_number, word_index, cycle, ace=ace)

        return hit, evicted_dirty, evicted_address, evicted_ace

    def access_many(
        self, addresses, is_write: bool, cycles, ace: bool = True
    ) -> list[tuple[bool, bool, Optional[int], bool]]:
        """Bulk :meth:`access_parts` over an address column.

        ``addresses`` is any integer sequence (list or numpy array) and
        ``cycles`` is a matching sequence or one scalar cycle.  LRU and
        lifetime state mutate between elements, so the in-order loop *is*
        the semantics — the bulk form removes per-call overhead for array
        producers, it never reorders.  Integer-exact: results are the same
        tuples ``access_parts`` returns, element for element.
        """
        access = self.access_parts
        if isinstance(cycles, int):
            return [access(int(address), is_write, cycles, ace) for address in addresses]
        return [
            access(int(address), is_write, int(cycle), ace)
            for address, cycle in zip(addresses, cycles)
        ]

    def warm_line(
        self,
        address: int,
        cycle: int = 0,
        dirty: bool = True,
        ace: bool = True,
        word_fraction: float = 1.0,
    ) -> None:
        """Install a whole line as part of functional warm-up.

        ``word_fraction`` of the line's words are marked as holding live data
        (written if ``dirty``, otherwise filled clean); the rest of the line is
        left untouched so it never accrues ACE time.  Victims evicted by the
        warm-up propagate through :class:`LifetimeTracker` as usual, but since
        warm-up happens at a single cycle they carry no ACE duration.
        """
        if not 0.0 <= word_fraction <= 1.0:
            raise ValueError("word_fraction must be within [0, 1]")
        set_index, tag, _ = self._decompose(address)
        line_number = tag * self._num_sets + set_index
        cache_set = self._sets[set_index]
        line = cache_set.get(tag)
        if line is None:
            if len(cache_set) >= self._associativity:
                self._evict(set_index, cycle)
            line = _Line(tag=tag, last_use=cycle)
            cache_set[tag] = line
        words_to_touch = int(round(word_fraction * self._words_per_line))
        if words_to_touch:
            touched = range(words_to_touch)
            self.lifetime.warm_words(line_number, touched, cycle, dirty=dirty, ace=ace)
            line.words_touched.update(touched)
        line.last_use = cycle
        if dirty and words_to_touch:
            line.dirty = True
            if ace:
                line.dirty_ace = True

    def warm_lines(
        self,
        first_address: int,
        count: int,
        cycle: int = 0,
        dirty: bool = True,
        ace: bool = True,
        word_fraction: float = 1.0,
    ) -> None:
        """Install ``count`` consecutive lines starting at ``first_address``.

        Bulk form of :meth:`warm_line` for functional region warm-up: the
        per-line geometry math and word-count rounding are hoisted out of the
        loop.  Equivalent to calling ``warm_line`` once per line in address
        order (warm-up walks hundreds of thousands of words, so this path
        matters for end-to-end evaluation time).
        """
        if not 0.0 <= word_fraction <= 1.0:
            raise ValueError("word_fraction must be within [0, 1]")
        if count <= 0:
            return
        num_sets = self._num_sets
        associativity = self._associativity
        sets = self._sets
        warm_words = self.lifetime.warm_words
        words_to_touch = int(round(word_fraction * self._words_per_line))
        touched = range(words_to_touch)
        mark_dirty = bool(dirty and words_to_touch)
        first_line = first_address // self._line_bytes
        for line_number in range(first_line, first_line + count):
            set_index = line_number % num_sets
            tag = line_number // num_sets
            cache_set = sets[set_index]
            line = cache_set.get(tag)
            if line is None:
                if len(cache_set) >= associativity:
                    self._evict(set_index, cycle)
                line = _Line(tag=tag, last_use=cycle)
                cache_set[tag] = line
            if words_to_touch:
                warm_words(line_number, touched, cycle, dirty=dirty, ace=ace)
                line.words_touched.update(touched)
            line.last_use = cycle
            if mark_dirty:
                line.dirty = True
                if ace:
                    line.dirty_ace = True

    def clone(self, tracker: Optional[LifetimeTracker] = None) -> "Cache":
        """Independent copy of the cache's resident state and counters.

        ``tracker`` rebinds the clone to a (cloned) ledger's lifetime state
        machine; without one the private tracker is cloned.  Set dicts are
        copied preserving insertion order — LRU victim selection breaks ties
        by first-encountered tag, so ordering is part of the semantics.
        """
        dup = Cache(
            self.config,
            tracker=tracker if tracker is not None else self.lifetime.clone(),
        )
        dup.stats = replace(self.stats)
        dup._sets = [
            {
                tag: _Line(
                    tag=line.tag,
                    dirty=line.dirty,
                    dirty_ace=line.dirty_ace,
                    last_use=line.last_use,
                    words_touched=set(line.words_touched),
                )
                for tag, line in cache_set.items()
            }
            for cache_set in self._sets
        ]
        return dup

    def writeback(self, address: int, cycle: int, ace: bool = True) -> CacheAccessResult:
        """Install a dirty line arriving from the level above (victim writeback)."""
        return self.access(address, is_write=True, cycle=cycle, ace=ace)

    def finalize(self, cycle: int) -> None:
        """Close all open lifetime intervals at the end of simulation."""
        self.lifetime.finalize(cycle)

    def avf(self, total_cycles: int) -> float:
        """AVF of the cache data array over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        total_bit_cycles = float(self.config.total_bits) * total_cycles
        return min(1.0, self.lifetime.ace_bit_cycles() / total_bit_cycles)

    def resident_line_count(self) -> int:
        """Number of currently resident lines (used by tests)."""
        return sum(len(s) for s in self._sets)
