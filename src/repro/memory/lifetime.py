"""Lifetime-based ACE analysis (compatibility re-export).

The Biswas-style word-lifetime state machine now lives in
:mod:`repro.vuln.ledger` as the :class:`~repro.vuln.ledger.
VulnerabilityLedger`'s storage-structure tracker; caches and TLBs obtain
their tracker from the per-run ledger instead of owning a private copy.
This module keeps the historical import path for standalone users.
"""

from __future__ import annotations

from repro.vuln.ledger import AceEvent, LifetimeTracker, ResidencyTracker

__all__ = ["AceEvent", "LifetimeTracker", "ResidencyTracker"]
