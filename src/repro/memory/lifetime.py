"""Lifetime-based ACE analysis for storage structures (Biswas et al.).

For writeback caches, a piece of cached data is ACE during the intervals

    Fill  => Read     (the read would consume corrupted data)
    Read  => Read
    Write => Read
    Write => Evict    (the dirty data must be written back intact)

and un-ACE during

    Fill/Read => Evict (clean, never read again)
    *         => Write (the data is overwritten before being used)
    idle / invalid

The tracker records events per *word* (default 8 bytes) so that strided
access patterns that do not touch every word of a line are correctly
credited only for the words that actually hold live data (Section IV-A.5 of
the paper).  Interval ACE-ness is additionally conditioned on whether the
producing/consuming instruction is itself ACE: intervals closed by an un-ACE
read (e.g. a software prefetch or a dynamically dead load) are not ACE, and a
dirty word whose last write was un-ACE is not ACE at eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AceEvent(Enum):
    """Event types that bound ACE lifetime intervals."""

    FILL = "fill"
    READ = "read"
    WRITE = "write"
    EVICT = "evict"


@dataclass(slots=True)
class _WordState:
    """Lifetime state for one resident word."""

    last_event: AceEvent
    last_cycle: int
    last_write_ace: bool = False


class LifetimeTracker:
    """Accumulates ACE word-cycles for a storage structure.

    The tracker is agnostic of the cache geometry; the owning cache reports
    fill/read/write/evict events keyed by ``(line_address, word_index)``.
    """

    def __init__(self, word_bits: int = 64) -> None:
        self.word_bits = word_bits
        self._live: dict[tuple[int, int], _WordState] = {}
        self.ace_word_cycles = 0
        self.total_events = 0

    def _close_interval(self, state: _WordState, cycle: int, closing: AceEvent, ace: bool) -> None:
        """Credit the interval ``state.last_cycle -> cycle`` if it is ACE."""
        duration = max(0, cycle - state.last_cycle)
        if duration == 0:
            return
        interval_ace = False
        if closing is AceEvent.READ and ace:
            # Fill=>Read, Read=>Read and Write=>Read are all ACE provided the
            # consumer is an ACE instruction.
            interval_ace = True
        elif closing is AceEvent.EVICT and state.last_event is AceEvent.WRITE and state.last_write_ace:
            # Dirty data written by an ACE store must survive until writeback.
            interval_ace = True
        if interval_ace:
            self.ace_word_cycles += duration

    def record_fill(self, line: int, word: int, cycle: int, ace: bool = True) -> None:
        """A word became resident (brought in from the next level)."""
        self.total_events += 1
        key = (line, word)
        state = self._live.get(key)
        if state is not None:
            # A fill over a still-live word means the previous occupant left
            # without an explicit eviction event (e.g. a replacement the owner
            # did not report).  Close its interval as an eviction so a dirty
            # ACE write keeps its Write=>Evict credit instead of being
            # silently dropped with the overwritten state.
            self._close_interval(state, cycle, AceEvent.EVICT, ace=True)
        self._live[key] = _WordState(AceEvent.FILL, cycle, last_write_ace=False)

    def record_read(self, line: int, word: int, cycle: int, ace: bool) -> None:
        """A resident word was read by an instruction (ACE or not)."""
        self.total_events += 1
        key = (line, word)
        state = self._live.get(key)
        if state is None:
            # A read to a word we never saw filled (e.g. structure warm-up
            # before tracking started): start tracking from this read.
            self._live[key] = _WordState(AceEvent.READ, cycle, last_write_ace=False)
            return
        self._close_interval(state, cycle, AceEvent.READ, ace)
        state.last_event = AceEvent.READ
        state.last_cycle = cycle

    def record_write(self, line: int, word: int, cycle: int, ace: bool) -> None:
        """A resident word was overwritten by a store."""
        self.total_events += 1
        key = (line, word)
        state = self._live.get(key)
        if state is None:
            self._live[key] = _WordState(AceEvent.WRITE, cycle, last_write_ace=ace)
            return
        # Whatever was there before the write is dead: the interval leading up
        # to a write is never ACE, so we simply restart the interval.
        state.last_event = AceEvent.WRITE
        state.last_cycle = cycle
        state.last_write_ace = ace

    def warm_words(self, line: int, words: range, cycle: int, dirty: bool, ace: bool) -> None:
        """Bulk-install words during functional warm-up.

        Equivalent to a fill (plus a write when ``dirty``) of every word in
        ``words`` at ``cycle``, but without per-event bookkeeping overhead —
        warm-up touches hundreds of thousands of words, so this path matters
        for end-to-end evaluation time.
        """
        event = AceEvent.WRITE if dirty else AceEvent.FILL
        live = self._live
        for word in words:
            live[(line, word)] = _WordState(event, cycle, last_write_ace=dirty and ace)
        self.total_events += len(words)

    def record_evict(self, line: int, word: int, cycle: int) -> None:
        """A resident word left the structure (eviction or invalidation)."""
        self.total_events += 1
        key = (line, word)
        state = self._live.pop(key, None)
        if state is None:
            return
        self._close_interval(state, cycle, AceEvent.EVICT, ace=True)

    def finalize(self, cycle: int) -> None:
        """Close all open intervals at the end of simulation.

        End-of-simulation is treated like an eviction: dirty ACE data is
        still needed (ACE), anything else is un-ACE.  This matches the
        conservative end-of-window treatment used in ACE analysis tools.
        """
        for key in list(self._live):
            self.record_evict(key[0], key[1], cycle)

    def ace_bit_cycles(self) -> float:
        """Total ACE bit-cycles accumulated so far."""
        return float(self.ace_word_cycles) * self.word_bits
