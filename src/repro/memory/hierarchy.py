"""Two-level data memory hierarchy (DL1 + DTLB [+ L2 TLB] + L2 + memory)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.tlb import Tlb, TlbConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vuln.ledger import VulnerabilityLedger


@dataclass(frozen=True, slots=True)
class MemoryAccessOutcome:
    """Latency and hit/miss breakdown of one data memory access."""

    latency: int
    dl1_hit: bool
    l2_hit: bool
    tlb_hit: bool

    @property
    def is_l2_miss(self) -> bool:
        """True when the access went all the way to main memory."""
        return not self.dl1_hit and not self.l2_hit


class MemoryHierarchy:
    """DL1 + DTLB + unified L2 (+ optional L2 TLB) with writeback propagation.

    The hierarchy exposes a single :meth:`access` entry point used by the
    pipeline's load/store execution.  ACE accounting is event-based: when a
    per-run :class:`~repro.vuln.ledger.VulnerabilityLedger` is attached, each
    cache/TLB drives the lifetime tracker of its registered structure, so the
    AVF module reads everything out of the unified accounts; without a ledger
    (standalone use and unit tests) each component owns a private tracker.
    """

    def __init__(
        self,
        dl1_config: CacheConfig,
        l2_config: CacheConfig,
        dtlb_config: TlbConfig,
        memory_latency: int = 200,
        tlb_miss_penalty: int = 30,
        ledger: Optional["VulnerabilityLedger"] = None,
        l2_tlb_config: Optional[TlbConfig] = None,
        l2_tlb_hit_latency: int = 8,
    ) -> None:
        if memory_latency <= 0 or tlb_miss_penalty < 0:
            raise ValueError("latencies must be positive")
        if l2_tlb_config is not None and l2_tlb_hit_latency <= 0:
            raise ValueError("L2 TLB hit latency must be positive")
        if ledger is None:
            self.dl1 = Cache(dl1_config)
            self.l2 = Cache(l2_config)
            self.dtlb = Tlb(dtlb_config)
            self.l2_tlb = Tlb(l2_tlb_config) if l2_tlb_config is not None else None
        else:
            self.dl1 = Cache(
                dl1_config, tracker=ledger.word_tracker("dl1", dl1_config.word_bytes * 8)
            )
            self.l2 = Cache(
                l2_config, tracker=ledger.word_tracker("l2", l2_config.word_bytes * 8)
            )
            self.dtlb = Tlb(
                dtlb_config, tracker=ledger.residency_tracker("dtlb", dtlb_config.entry_bits)
            )
            self.l2_tlb = None
            if l2_tlb_config is not None:
                self.l2_tlb = Tlb(
                    l2_tlb_config,
                    tracker=ledger.residency_tracker("l2_tlb", l2_tlb_config.entry_bits),
                )
        self.memory_latency = memory_latency
        self.tlb_miss_penalty = tlb_miss_penalty
        self.l2_tlb_hit_latency = l2_tlb_hit_latency
        # Latencies hoisted out of the hot access path.
        self._dl1_hit_latency = dl1_config.hit_latency
        self._l2_hit_latency = l2_config.hit_latency

    def access(self, address: int, is_write: bool, cycle: int, ace: bool = True) -> MemoryAccessOutcome:
        """Perform one data access and return its latency and hit breakdown."""
        latency, dl1_hit, l2_hit, tlb_hit = self.access_parts(address, is_write, cycle, ace)
        return MemoryAccessOutcome(
            latency=latency,
            dl1_hit=dl1_hit,
            l2_hit=l2_hit,
            tlb_hit=tlb_hit,
        )

    def access_parts(
        self, address: int, is_write: bool, cycle: int, ace: bool = True
    ) -> tuple[int, bool, bool, bool]:
        """:meth:`access` returning a plain ``(latency, dl1_hit, l2_hit,
        tlb_hit)`` tuple — the allocation-light form the simulator's per-op
        path (interpreted and kernel alike) uses."""
        if address < 0:
            raise ValueError("addresses must be non-negative")

        tlb_hit = self.dtlb.access(address, cycle, ace=ace)
        if tlb_hit:
            latency = 0
        elif self.l2_tlb is not None:
            # A DTLB miss walks the unified second-level TLB first; only an
            # L2 TLB miss pays the full page-walk penalty.
            if self.l2_tlb.access(address, cycle, ace=ace):
                latency = self.l2_tlb_hit_latency
            else:
                latency = self.tlb_miss_penalty
        else:
            latency = self.tlb_miss_penalty

        dl1_hit, dl1_evicted_dirty, dl1_evicted_address, dl1_evicted_ace = self.dl1.access_parts(
            address, is_write=is_write, cycle=cycle, ace=ace
        )
        latency += self._dl1_hit_latency
        l2_hit = True
        if not dl1_hit:
            # Line fill from L2 (a write miss allocates too: write-allocate).
            l2_hit, _, _, _ = self.l2.access_parts(address, is_write=False, cycle=cycle, ace=ace)
            latency += self._l2_hit_latency
            if not l2_hit:
                latency += self.memory_latency
            # A dirty L2 victim goes to memory; nothing further to track.
        if dl1_evicted_dirty and dl1_evicted_address is not None:
            # Dirty DL1 victim is written back into the L2 (same semantics
            # as Cache.writeback, minus the discarded result object).
            self.l2.access_parts(dl1_evicted_address, is_write=True, cycle=cycle, ace=dl1_evicted_ace)

        return latency, dl1_hit, l2_hit, tlb_hit

    def access_many(
        self, addresses, is_write: bool, cycles, ace: bool = True
    ) -> list[tuple[int, bool, bool, bool]]:
        """Bulk :meth:`access_parts` over an address column.

        ``addresses`` is any integer sequence (list or numpy array) and
        ``cycles`` a matching sequence or one scalar cycle.  Replacement and
        lifetime state mutate between elements, so the in-order loop is the
        semantics — bulk only removes per-call overhead for array producers,
        it never reorders accesses.  Integer-exact.
        """
        access = self.access_parts
        if isinstance(cycles, int):
            return [access(int(address), is_write, cycles, ace) for address in addresses]
        return [
            access(int(address), is_write, int(cycle), ace)
            for address, cycle in zip(addresses, cycles)
        ]

    def warm_region(
        self,
        base: int,
        size_bytes: int,
        dirty: bool = True,
        ace: bool = True,
        word_fraction: float = 1.0,
        recurrent: bool = False,
    ) -> None:
        """Functionally warm DL1, L2 and the TLBs for one data region.

        The region is walked at line granularity in address order at cycle 0,
        mimicking an initialisation pass executed before the detailed window
        (the paper's "initialise memory space" setup loop).  DL1 victims spill
        into the L2 so that, as in steady state, the L2 ends up holding the
        most recently initialised data and the DL1 the tail of the walk.
        """
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        line_bytes = self.dl1.config.line_bytes
        page_bytes = self.dtlb.config.page_bytes

        # Walking the whole region through each level and letting LRU evict
        # would leave exactly the *tail* of the walk resident, so warm each
        # level with only the portion it can hold — same end state, far fewer
        # eviction events.
        dl1_span = min(size_bytes, self.dl1.config.size_bytes)
        l2_span = min(size_bytes, self.l2.config.size_bytes)
        tlb_span = min(size_bytes, self.dtlb.config.reach_bytes)

        if self.l2_tlb is not None:
            l2_tlb_span = min(size_bytes, self.l2_tlb.config.reach_bytes)
            for offset in range(size_bytes - l2_tlb_span, size_bytes, page_bytes):
                self.l2_tlb.warm_page(base + offset, cycle=0, ace=ace, recurrent=recurrent)
        for offset in range(size_bytes - tlb_span, size_bytes, page_bytes):
            self.dtlb.warm_page(base + offset, cycle=0, ace=ace, recurrent=recurrent)
        self.l2.warm_lines(
            base + size_bytes - l2_span,
            len(range(size_bytes - l2_span, size_bytes, line_bytes)),
            cycle=0, dirty=dirty, ace=ace, word_fraction=word_fraction,
        )
        self.dl1.warm_lines(
            base + size_bytes - dl1_span,
            len(range(size_bytes - dl1_span, size_bytes, line_bytes)),
            cycle=0, dirty=dirty, ace=ace, word_fraction=word_fraction,
        )

    def clone(self, ledger: Optional["VulnerabilityLedger"] = None) -> "MemoryHierarchy":
        """Independent copy of the whole hierarchy's warm state.

        ``ledger`` should be a clone of the ledger this hierarchy was built
        against: each component is rebound to the cloned ledger's tracker of
        the same structure (``word_tracker``/``residency_tracker`` return the
        existing clone).  The batch evaluation plane uses this to materialize
        one functionally-warmed hierarchy per genome from a shared master.
        """
        dup = MemoryHierarchy.__new__(MemoryHierarchy)
        dup.memory_latency = self.memory_latency
        dup.tlb_miss_penalty = self.tlb_miss_penalty
        dup.l2_tlb_hit_latency = self.l2_tlb_hit_latency
        dup._dl1_hit_latency = self._dl1_hit_latency
        dup._l2_hit_latency = self._l2_hit_latency
        if ledger is None:
            dup.dl1 = self.dl1.clone()
            dup.l2 = self.l2.clone()
            dup.dtlb = self.dtlb.clone()
            dup.l2_tlb = self.l2_tlb.clone() if self.l2_tlb is not None else None
        else:
            dup.dl1 = self.dl1.clone(
                tracker=ledger.word_tracker("dl1", self.dl1.config.word_bytes * 8)
            )
            dup.l2 = self.l2.clone(
                tracker=ledger.word_tracker("l2", self.l2.config.word_bytes * 8)
            )
            dup.dtlb = self.dtlb.clone(
                tracker=ledger.residency_tracker("dtlb", self.dtlb.config.entry_bits)
            )
            dup.l2_tlb = None
            if self.l2_tlb is not None:
                dup.l2_tlb = self.l2_tlb.clone(
                    tracker=ledger.residency_tracker("l2_tlb", self.l2_tlb.config.entry_bits)
                )
        return dup

    def finalize(self, cycle: int) -> None:
        """Close all lifetime intervals at the end of simulation."""
        self.dl1.finalize(cycle)
        self.l2.finalize(cycle)
        self.dtlb.finalize(cycle)
        if self.l2_tlb is not None:
            self.l2_tlb.finalize(cycle)
