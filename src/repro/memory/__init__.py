"""Memory hierarchy substrate: caches, DTLB and lifetime-based ACE analysis."""

from repro.memory.lifetime import AceEvent, LifetimeTracker
from repro.memory.cache import Cache, CacheAccessResult, CacheConfig
from repro.memory.tlb import Tlb, TlbConfig
from repro.memory.hierarchy import MemoryAccessOutcome, MemoryHierarchy

__all__ = [
    "AceEvent",
    "LifetimeTracker",
    "Cache",
    "CacheAccessResult",
    "CacheConfig",
    "Tlb",
    "TlbConfig",
    "MemoryAccessOutcome",
    "MemoryHierarchy",
]
