"""Fully-associative data TLB with residency-based ACE tracking.

A TLB entry holds a page translation.  Its contents are ACE between its first
use and its last use while resident (a corrupted translation would be consumed
by those accesses); the tail interval between the last use and the eviction is
un-ACE ("read to evict is un-ACE" in the paper's code-generator discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.vuln.ledger import ResidencyTracker


@dataclass(frozen=True)
class TlbConfig:
    """Geometry of the data TLB."""

    entries: int
    page_bytes: int
    entry_bits: int = 64

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.page_bytes <= 0 or self.entry_bits <= 0:
            raise ValueError("TLB geometry values must be positive")

    @property
    def total_bits(self) -> int:
        return self.entries * self.entry_bits

    @property
    def reach_bytes(self) -> int:
        """Total memory covered by a fully-populated TLB."""
        return self.entries * self.page_bytes


@dataclass(slots=True)
class _TlbEntry:
    page: int
    fill_cycle: int
    first_ace_use: int | None
    last_ace_use: int | None
    last_use: int
    recurrent: bool = False


@dataclass
class TlbStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Tlb:
    """Fully-associative TLB with LRU replacement.

    Residency ACE accounting is emitted as retire-credit events into a
    :class:`~repro.vuln.ledger.ResidencyTracker` — the structure's account
    feed when ``tracker`` comes from the per-run ledger, or a private
    accumulator for standalone TLBs.
    """

    def __init__(self, config: TlbConfig, tracker: Optional[ResidencyTracker] = None) -> None:
        self.config = config
        self.stats = TlbStats()
        self._entries: dict[int, _TlbEntry] = {}
        self._residency = tracker if tracker is not None else ResidencyTracker(
            entry_bits=config.entry_bits
        )
        # Geometry hoisted out of the hot access path.
        self._page_bytes = config.page_bytes
        self._capacity = config.entries

    @property
    def ace_entry_cycles(self) -> int:
        """Total ACE entry-cycles credited so far."""
        return self._residency.ace_entry_cycles

    def _page(self, address: int) -> int:
        return address // self._page_bytes

    def _retire_entry(self, entry: _TlbEntry) -> None:
        """Credit the ACE residency interval of an entry leaving the TLB."""
        if entry.first_ace_use is not None and entry.last_ace_use is not None:
            self._residency.credit(entry.last_ace_use - entry.first_ace_use)

    def access(self, address: int, cycle: int, ace: bool = True) -> bool:
        """Translate ``address``; returns True on a TLB hit."""
        self.stats.accesses += 1
        page = address // self._page_bytes
        entry = self._entries.get(page)
        if entry is None:
            self.stats.misses += 1
            if len(self._entries) >= self._capacity:
                victim_page = min(self._entries, key=lambda p: self._entries[p].last_use)
                victim = self._entries.pop(victim_page)
                self._retire_entry(victim)
                self.stats.evictions += 1
            entry = _TlbEntry(
                page=page,
                fill_cycle=cycle,
                first_ace_use=cycle if ace else None,
                last_ace_use=cycle if ace else None,
                last_use=cycle,
            )
            self._entries[page] = entry
            return False
        self.stats.hits += 1
        entry.last_use = cycle
        if ace:
            if entry.first_ace_use is None:
                entry.first_ace_use = cycle
            entry.last_ace_use = cycle
        return True

    def access_many(self, addresses, cycles, ace: bool = True) -> list[bool]:
        """Bulk :meth:`access` over an address column (one bool per element).

        ``cycles`` is a matching sequence or one scalar cycle.  Residency
        state mutates between elements, so the in-order loop is the
        semantics; the bulk form only removes per-call overhead for array
        producers (it accepts numpy integer columns directly).
        """
        access = self.access
        if isinstance(cycles, int):
            return [access(int(address), cycles, ace) for address in addresses]
        return [
            access(int(address), int(cycle), ace)
            for address, cycle in zip(addresses, cycles)
        ]

    def warm_page(self, address: int, cycle: int = 0, ace: bool = True, recurrent: bool = False) -> None:
        """Pre-install the translation for ``address`` as part of warm-up.

        ``recurrent`` marks pages belonging to a cyclic access pattern whose
        period exceeds the simulated window: such translations are treated as
        ACE until the end of the window unless they are evicted first
        (steady-state extrapolation; see DESIGN.md).
        """
        page = self._page(address)
        entry = self._entries.get(page)
        if entry is None:
            if len(self._entries) >= self.config.entries:
                victim_page = min(self._entries, key=lambda p: self._entries[p].last_use)
                victim = self._entries.pop(victim_page)
                self._retire_entry(victim)
                self.stats.evictions += 1
            entry = _TlbEntry(
                page=page,
                fill_cycle=cycle,
                first_ace_use=cycle if ace else None,
                last_ace_use=cycle if ace else None,
                last_use=cycle,
                recurrent=recurrent,
            )
            self._entries[page] = entry
            return
        entry.recurrent = entry.recurrent or recurrent
        if ace and entry.first_ace_use is None:
            entry.first_ace_use = cycle
            entry.last_ace_use = cycle

    def clone(self, tracker: Optional[ResidencyTracker] = None) -> "Tlb":
        """Independent copy of the TLB's resident state and counters.

        ``tracker`` rebinds the clone to a (cloned) ledger's residency
        accumulator; without one the private tracker is cloned.  Entry-dict
        insertion order is preserved — LRU victim selection breaks ties by
        first-encountered page.
        """
        dup = Tlb(
            self.config,
            tracker=tracker if tracker is not None else self._residency.clone(),
        )
        dup.stats = replace(self.stats)
        dup._entries = {
            page: _TlbEntry(
                page=entry.page,
                fill_cycle=entry.fill_cycle,
                first_ace_use=entry.first_ace_use,
                last_ace_use=entry.last_ace_use,
                last_use=entry.last_use,
                recurrent=entry.recurrent,
            )
            for page, entry in self._entries.items()
        }
        return dup

    def finalize(self, cycle: int) -> None:
        """Close residency intervals of all still-resident entries."""
        for entry in self._entries.values():
            if entry.recurrent and entry.first_ace_use is not None:
                entry.last_ace_use = max(entry.last_ace_use or 0, cycle)
            self._retire_entry(entry)
        self._entries.clear()

    def avf(self, total_cycles: int) -> float:
        """AVF of the TLB over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        total_entry_cycles = float(self.config.entries) * total_cycles
        return min(1.0, self.ace_entry_cycles / total_entry_cycles)

    def ace_bit_cycles(self) -> float:
        """Total ACE bit-cycles accumulated by the TLB."""
        return self._residency.ace_bit_cycles()

    def resident_entry_count(self) -> int:
        return len(self._entries)
