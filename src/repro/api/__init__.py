"""Declarative run API: component registries, RunSpec/RunResult, Session.

The one request/response surface shared by the CLI, the experiment drivers,
the bench harness and any future service front-end:

* :mod:`repro.api.registry` — named registries of machine configs,
  fault-rate models, workload suites, fitness objectives, scales and
  evaluation backends (stock components installed on import).
* :mod:`repro.api.spec` — JSON-serializable :class:`RunSpec` requests
  (``simulate`` / ``stressmark`` / ``sweep``) and round-trippable
  :class:`RunResult` responses with content-addressed provenance.
* :mod:`repro.api.session` — the :class:`Session` facade that resolves
  specs against the registries and launches the simulations.
* :mod:`repro.api.presets` — the canned spec behind each figure/table.

Quickstart::

    from repro.api import RunSpec, Session

    spec = RunSpec(kind="stressmark", config="config_a", fault_rates="rhc")
    with Session(jobs=4) as session:
        result = session.run(spec)
    result.save("stressmark_rhc.json")
"""

from repro.api import components as _components  # noqa: F401  (installs registries)
from repro.api.presets import comparison_spec, preset_names, preset_spec
from repro.api.registry import (
    BACKENDS,
    CONFIGS,
    FAULT_RATES,
    FITNESS_OBJECTIVES,
    KERNEL_BACKENDS,
    SCALES,
    WORKLOAD_SUITES,
    Registry,
    RegistryError,
    registries,
)
from repro.api.session import ResolvedRun, Session
from repro.api.spec import RUN_KINDS, RunResult, RunSpec, SpecError

__all__ = [
    "Registry",
    "RegistryError",
    "registries",
    "CONFIGS",
    "FAULT_RATES",
    "WORKLOAD_SUITES",
    "FITNESS_OBJECTIVES",
    "SCALES",
    "BACKENDS",
    "KERNEL_BACKENDS",
    "RUN_KINDS",
    "RunSpec",
    "RunResult",
    "SpecError",
    "Session",
    "ResolvedRun",
    "preset_names",
    "preset_spec",
    "comparison_spec",
]
