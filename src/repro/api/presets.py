"""Canned RunSpecs for every simulated table and figure of the paper.

Each figure/table driver in :mod:`repro.experiments` is a thin consumer of
one of these specs: the spec declares *what* to run (which configs,
fault-rate models and workload suites), the :class:`~repro.api.session.
Session` executes it, and the driver only reshapes the resulting reports
into the paper's presentation.  ``repro run`` can execute the same specs
directly; ``preset_spec(name).save(path)`` writes one out as a starting
point for custom scenarios.
"""

from __future__ import annotations

from repro.api.spec import RunSpec
from repro.api.registry import RegistryError, suggest


def comparison_spec(name: str, config: str = "baseline", fault_rates: str = "unit",
                    suites: tuple[str, ...] = ("all",)) -> RunSpec:
    """A stressmark-vs-workloads comparison (the shape of Figures 3/4/7)."""
    return RunSpec(
        kind="sweep",
        name=name,
        runs=(
            RunSpec(kind="stressmark", name=f"{name}/stressmark",
                    config=config, fault_rates=fault_rates),
            RunSpec(kind="simulate", name=f"{name}/workloads",
                    config=config, fault_rates=fault_rates, suites=suites),
        ),
    )


def _presets() -> dict[str, RunSpec]:
    return {
        "figure3": comparison_spec("figure3", suites=("spec_int", "spec_fp")),
        "figure4": comparison_spec("figure4", suites=("mibench",)),
        "figure5": RunSpec(kind="stressmark", name="figure5"),
        "figure6": comparison_spec("figure6", suites=("spec_int", "spec_fp", "mibench")),
        "figure7": RunSpec(
            kind="sweep",
            name="figure7",
            base=RunSpec(kind="stressmark", name="figure7/stressmark"),
            axes={"fault_rates": ("rhc", "edr")},
            runs=(
                RunSpec(kind="simulate", name="figure7/workloads[fault_rates=rhc]",
                        fault_rates="rhc", suites=("all",)),
                RunSpec(kind="simulate", name="figure7/workloads[fault_rates=edr]",
                        fault_rates="edr", suites=("all",)),
            ),
        ),
        "figure8": RunSpec(
            kind="sweep",
            name="figure8",
            base=RunSpec(kind="stressmark", name="figure8/stressmark"),
            axes={"fault_rates": ("unit", "rhc", "edr")},
        ),
        "figure9": RunSpec(
            kind="sweep",
            name="figure9",
            base=RunSpec(kind="stressmark", name="figure9/stressmark"),
            axes={"config": ("baseline", "config_a")},
        ),
        # Extended vulnerability-model sweep (not a paper artefact): exercises
        # the flag-gated structures (store buffer, L2 TLB) end-to-end — the
        # stressmark GA optimises against their SER groups on the ``extended``
        # config, and the workload simulation reports their per-structure AVF
        # next to the stock structure set.
        "vuln_structures": RunSpec(
            kind="sweep",
            name="vuln_structures",
            base=RunSpec(kind="stressmark", name="vuln_structures/stressmark"),
            axes={"config": ("baseline", "extended")},
            runs=(
                RunSpec(kind="simulate", name="vuln_structures/workloads",
                        config="extended", suites=("mibench",)),
            ),
        ),
        "table3": RunSpec(
            kind="sweep",
            name="table3",
            base=RunSpec(kind="stressmark", name="table3/stressmark"),
            axes={"fault_rates": ("unit", "rhc", "edr")},
            runs=(
                RunSpec(kind="simulate", name="table3/workloads[fault_rates=unit]",
                        fault_rates="unit", suites=("all",)),
                RunSpec(kind="simulate", name="table3/workloads[fault_rates=rhc]",
                        fault_rates="rhc", suites=("all",)),
                RunSpec(kind="simulate", name="table3/workloads[fault_rates=edr]",
                        fault_rates="edr", suites=("all",)),
            ),
        ),
    }


def preset_names() -> list[str]:
    """Names of the canned experiment specs."""
    return list(_presets())


def preset_spec(name: str) -> RunSpec:
    """The canned spec behind one figure/table driver."""
    presets = _presets()
    try:
        return presets[name]
    except KeyError:
        raise RegistryError(
            f"unknown preset spec {name!r}{suggest(name, presets)} (known: {', '.join(presets)})"
        ) from None


def children_of_kind(spec: RunSpec, kind: str) -> list[RunSpec]:
    """A sweep's expanded children of one kind (helper for thin drivers)."""
    return [child for child in spec.expand() if child.kind == kind]
