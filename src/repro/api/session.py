"""The Session facade: resolve RunSpecs against the registries and run them.

A :class:`Session` is the one place simulations are launched.  It resolves
the component *names* in a :class:`~repro.api.spec.RunSpec` into concrete
objects (machine config, fault-rate model, workload profiles, fitness,
scale), applies ``config_overrides`` / ``scale_overrides``, and routes the
work through a cached :class:`~repro.experiments.runner.ExperimentContext`
— which fans independent simulations and GA evaluations out over the
:mod:`repro.parallel` backends and memoizes results.  All front-ends (the
CLI's ``run``/``sweep``/figure commands, the experiment drivers, the bench
harness, future services) share this entry point.

Two result surfaces exist:

* :meth:`Session.run` — the declarative path: spec in,
  JSON-round-trippable :class:`~repro.api.spec.RunResult` out.
* :meth:`Session.stressmark_result` / :meth:`Session.workload_report_set`
  — rich in-process objects (``StressmarkResult`` / ``WorkloadReportSet``)
  used by the figure/table drivers, which need full reports rather than
  flattened rows.

Construction arguments *pin* settings: ``Session(scale=..., jobs=...)``
makes those win over whatever a spec says (the CLI uses this for
``--scale``/``--jobs``); a Session built around an existing
``ExperimentContext`` reuses that context's scale, backend and caches.

``Session(store=...)`` attaches a persistent
:class:`~repro.store.result_store.ResultStore` (a path creates/opens one and
the session owns it): :meth:`Session.run` consults the store before
launching anything and persists every finished result, contexts replay
workload simulations and stressmark searches from the store's artifact
database, GA fitness evaluations write through to the store's persistent
fitness cache, and stressmark searches checkpoint per generation
(``resume=True`` continues an interrupted search bit-identically).
:meth:`Session.run_shard` runs one shard of a sweep against a store so
shards can execute on separate machines and be joined with ``repro merge``.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.result_store import ResultStore

from repro.api import components as _components  # noqa: F401  (installs registries)
from repro.api.registry import (
    BACKENDS,
    CONFIGS,
    FAULT_RATES,
    FITNESS_OBJECTIVES,
    KERNEL_BACKENDS,
    SCALES,
    WORKLOAD_SUITES,
    suggest,
)
from repro.api.spec import RunResult, RunSpec, SpecError, build_provenance
from repro.avf.analysis import StructureGroup
from repro.experiments.runner import ExperimentContext, ExperimentScale, WorkloadReportSet
from repro.memory.cache import CacheConfig
from repro.memory.tlb import TlbConfig
from repro.parallel.backends import EvaluationBackend, create_backend, resolve_jobs
from repro.parallel.resilience import FailurePolicy, RetryPolicy
from repro.stressmark.fitness import FitnessFunction
from repro.stressmark.generator import StressmarkResult
from repro.uarch.config import MachineConfig
from repro.uarch.faultrates import FaultRateModel
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.suite import all_profiles

SpecLike = Union[RunSpec, Mapping[str, object], str, Path]


@dataclass(frozen=True)
class ResolvedRun:
    """A RunSpec with every component name resolved to its object."""

    spec: RunSpec
    config: MachineConfig
    fault_rates: FaultRateModel
    fitness: FitnessFunction
    scale: ExperimentScale
    jobs: int
    retry: RetryPolicy
    kernel_backend: str = ""


class Session:
    """Facade resolving and executing :class:`RunSpec` requests.

    Contexts (and their worker pools / caches) are memoized per
    ``(scale, jobs)`` pair, so the runs of a sweep share workload
    simulations and stressmark searches exactly like the figure drivers
    always have.  Use as a context manager, or call :meth:`close`, to
    release worker processes.
    """

    def __init__(
        self,
        scale: Optional[Union[ExperimentScale, str]] = None,
        jobs: Optional[int] = None,
        context: Optional[ExperimentContext] = None,
        store: Optional[Union["ResultStore", str, Path]] = None,
        resume: bool = False,
        retry: Optional[RetryPolicy] = None,
        kernel_backend: Optional[str] = None,
    ) -> None:
        if isinstance(scale, str):
            scale = SCALES.create(scale)
        if kernel_backend:
            KERNEL_BACKENDS.get(kernel_backend)  # validate the pin eagerly
        self._pinned_scale: Optional[ExperimentScale] = scale or (context.scale if context else None)
        self._pinned_jobs: Optional[int] = jobs if jobs is not None else (
            context.jobs if context is not None else None
        )
        # Retry precedence: pinned (CLI --retries/--task-timeout) > spec
        # fields > REPRO_RETRY_* environment > library defaults.
        self._pinned_retry: Optional[RetryPolicy] = retry
        # Kernel-backend precedence: pinned (CLI --kernel-backend) > spec >
        # REPRO_KERNEL_BACKEND environment > the registry default (batch).
        self._pinned_kernel_backend: Optional[str] = kernel_backend
        self._resume = bool(resume)
        self._store: Optional["ResultStore"] = None
        self._owns_store = False
        if store is not None:
            from repro.store.result_store import ResultStore, open_store

            self._owns_store = not isinstance(store, ResultStore)
            self._store = open_store(store)
        self._closed = False
        self._contexts: dict[tuple, ExperimentContext] = {}
        self._owned: list[ExperimentContext] = []
        # One warm worker pool per jobs count, shared by every context the
        # session creates (sweep points at different scales included): the
        # versioned task registry inside ProcessPoolBackend lets one pool
        # serve any number of distinct evaluators without recycling workers.
        self._backends: dict[tuple[int, FailurePolicy], "EvaluationBackend"] = {}
        if context is not None:
            # A wrapped context serves every backend request for its
            # (scale, jobs) pair — it already owns a live backend.  The
            # wrapped context's own store configuration is left untouched.
            self._wrapped = context
            self._contexts[(context.scale, context.jobs, "", None, "")] = context
        else:
            self._wrapped = None

    @property
    def store(self) -> Optional["ResultStore"]:
        """The attached result store, if any."""
        return self._store

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (closed sessions refuse new work)."""
        return self._closed

    # ------------------------------------------------------------ resolution

    def coerce(self, spec: SpecLike) -> RunSpec:
        """Accept a RunSpec, a JSON mapping, or a path to a spec file."""
        if isinstance(spec, RunSpec):
            return spec
        if isinstance(spec, Mapping):
            return RunSpec.from_json_dict(spec)
        return RunSpec.load(spec)

    def resolve(self, spec: SpecLike) -> ResolvedRun:
        """Resolve every component name of a (validated) spec."""
        spec = self.coerce(spec).validate()
        fault_rates = FAULT_RATES.create(spec.fault_rates)
        return ResolvedRun(
            spec=spec,
            config=self.resolve_config(spec),
            fault_rates=fault_rates,
            fitness=FITNESS_OBJECTIVES.create(spec.fitness, fault_rates),
            scale=self.resolve_scale(spec),
            jobs=self.resolve_jobs(spec),
            retry=self.resolve_retry(spec),
            kernel_backend=self.resolve_kernel_backend(spec),
        )

    def resolve_config(self, spec: RunSpec) -> MachineConfig:
        config = CONFIGS.create(spec.config)
        if not spec.config_overrides:
            return config
        overrides = dict(spec.config_overrides)
        # Nested cache/TLB overrides arrive as JSON mappings.
        for key in ("dl1", "il1", "l2"):
            if isinstance(overrides.get(key), Mapping):
                overrides[key] = _replace_fields(getattr(config, key), overrides[key], CacheConfig, key)
        if isinstance(overrides.get("dtlb"), Mapping):
            overrides["dtlb"] = _replace_fields(config.dtlb, overrides["dtlb"], TlbConfig, "dtlb")
        if "name" not in overrides:
            # Derived configs get a content-addressed name so the context's
            # per-config caches never mix a derivative with its base.
            overrides["name"] = f"{spec.config}+{_overrides_digest(spec.config_overrides)}"
        try:
            return config.derive(**overrides)
        except (TypeError, ValueError) as exc:
            raise SpecError(f"invalid config_overrides for {spec.config!r}: {exc}") from exc

    def resolve_scale(self, spec: RunSpec) -> ExperimentScale:
        if self._pinned_scale is not None:
            return self._pinned_scale
        scale = SCALES.create(spec.scale)
        if spec.scale_overrides:
            try:
                scale = scale.derive(**spec.scale_overrides)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"invalid scale_overrides for {spec.scale!r}: {exc}") from exc
        return scale

    def resolve_jobs(self, spec: RunSpec) -> int:
        if self._pinned_jobs is not None:
            return resolve_jobs(self._pinned_jobs)
        return resolve_jobs(spec.jobs)

    def resolve_retry(self, spec: RunSpec) -> RetryPolicy:
        """The retry policy a spec runs under (pinned > spec > environment)."""
        if self._pinned_retry is not None:
            return self._pinned_retry
        policy = RetryPolicy.from_env()
        overrides: dict[str, object] = {}
        if spec.retries is not None:
            overrides["max_attempts"] = spec.retries
        if spec.task_timeout is not None:
            overrides["timeout"] = float(spec.task_timeout)
        return policy.derive(**overrides) if overrides else policy

    def resolve_kernel_backend(self, spec: RunSpec) -> str:
        """The kernel-backend name a spec runs under (pinned > spec).

        Empty string means "no pin": the registry's own resolution
        (``REPRO_KERNEL_BACKEND`` environment, then the ``batch`` default)
        applies at simulation time.  Purely an execution choice — every
        backend is bit-identical — so it never enters store keys.
        """
        if self._pinned_kernel_backend:
            return self._pinned_kernel_backend
        return spec.kernel_backend

    def resolve_profiles(self, spec: RunSpec) -> tuple[WorkloadProfile, ...]:
        """Workload profiles of a simulate spec, in deterministic order."""
        if spec.workloads:
            by_name = {profile.name: profile for profile in all_profiles()}
            profiles = []
            for name in spec.workloads:
                if name not in by_name:
                    raise SpecError(f"unknown workload {name!r}{suggest(name, by_name)}")
                profiles.append(by_name[name])
            return tuple(profiles)
        suites = spec.suites or ("all",)
        profiles = []
        seen: set[str] = set()
        for suite in suites:
            for profile in WORKLOAD_SUITES.create(suite):
                if profile.name not in seen:
                    seen.add(profile.name)
                    profiles.append(profile)
        return tuple(profiles)

    # -------------------------------------------------------------- contexts

    def _shared_backend(self, jobs: int, policy: FailurePolicy) -> "EvaluationBackend":
        """The session's shared evaluation backend for a (jobs, policy) pair."""
        backend = self._backends.get((jobs, policy))
        if backend is None:
            backend = create_backend(jobs, policy=policy)
            self._backends[(jobs, policy)] = backend
        return backend

    def context_for(self, spec: SpecLike) -> ExperimentContext:
        """The (cached) ExperimentContext executing a spec's scale/jobs/backend.

        Contexts with the default backend share one session-owned worker
        pool per (jobs, failure policy) pair, so a sweep's points (and the
        GA generations inside each) reuse warm workers instead of
        respawning them.
        """
        if self._closed:
            raise RuntimeError("session is closed — worker pools and stores are released")
        spec = self.coerce(spec)
        scale = self.resolve_scale(spec)
        jobs = self.resolve_jobs(spec)
        if self._wrapped is not None and (scale, jobs) == (self._wrapped.scale, self._wrapped.jobs):
            return self._wrapped
        policy = FailurePolicy(retry=self.resolve_retry(spec))
        kernel_backend = self.resolve_kernel_backend(spec)
        key = (scale, jobs, spec.backend, policy, kernel_backend)
        context = self._contexts.get(key)
        if context is None:
            if spec.backend:
                backend = BACKENDS.create(spec.backend, jobs)
                owns_backend = True
            else:
                backend = self._shared_backend(jobs, policy)
                owns_backend = False
            context = ExperimentContext(
                scale, jobs=jobs, backend=backend, store=self._store,
                resume=self._resume, owns_backend=owns_backend,
                failure_policy=policy, kernel_backend=kernel_backend,
            )
            self._contexts[key] = context
            self._owned.append(context)
        return context

    # ------------------------------------------------------- rich accessors

    def stressmark_result(self, spec: SpecLike) -> StressmarkResult:
        """Run (or fetch the cached) stressmark search for a spec."""
        resolved = self.resolve(spec)
        if resolved.spec.kind != "stressmark":
            raise SpecError(f"expected a stressmark spec, got kind={resolved.spec.kind!r}")
        return self._stressmark_from_resolved(resolved)

    def _stressmark_from_resolved(self, resolved: ResolvedRun) -> StressmarkResult:
        context = self.context_for(resolved.spec)
        return context.stressmark(
            resolved.config,
            resolved.fault_rates,
            fitness=resolved.fitness,
            ga_seed=resolved.spec.seed,
        )

    def workload_report_set(self, spec: SpecLike) -> WorkloadReportSet:
        """Simulate (or fetch cached) workload reports for a simulate spec."""
        resolved = self.resolve(spec)
        if resolved.spec.kind != "simulate":
            raise SpecError(f"expected a simulate spec, got kind={resolved.spec.kind!r}")
        context = self.context_for(resolved.spec)
        profiles = self.resolve_profiles(resolved.spec)
        return context.workload_reports(resolved.config, resolved.fault_rates, profiles=profiles)

    # ------------------------------------------------------------------- run

    def _store_key(self, spec: RunSpec) -> str:
        """The digest a spec's result is stored under.

        This is the spec's own content digest unless the session pins a
        scale (which overrides what the spec says and therefore what gets
        simulated) — then the pinned scale is folded into the key so results
        produced under different pins can never alias.
        """
        if self._pinned_scale is None:
            return spec.digest
        mixed = f"{spec.digest}|pinned_scale={self._pinned_scale!r}"
        return hashlib.sha256(mixed.encode("utf-8")).hexdigest()

    def run(self, spec: SpecLike) -> RunResult:
        """Execute a spec of any kind and return its serializable result.

        With a store attached, a result already recorded for the spec's
        digest is returned as stored (original timing included) without
        simulating anything, and every freshly computed result — including
        each child of a sweep, as it completes — is persisted, so an
        interrupted sweep resumes from its last finished child.
        """
        if self._closed:
            raise RuntimeError("session is closed — worker pools and stores are released")
        spec = self.coerce(spec).validate()
        key = self._store_key(spec)
        if self._store is not None:
            stored = self._store.get(key)
            if stored is not None:
                return stored
        start = time.perf_counter()
        if spec.kind == "sweep":
            children = [self.run(child) for child in spec.expand()]
            rows = [row for child in children for row in child.rows]
            result = RunResult(
                spec=spec,
                rows=rows,
                children=children,
                provenance=build_provenance(spec, runs=len(children)),
            )
        elif spec.kind == "simulate":
            result = self._run_simulate(spec)
        else:
            result = self._run_stressmark(spec)
        result.timing["seconds"] = round(time.perf_counter() - start, 6)
        if self._store is not None:
            self._store.put(result, digest=key)
        return result

    def run_shard(self, spec: SpecLike, index: int, count: int) -> RunResult:
        """Run the ``index``-th of ``count`` shards of a sweep (1-based).

        Children are dealt round-robin (child ``i`` belongs to shard
        ``i % count + 1``) so stressmark and simulate runs spread evenly.
        The shard result carries only this shard's children and is *not*
        recorded under the sweep's digest — it is partial; the individual
        children are persisted as usual, so ``repro merge`` followed by a
        plain run of the full sweep assembles the complete result without
        re-simulating.
        """
        spec = self.coerce(spec).validate()
        if spec.kind != "sweep":
            raise SpecError(f"only sweeps can be sharded, got kind={spec.kind!r}")
        if count < 1 or not 1 <= index <= count:
            raise SpecError(f"shard must satisfy 1 <= i <= N, got {index}/{count}")
        children = spec.expand()
        mine = children[index - 1 :: count]
        start = time.perf_counter()
        results = [self.run(child) for child in mine]
        rows = [row for child in results for row in child.rows]
        result = RunResult(
            spec=spec,
            rows=rows,
            children=results,
            provenance=build_provenance(
                spec, runs=len(results), total_runs=len(children), shard=f"{index}/{count}"
            ),
        )
        result.timing["seconds"] = round(time.perf_counter() - start, 6)
        return result

    def _run_simulate(self, spec: RunSpec) -> RunResult:
        resolved = self.resolve(spec)
        profiles = self.resolve_profiles(spec)
        context = self.context_for(spec)
        before = context.backend.failure_counters()
        report_set = context.workload_reports(resolved.config, resolved.fault_rates, profiles=profiles)
        rows = [report_set.report(profile.name).as_row() for profile in profiles]
        provenance = self._provenance(resolved)
        self._attach_resilience(provenance, context, before)
        return RunResult(spec=spec, rows=rows, provenance=provenance)

    def _run_stressmark(self, spec: RunSpec) -> RunResult:
        resolved = self.resolve(spec)
        context = self.context_for(resolved.spec)
        before = context.backend.failure_counters()
        stressmark = self._stressmark_from_resolved(resolved)
        ga = stressmark.ga_result
        provenance = self._provenance(resolved)
        self._attach_resilience(provenance, context, before)
        return RunResult(
            spec=spec,
            rows=[stressmark.report.as_row()],
            knobs={str(key): value for key, value in stressmark.knob_table().items()},
            ser={group.value: stressmark.report.ser(group) for group in StructureGroup},
            ga={
                "best_fitness": float(stressmark.fitness),
                "evaluations": ga.evaluations,
                "cache_hits": ga.cache_hits,
                "cache_misses": ga.cache_misses,
                "evaluation_seconds": ga.evaluation_seconds,
                "quarantined": ga.quarantined,
                "cataclysm_generations": list(ga.cataclysm_generations),
                "average_fitness_per_generation": ga.average_fitness_trace(),
                "best_fitness_per_generation": ga.best_fitness_trace(),
            },
            provenance=provenance,
        )

    @staticmethod
    def _attach_resilience(provenance: dict, context: ExperimentContext, before: dict) -> None:
        """Record this run's fault-tolerance counter deltas in provenance.

        Backends without fault tolerance report nothing and the key is
        omitted.  Like ``timing``, the block is volatile — the store strips
        it when comparing results for conflicts.
        """
        after = context.backend.failure_counters()
        if not after:
            return
        provenance["resilience"] = {
            key: after.get(key, 0) - before.get(key, 0) for key in after
        }

    def _provenance(self, resolved: ResolvedRun) -> dict:
        return build_provenance(
            resolved.spec,
            config=resolved.config.name,
            fault_rates=resolved.fault_rates.name,
            fitness=resolved.fitness.name,
            scale=resolved.scale.name,
            jobs=resolved.jobs,
        )

    # -------------------------------------------------------------- lifetime

    def close(self) -> None:
        """Release every context (and worker pool) this session created.

        Idempotent: a second ``close`` (server shutdown racing a signal
        handler, ``with`` block around an explicit ``close()``) is a no-op
        instead of re-closing shared pools.  After closing, :meth:`run` and
        :meth:`context_for` raise rather than silently respawning workers.
        """
        if self._closed:
            return
        self._closed = True
        for context in self._owned:
            context.close()
        self._owned.clear()
        self._contexts.clear()
        for backend in self._backends.values():
            backend.close()
        self._backends.clear()
        if self._store is not None and self._owns_store:
            self._store.close()
        self._store = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _replace_fields(current, overrides: Mapping[str, object], datacls, label: str):
    """Apply a nested override mapping to a frozen sub-config dataclass."""
    from dataclasses import fields as dataclass_fields, replace

    known = {f.name for f in dataclass_fields(datacls)}
    for key in overrides:
        if key not in known:
            raise SpecError(f"unknown {label} override field {key!r} (known: {', '.join(sorted(known))})")
    return replace(current, **dict(overrides))


def _overrides_digest(overrides: Mapping[str, object]) -> str:
    canonical = json.dumps(overrides, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]
