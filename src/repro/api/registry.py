"""Named component registries for the declarative run API.

Every pluggable ingredient of an experiment — machine configurations,
circuit-level fault-rate models, workload suites, fitness objectives,
experiment scales and evaluation backends — is published in a
:class:`Registry` keyed by a short stable name.  A :class:`~repro.api.spec.
RunSpec` refers to components exclusively by those names, so a scenario is a
JSON document instead of a code change, and the CLI derives its ``choices``
lists from ``Registry.names()`` instead of string literals.

Registering a component::

    from repro.api import CONFIGS

    @CONFIGS.register("my_config")
    def my_config() -> MachineConfig:
        return baseline_config().derive(name="my_config", rob_entries=128)

Lookups of unknown names raise :class:`RegistryError` carrying the nearest
registered name as a suggestion.

The registry *machinery* lives in the dependency-free :mod:`repro.registry`
(re-exported here), so core subsystems — notably the vulnerability-model
structure registry in :mod:`repro.vuln.structures` — use the same classes
without importing the heavy ``repro.api`` package.  The repository's stock
components are installed by :mod:`repro.api.components` when ``repro.api``
is imported.
"""

from __future__ import annotations

from repro.registry import Registry, RegistryError, suggest

__all__ = [
    "Registry",
    "RegistryError",
    "suggest",
    "CONFIGS",
    "FAULT_RATES",
    "WORKLOAD_SUITES",
    "FITNESS_OBJECTIVES",
    "SCALES",
    "BACKENDS",
    "KERNEL_BACKENDS",
    "registries",
]


#: Machine configurations: ``name -> () -> MachineConfig``.
CONFIGS = Registry("machine config")

#: Circuit-level fault-rate models: ``name -> () -> FaultRateModel``.
FAULT_RATES = Registry("fault-rate model")

#: Workload suites: ``name -> () -> tuple[WorkloadProfile, ...]``.
WORKLOAD_SUITES = Registry("workload suite")

#: Fitness objectives: ``name -> (FaultRateModel) -> FitnessFunction``.
FITNESS_OBJECTIVES = Registry("fitness objective")

#: Experiment scales: ``name -> () -> ExperimentScale``.
SCALES = Registry("experiment scale")

#: Evaluation backends: ``name -> (jobs: int) -> EvaluationBackend``.
BACKENDS = Registry("evaluation backend")

# Kernel backends (how a simulation request becomes machine code) live with
# the microarchitectural core so repro.uarch stays importable on its own;
# re-exported here as the registry the spec/CLI layers consult.
from repro.uarch.kernel_backends import KERNEL_BACKENDS  # noqa: E402


def registries() -> dict[str, Registry]:
    """All component registries keyed by their public spec-field name."""
    # The structure registry lives with the vulnerability model; imported
    # here (not at module top) to keep repro.vuln importable on its own.
    from repro.vuln.structures import STRUCTURES

    return {
        "config": CONFIGS,
        "fault_rates": FAULT_RATES,
        "suite": WORKLOAD_SUITES,
        "fitness": FITNESS_OBJECTIVES,
        "scale": SCALES,
        "backend": BACKENDS,
        "kernel_backends": KERNEL_BACKENDS,
        "structures": STRUCTURES,
    }
