"""Declarative, JSON-serializable run requests and responses.

A :class:`RunSpec` is the single request format understood by
:class:`~repro.api.session.Session`: it names components from the registries
(:mod:`repro.api.registry`) and carries overrides, seeds and a worker count.
Three kinds exist:

``simulate``
    Simulate a set of workload proxies and report per-program AVF/SER rows.
``stressmark``
    Run the GA stressmark search for one (config, fault-rate) scenario.
``sweep``
    A batch of runs: either an explicit ``runs`` list, or a ``base`` spec
    expanded over the Cartesian product of ``axes`` (e.g. every fault-rate
    model x both machine configurations).

Specs are plain data: ``RunSpec.from_json`` / ``to_json`` round-trip, and
``spec.digest`` is a stable content hash recorded in every
:class:`RunResult`'s provenance, so any result JSON can be traced back to
the exact request that produced it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from pathlib import Path
from typing import Mapping, Optional

from repro.api import components as _components  # noqa: F401  (installs registries)
from repro.api.registry import (
    BACKENDS,
    CONFIGS,
    FAULT_RATES,
    FITNESS_OBJECTIVES,
    KERNEL_BACKENDS,
    SCALES,
    WORKLOAD_SUITES,
    suggest as _suggest,
)
from repro.experiments.runner import ExperimentScale
from repro.uarch.config import MachineConfig

#: The request kinds a Session understands.
RUN_KINDS = ("simulate", "stressmark", "sweep")

#: RunSpec fields a sweep's ``axes`` may vary.
SWEEPABLE_FIELDS = ("config", "fault_rates", "fitness", "scale", "seed", "suites", "workloads")


class SpecError(ValueError):
    """A spec document failed validation."""


def _field_names(datacls) -> list[str]:
    return [f.name for f in dataclass_fields(datacls)]


@dataclass(frozen=True)
class RunSpec:
    """One declarative run request (JSON-serializable, content-addressable).

    Component fields (``config``, ``fault_rates``, ``fitness``, ``scale``,
    ``backend``, ``suites``) hold registry *names*; ``config_overrides`` /
    ``scale_overrides`` are keyword overrides applied via
    ``MachineConfig.derive`` / ``ExperimentScale.derive``.  ``seed``
    overrides the GA seed of a stressmark search.  ``retries`` /
    ``task_timeout`` tune the resilient backend's
    :class:`~repro.parallel.resilience.RetryPolicy` (max attempts per item,
    per-item deadline in seconds); unset means the ``REPRO_RETRY_*``
    environment (or library defaults) applies.  ``kernel_backend`` pins how
    simulations execute (a :data:`~repro.uarch.kernel_backends.
    KERNEL_BACKENDS` name — ``batch``/``source``/``interpreted``/``vector``,
    the last needing the optional numpy dependency at run time); unset
    means the ``REPRO_KERNEL_BACKEND`` environment (or the ``batch``
    default) applies — all backends are bit-identical, so this never changes
    results or digests.  Sweep-only fields: ``base``, ``axes``, ``runs``.
    """

    kind: str
    name: str = ""
    config: str = "baseline"
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    fault_rates: str = "unit"
    suites: tuple[str, ...] = ()
    workloads: tuple[str, ...] = ()
    fitness: str = "balanced"
    scale: str = "quick"
    scale_overrides: Mapping[str, object] = field(default_factory=dict)
    jobs: Optional[int] = None
    backend: str = ""
    seed: Optional[int] = None
    retries: Optional[int] = None
    task_timeout: Optional[float] = None
    kernel_backend: str = ""
    base: Optional["RunSpec"] = None
    axes: Mapping[str, tuple] = field(default_factory=dict)
    runs: tuple["RunSpec", ...] = ()

    # ------------------------------------------------------------ validation

    def validate(self) -> "RunSpec":
        """Check shape and registry names; returns self so calls chain."""
        if self.kind not in RUN_KINDS:
            raise SpecError(
                f"unknown run kind {self.kind!r}{_suggest(self.kind, RUN_KINDS)} "
                f"(expected one of: {', '.join(RUN_KINDS)})"
            )
        self._check_component_names()
        self._check_overrides("config_overrides", self.config_overrides, _field_names(MachineConfig))
        self._check_overrides("scale_overrides", self.scale_overrides, _field_names(ExperimentScale))
        if self.jobs is not None and (not isinstance(self.jobs, int) or self.jobs < 1):
            raise SpecError(f"jobs must be a positive integer, got {self.jobs!r}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError(f"seed must be an integer, got {self.seed!r}")
        if self.retries is not None and (not isinstance(self.retries, int) or self.retries < 1):
            raise SpecError(f"retries must be a positive integer, got {self.retries!r}")
        if self.task_timeout is not None and (
            not isinstance(self.task_timeout, (int, float))
            or isinstance(self.task_timeout, bool)
            or self.task_timeout <= 0
        ):
            raise SpecError(f"task_timeout must be a positive number, got {self.task_timeout!r}")
        if self.kind == "sweep":
            self._validate_sweep()
        elif self.base is not None or self.axes or self.runs:
            raise SpecError(f"base/axes/runs are only valid for kind='sweep', not {self.kind!r}")
        return self

    def _check_component_names(self) -> None:
        CONFIGS.get(self.config)
        FAULT_RATES.get(self.fault_rates)
        FITNESS_OBJECTIVES.get(self.fitness)
        SCALES.get(self.scale)
        if self.backend:
            BACKENDS.get(self.backend)
        if self.kernel_backend:
            KERNEL_BACKENDS.get(self.kernel_backend)
        for suite in self.suites:
            WORKLOAD_SUITES.get(suite)

    @staticmethod
    def _check_overrides(label: str, overrides: Mapping[str, object], known: list[str]) -> None:
        if not isinstance(overrides, Mapping):
            raise SpecError(f"{label} must be a mapping, got {type(overrides).__name__}")
        for key in overrides:
            if key not in known:
                raise SpecError(f"unknown {label} field {key!r}{_suggest(key, known)}")

    def _validate_sweep(self) -> None:
        if not self.axes and not self.runs:
            raise SpecError("a sweep needs 'axes' (with a 'base' spec) and/or explicit 'runs'")
        if self.axes and self.base is None:
            raise SpecError("a sweep with 'axes' needs a 'base' spec to expand")
        # Component fields live on the children; a sweep-level value would be
        # silently ignored, so reject anything off its default (jobs, backend,
        # kernel_backend and the retry knobs are the exceptions — expand()
        # inherits them into children).
        defaults = RunSpec(kind="sweep")
        for leaf_field in ("config", "config_overrides", "fault_rates", "suites", "workloads",
                           "fitness", "scale", "scale_overrides", "seed"):
            if getattr(self, leaf_field) != getattr(defaults, leaf_field):
                raise SpecError(
                    f"{leaf_field!r} is ignored on a sweep — set it on the 'base' spec "
                    f"or the entries of 'runs' (or sweep over it via 'axes')"
                )
        for axis, values in self.axes.items():
            if axis not in SWEEPABLE_FIELDS:
                raise SpecError(
                    f"cannot sweep over field {axis!r}{_suggest(axis, SWEEPABLE_FIELDS)} "
                    f"(sweepable: {', '.join(SWEEPABLE_FIELDS)})"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise SpecError(f"sweep axis {axis!r} must be a non-empty list of values")
        for child in self.expand():
            if child.kind == "sweep":
                raise SpecError("sweeps cannot nest: every expanded run must be simulate/stressmark")
            child.validate()

    # ------------------------------------------------------------- expansion

    def expand(self) -> list["RunSpec"]:
        """Children of a sweep (axes product first, then explicit runs).

        Sweep-level ``jobs`` / ``backend`` / ``retries`` / ``task_timeout``
        are inherited by children that do not set their own.
        """
        if self.kind != "sweep":
            return [self]
        children: list[RunSpec] = []
        if self.axes and self.base is not None:
            keys = list(self.axes)
            for combo in itertools.product(*(tuple(self.axes[key]) for key in keys)):
                overrides: dict[str, object] = {}
                for key, value in zip(keys, combo):
                    overrides[key] = tuple(value) if key in ("suites", "workloads") else value
                label = ",".join(f"{key}={value}" for key, value in zip(keys, combo))
                stem = self.base.name or self.name or "sweep"
                children.append(replace(self.base, name=f"{stem}[{label}]", **overrides))
        children.extend(self.runs)
        return [self._inherit(child) for child in children]

    def _inherit(self, child: "RunSpec") -> "RunSpec":
        overrides: dict[str, object] = {}
        if child.jobs is None and self.jobs is not None:
            overrides["jobs"] = self.jobs
        if not child.backend and self.backend:
            overrides["backend"] = self.backend
        if child.retries is None and self.retries is not None:
            overrides["retries"] = self.retries
        if child.task_timeout is None and self.task_timeout is not None:
            overrides["task_timeout"] = self.task_timeout
        if not child.kernel_backend and self.kernel_backend:
            overrides["kernel_backend"] = self.kernel_backend
        return replace(child, **overrides) if overrides else child

    def replace(self, **overrides: object) -> "RunSpec":
        """A copy with fields overridden (``dataclasses.replace``)."""
        return replace(self, **overrides)

    # ---------------------------------------------------------------- (de)ser

    def to_json_dict(self) -> dict:
        """Full, canonically ordered JSON form (the digest input)."""
        data: dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "config": self.config,
            "config_overrides": _jsonify(self.config_overrides),
            "fault_rates": self.fault_rates,
            "suites": list(self.suites),
            "workloads": list(self.workloads),
            "fitness": self.fitness,
            "scale": self.scale,
            "scale_overrides": _jsonify(self.scale_overrides),
            "jobs": self.jobs,
            "backend": self.backend,
            "seed": self.seed,
        }
        # Resilience/kernel knobs are emitted only when set: digests of specs
        # that never mention them are unchanged, so results stored before
        # these fields existed still match their specs.
        if self.retries is not None:
            data["retries"] = self.retries
        if self.task_timeout is not None:
            data["task_timeout"] = self.task_timeout
        if self.kernel_backend:
            data["kernel_backend"] = self.kernel_backend
        if self.kind == "sweep":
            data["base"] = self.base.to_json_dict() if self.base is not None else None
            data["axes"] = {key: list(values) for key, values in self.axes.items()}
            data["runs"] = [run.to_json_dict() for run in self.runs]
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "RunSpec":
        """Build a spec from a (possibly sparse) JSON mapping."""
        if not isinstance(data, Mapping):
            raise SpecError(f"a spec must be a JSON object, got {type(data).__name__}")
        known = _field_names(cls)
        kwargs: dict[str, object] = {}
        for key, value in data.items():
            if key not in known:
                raise SpecError(f"unknown spec field {key!r}{_suggest(key, known)}")
            kwargs[key] = value
        if "kind" not in kwargs:
            raise SpecError(f"a spec needs a 'kind' field (one of: {', '.join(RUN_KINDS)})")
        for key in ("suites", "workloads"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])  # type: ignore[arg-type]
        if kwargs.get("base") is not None and not isinstance(kwargs["base"], RunSpec):
            kwargs["base"] = cls.from_json_dict(kwargs["base"])  # type: ignore[arg-type]
        if "axes" in kwargs:
            kwargs["axes"] = {key: tuple(values) for key, values in dict(kwargs["axes"]).items()}  # type: ignore[union-attr]
        if "runs" in kwargs:
            kwargs["runs"] = tuple(
                run if isinstance(run, RunSpec) else cls.from_json_dict(run)
                for run in kwargs["runs"]  # type: ignore[union-attr]
            )
        return cls(**kwargs)  # type: ignore[arg-type]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_json_dict(data)

    @classmethod
    def load(cls, path: str | Path) -> "RunSpec":
        """Load and validate a spec from a JSON file."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from exc
        return cls.from_json(text).validate()

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    # ---------------------------------------------------------------- digest

    @property
    def digest(self) -> str:
        """Stable sha256 content digest of the canonical JSON form."""
        canonical = json.dumps(self.to_json_dict(), separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Human-readable identifier used in printed output."""
        return self.name or f"{self.kind}:{self.config}/{self.fault_rates}"


def _jsonify(mapping: Mapping[str, object]) -> dict:
    """Deep-copy a (possibly nested) override mapping into plain dicts."""
    out: dict[str, object] = {}
    for key, value in mapping.items():
        out[key] = _jsonify(value) if isinstance(value, Mapping) else value
    return out


def _repro_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


@dataclass
class RunResult:
    """The JSON-serializable response to one :class:`RunSpec`.

    ``rows`` are flat table rows (one per simulated program); stressmark
    runs additionally carry the winning ``knobs`` table, per-group ``ser``
    and GA statistics (``ga``).  Sweeps hold per-child results in
    ``children`` with ``rows`` concatenated for convenience.  ``provenance``
    records the spec digest, repro version and resolved component names so a
    reloaded result is attributable without the original process.
    """

    spec: RunSpec
    rows: list[dict] = field(default_factory=list)
    knobs: Optional[dict] = None
    ser: Optional[dict] = None
    ga: Optional[dict] = None
    timing: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    children: list["RunResult"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def spec_digest(self) -> str:
        return str(self.provenance.get("spec_digest", self.spec.digest))

    # ---------------------------------------------------------------- (de)ser

    def to_json_dict(self) -> dict:
        data: dict[str, object] = {
            "spec": self.spec.to_json_dict(),
            "rows": self.rows,
            "knobs": self.knobs,
            "ser": self.ser,
            "ga": self.ga,
            "timing": self.timing,
            "provenance": self.provenance,
        }
        if self.children:
            data["children"] = [child.to_json_dict() for child in self.children]
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "RunResult":
        return cls(
            spec=RunSpec.from_json_dict(data["spec"]),  # type: ignore[arg-type]
            rows=list(data.get("rows") or []),  # type: ignore[arg-type]
            knobs=data.get("knobs"),  # type: ignore[arg-type]
            ser=data.get("ser"),  # type: ignore[arg-type]
            ga=data.get("ga"),  # type: ignore[arg-type]
            timing=dict(data.get("timing") or {}),  # type: ignore[arg-type]
            provenance=dict(data.get("provenance") or {}),  # type: ignore[arg-type]
            children=[cls.from_json_dict(child) for child in data.get("children") or []],  # type: ignore[union-attr]
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_json_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        return cls.from_json(Path(path).read_text())


def build_provenance(spec: RunSpec, **resolved: object) -> dict:
    """Standard provenance block shared by every result the Session emits."""
    return {
        "spec_digest": spec.digest,
        "repro_version": _repro_version(),
        "kind": spec.kind,
        **resolved,
    }
