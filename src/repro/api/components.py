"""Stock component registrations for the run API.

Importing this module (which ``repro.api`` does eagerly) installs every
component the repository ships into the registries of
:mod:`repro.api.registry`:

* machine configs — the paper's ``baseline`` (Table I) and ``config_a``
  (Table II), plus ``extended`` (baseline + the flag-gated store buffer and
  L2 TLB structures; see ARCHITECTURE.md),
* fault-rate models — ``unit``, ``rhc``, ``edr`` (Figure 8a),
* workload suites — ``spec_int``, ``spec_fp``, ``mibench`` and the combined
  ``all`` (the 33 proxies),
* fitness objectives — ``balanced``, ``overall``, ``core_only``,
* experiment scales — ``quick``, ``default``, ``paper``,
* evaluation backends — ``serial``, ``process``, ``resilient``.

Registration lives here rather than on the defining modules so the core
packages stay import-cycle-free; user code extends the same registries with
the ``Registry.register`` decorator.
"""

from __future__ import annotations

from typing import Optional

from repro.api.registry import (
    BACKENDS,
    CONFIGS,
    FAULT_RATES,
    FITNESS_OBJECTIVES,
    SCALES,
    WORKLOAD_SUITES,
)
from repro.experiments.runner import ExperimentScale
from repro.parallel.backends import ProcessPoolBackend, SerialBackend, resolve_jobs
from repro.parallel.resilience import FailurePolicy, ResilientPoolBackend
from repro.stressmark.fitness import FitnessFunction
from repro.uarch.config import baseline_config, config_a, extended_config
from repro.uarch.faultrates import edr_fault_rates, rhc_fault_rates, unit_fault_rates
from repro.workloads.suite import (
    all_profiles,
    mibench_profiles,
    spec_fp_profiles,
    spec_int_profiles,
)

_installed = False


def install_default_components() -> None:
    """Populate the registries with the repository's stock components (idempotent)."""
    global _installed
    if _installed:
        return
    _installed = True

    CONFIGS.register("baseline", baseline_config)
    CONFIGS.register("config_a", config_a)
    CONFIGS.register("extended", extended_config)

    FAULT_RATES.register("unit", unit_fault_rates)
    FAULT_RATES.register("rhc", rhc_fault_rates)
    FAULT_RATES.register("edr", edr_fault_rates)

    WORKLOAD_SUITES.register("spec_int", spec_int_profiles)
    WORKLOAD_SUITES.register("spec_fp", spec_fp_profiles)
    WORKLOAD_SUITES.register("mibench", mibench_profiles)
    WORKLOAD_SUITES.register("all", all_profiles)

    FITNESS_OBJECTIVES.register("balanced", FitnessFunction.balanced)
    FITNESS_OBJECTIVES.register("overall", FitnessFunction.overall)
    FITNESS_OBJECTIVES.register("core_only", FitnessFunction.core_only)

    SCALES.register("quick", ExperimentScale.quick)
    SCALES.register("default", ExperimentScale.default)
    SCALES.register("paper", ExperimentScale.paper)

    BACKENDS.register("serial", _serial_backend)
    BACKENDS.register("process", _process_backend)
    BACKENDS.register("resilient", _resilient_backend)


def _serial_backend(jobs: Optional[int] = None) -> SerialBackend:
    """In-process evaluation regardless of the requested worker count."""
    return SerialBackend()


def _process_backend(jobs: Optional[int] = None) -> ProcessPoolBackend:
    """Process-pool evaluation with ``jobs`` workers (``REPRO_JOBS`` fallback)."""
    return ProcessPoolBackend(resolve_jobs(jobs))


def _resilient_backend(jobs: Optional[int] = None) -> ResilientPoolBackend:
    """Fault-tolerant pool with ``jobs`` workers; retry policy from ``REPRO_RETRY_*``."""
    return ResilientPoolBackend(resolve_jobs(jobs), policy=FailurePolicy.from_env())


install_default_components()
