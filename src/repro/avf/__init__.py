"""AVF/SER computation: per-structure AVF, grouped SER in units/bit, reports."""

from repro.avf.analysis import (
    StructureGroup,
    group_structures,
    instantaneous_worst_case_bound,
    normalized_group_ser,
    sum_of_highest_per_structure_ser,
)
from repro.avf.hvf import group_hvf, hvf_by_structure, hvf_gap, structure_hvf
from repro.avf.report import SerReport, build_report

__all__ = [
    "group_hvf",
    "hvf_by_structure",
    "hvf_gap",
    "structure_hvf",
    "StructureGroup",
    "group_structures",
    "instantaneous_worst_case_bound",
    "normalized_group_ser",
    "sum_of_highest_per_structure_ser",
    "SerReport",
    "build_report",
]
