"""SER computation on top of per-structure ACE accounts.

The paper reports SER normalised to *units/bit* per structure group:

    SER_group = sum_s (AVF_s * bits_s * rate_s)  /  sum_s bits_s

where ``rate_s`` is the circuit-level fault rate of structure ``s`` in
units/bit.  With the unit fault-rate model this reduces to the bit-weighted
average AVF of the group, which is what Figures 3, 4, 7 and 9 plot.

Group membership is registry-driven: every structure descriptor in
:data:`repro.vuln.structures.STRUCTURES` declares its SER group, so a newly
registered structure (e.g. the flag-gated store buffer) joins group SER,
fitness objectives and the worst-case estimators without touching this
module.  Aggregations iterate a result's accounts in their insertion
(registry) order, keeping float summation order deterministic across
processes and machines.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Mapping, Sequence

from repro.uarch.config import MachineConfig
from repro.uarch.faultrates import FaultRateModel
from repro.uarch.pipeline import SimulationResult
from repro.uarch.structures import StructureName
from repro.vuln.structures import structures_in_group


class StructureGroup(Enum):
    """Structure groups used throughout the paper's figures."""

    QS = "qs"
    QS_RF = "qs_rf"
    CORE = "core"
    DL1_DTLB = "dl1_dtlb"
    L2 = "l2"


def group_members(group: StructureGroup) -> tuple[StructureName, ...]:
    """The structures of ``group``, in registry (registration) order.

    ``QS``/``DL1_DTLB``/``L2`` collect the descriptors declaring those group
    keys; ``QS_RF`` and ``CORE`` are the queueing structures plus the
    register-file group.
    """
    if group is StructureGroup.QS:
        return structures_in_group("qs")
    if group is StructureGroup.DL1_DTLB:
        return structures_in_group("dl1_dtlb")
    if group is StructureGroup.L2:
        return structures_in_group("l2")
    # QS_RF and CORE: queueing structures + register file.
    return structures_in_group("qs") + structures_in_group("rf")


def group_structures(group: StructureGroup) -> frozenset[StructureName]:
    """Return the structures belonging to ``group``."""
    return frozenset(group_members(group))


def normalized_group_ser(
    result: SimulationResult,
    group: StructureGroup,
    fault_rates: FaultRateModel,
) -> float:
    """SER of a structure group in units/bit for one simulation result."""
    members = group_structures(group)
    total_bits = 0.0
    weighted = 0.0
    for name, accumulator in result.accumulators.items():
        if name not in members:
            continue
        bits = float(accumulator.total_bits)
        total_bits += bits
        weighted += result.avf(name) * bits * fault_rates.rate(name)
    if total_bits == 0.0:
        return 0.0
    return weighted / total_bits


def overall_core_ser(result: SimulationResult, fault_rates: FaultRateModel) -> float:
    """Core (queueing structures + register file) SER in units/bit."""
    return normalized_group_ser(result, StructureGroup.CORE, fault_rates)


def sum_of_highest_per_structure_ser(
    results: Iterable[SimulationResult],
    fault_rates: FaultRateModel,
    structures: Sequence[StructureName] | None = None,
) -> float:
    """The paper's "sum of highest per-structure SER" estimate (Table III).

    For each structure, take the highest AVF observed across the workload
    suite, multiply by the structure's bits and fault rate, sum across
    structures, and normalise by the total bits — i.e. pretend one program
    could maximise every structure at once.  The paper shows this estimator is
    both optimistic and fundamentally unsound; we reproduce it for Table III.

    Every result must come from the same machine geometry: mixing results
    whose structures have different bit counts would silently weight one
    config's AVF by another config's bits, so heterogeneous bit counts raise
    ``ValueError``.
    """
    results = list(results)
    if not results:
        return 0.0
    if structures is None:
        structures = sorted(group_structures(StructureGroup.CORE), key=lambda s: s.value)
    total_bits = 0.0
    weighted = 0.0
    for name in structures:
        accumulators = [r.accumulators[name] for r in results if name in r.accumulators]
        if not accumulators:
            continue
        bit_counts = sorted({int(a.total_bits) for a in accumulators})
        if len(bit_counts) > 1:
            raise ValueError(
                f"heterogeneous bit counts for structure {name.value!r}: {bit_counts}; "
                f"sum_of_highest_per_structure_ser requires results from a single "
                f"machine geometry"
            )
        bits = float(bit_counts[0])
        highest_avf = max(r.avf(name) for r in results if name in r.accumulators)
        total_bits += bits
        weighted += highest_avf * bits * fault_rates.rate(name)
    if total_bits == 0.0:
        return 0.0
    return weighted / total_bits


def raw_circuit_ser(config: MachineConfig, fault_rates: FaultRateModel) -> float:
    """Worst case assuming 100 % AVF everywhere (the pessimistic estimate).

    The paper quotes 1 unit/bit for the baseline, 0.59 for RHC and 0.39 for
    EDR: the bit-weighted mean of the raw circuit fault rates over the core.
    """
    from repro.uarch.structures import core_structure_accumulators

    accumulators = core_structure_accumulators(config)
    total_bits = float(sum(a.total_bits for a in accumulators.values()))
    if total_bits == 0.0:
        return 0.0
    weighted = sum(a.total_bits * fault_rates.rate(name) for name, a in accumulators.items())
    return weighted / total_bits


def instantaneous_worst_case_bound(
    config: MachineConfig,
    fault_rates: FaultRateModel | None = None,
) -> float:
    """Back-of-the-envelope instantaneous worst-case queue SER (Section VI).

    In the shadow of a blocking L2 miss the ROB is full and its entries are
    distributed between the LQ, SQ and IQ (the FUs are idle).  The paper
    computes 0.899 units/bit for the baseline this way.  We reproduce the
    calculation: LQ and SQ filled first (most bits per entry), the remaining
    ROB entries sit in the IQ, FU AVF is zero.  The LQ *data* array is
    counted at half occupancy: in the miss shadow, loads that hit the DL1
    already hold their data while loads behind the blocking miss only hold
    ACE tags (Section IV-A.1), and the instantaneous bound splits the
    difference.  With that split the baseline bound evaluates to ~0.90,
    matching the paper's 0.899.
    """
    from repro.uarch.faultrates import unit_fault_rates
    from repro.uarch.structures import core_structure_accumulators

    if fault_rates is None:
        fault_rates = unit_fault_rates()
    accumulators = core_structure_accumulators(config)

    rob_entries = config.rob_entries
    lq_filled = min(config.lq_entries, rob_entries)
    remaining = rob_entries - lq_filled
    sq_filled = min(config.sq_entries, remaining)
    remaining -= sq_filled
    iq_filled = min(config.iq_entries, remaining)

    occupancy = {
        StructureName.ROB: 1.0,
        StructureName.LQ_TAG: lq_filled / config.lq_entries,
        StructureName.LQ_DATA: 0.5 * lq_filled / config.lq_entries,
        StructureName.SQ_TAG: sq_filled / config.sq_entries,
        StructureName.SQ_DATA: sq_filled / config.sq_entries,
        StructureName.IQ: iq_filled / config.iq_entries,
        StructureName.FU: 0.0,
    }

    members = group_structures(StructureGroup.QS)
    total_bits = 0.0
    weighted = 0.0
    for name, accumulator in accumulators.items():
        if name not in members:
            continue
        bits = float(accumulator.total_bits)
        total_bits += bits
        weighted += occupancy.get(name, 0.0) * bits * fault_rates.rate(name)
    if total_bits == 0.0:
        return 0.0
    return weighted / total_bits
