"""Golden-file support for the ``avf-smoke`` regression gate.

``make avf-smoke`` reruns the small-scale workload simulations, dumps every
per-structure AVF (full ``repr`` precision) plus the group SERs to canonical
JSON, and **byte-compares** the text against the checked-in golden file
(``benchmarks/golden_avf.json``).  Any numeric drift in the accounting — a
reordered float sum, a changed lifetime rule, an accidental event — fails the
gate.  The golden is regenerated only via an explicit ``make avf-golden``.

The payload covers the stock structure set on the ``baseline`` config and the
flag-gated extensions (store buffer, L2 TLB) on the ``extended`` config, so
both the paper's accounting and the pluggable additions are pinned.

A byte-stable golden is only possible because group-SER summation follows
the structure registry's deterministic order; the pre-ledger code summed
over id-hashed frozensets, whose order (and therefore the last ulp of every
group SER) varied from process to process.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Default golden location (resolved relative to the repository root).
GOLDEN_FILE = Path("benchmarks") / "golden_avf.json"

#: Workload suite and scale the gate runs (small and deterministic).
SMOKE_SUITE = "mibench"
SMOKE_SCALE = "quick"
SMOKE_CONFIGS = ("baseline", "extended")


def avf_smoke_payload() -> dict:
    """Simulate the smoke matrix and return the canonical payload dict."""
    from repro.api.session import Session
    from repro.api.spec import RunSpec
    from repro.avf.analysis import StructureGroup

    payload: dict[str, object] = {
        "suite": SMOKE_SUITE,
        "scale": SMOKE_SCALE,
        "configs": list(SMOKE_CONFIGS),
    }
    with Session(scale=SMOKE_SCALE, jobs=1) as session:
        for config in SMOKE_CONFIGS:
            spec = RunSpec(
                kind="simulate",
                name=f"avf_smoke/{config}",
                config=config,
                suites=(SMOKE_SUITE,),
            )
            reports = session.workload_report_set(spec)
            for name in sorted(reports.reports):
                report = reports.report(name)
                payload[f"{config}/{name}"] = {
                    "cycles": report.total_cycles,
                    "instructions": report.committed_instructions,
                    "avf": {s.value: repr(v) for s, v in report.structure_avf.items()},
                    "ser": {g.value: repr(report.ser(g)) for g in StructureGroup},
                }
    return payload


def render_payload(payload: dict) -> str:
    """Canonical JSON text of a payload (the unit of byte-comparison)."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def golden_path(base: "Path | str | None" = None) -> Path:
    """The golden file location, anchored at the repository root."""
    if base is not None:
        return Path(base)
    # src/repro/avf/goldens.py -> repository root is three levels above src/.
    root = Path(__file__).resolve().parents[3]
    return root / GOLDEN_FILE


def write_golden(path: "Path | str | None" = None) -> Path:
    """Regenerate the golden file (``make avf-golden``); returns its path."""
    destination = golden_path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(render_payload(avf_smoke_payload()))
    print(f"AVF golden written to {destination}")
    return destination
