"""Structured AVF/SER reports for one simulated program."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.avf.analysis import StructureGroup, normalized_group_ser
from repro.uarch.faultrates import FaultRateModel, unit_fault_rates
from repro.uarch.pipeline import SimulationResult
from repro.uarch.structures import StructureName


@dataclass(frozen=True)
class SerReport:
    """AVF and SER summary of one program on one configuration.

    ``group_ser`` holds normalised SER in units/bit for the groups the paper
    plots (QS, QS+RF, DL1+DTLB, L2); ``structure_avf`` holds per-structure AVF
    as plotted in Figure 6 / 8b / 9a.
    """

    program_name: str
    config_name: str
    fault_rate_name: str
    total_cycles: int
    committed_instructions: int
    ipc: float
    structure_avf: Mapping[StructureName, float]
    structure_occupancy: Mapping[StructureName, float]
    group_ser: Mapping[StructureGroup, float]
    stats: Mapping[str, float] = field(default_factory=dict)

    def avf(self, structure: StructureName) -> float:
        """AVF of a single structure."""
        return self.structure_avf[structure]

    def ser(self, group: StructureGroup) -> float:
        """Normalised SER (units/bit) of a structure group."""
        return self.group_ser[group]

    @property
    def core_ser(self) -> float:
        """Core SER (queueing structures + register file)."""
        return self.group_ser[StructureGroup.CORE]

    def as_row(self) -> dict[str, object]:
        """Flatten the report into a table row (used by experiment harnesses)."""
        row: dict[str, object] = {
            "program": self.program_name,
            "config": self.config_name,
            "fault_rates": self.fault_rate_name,
            "cycles": self.total_cycles,
            "instructions": self.committed_instructions,
            "ipc": round(self.ipc, 4),
        }
        for group, value in self.group_ser.items():
            row[f"ser_{group.value}"] = round(value, 4)
        for structure, value in self.structure_avf.items():
            row[f"avf_{structure.value}"] = round(value, 4)
        return row


def build_report(
    result: SimulationResult,
    fault_rates: FaultRateModel | None = None,
) -> SerReport:
    """Build a :class:`SerReport` from a simulation result."""
    if fault_rates is None:
        fault_rates = unit_fault_rates()
    structure_avf = {name: result.avf(name) for name in result.accumulators}
    structure_occupancy = {name: result.occupancy(name) for name in result.accumulators}
    group_ser = {
        group: normalized_group_ser(result, group, fault_rates)
        for group in StructureGroup
    }
    return SerReport(
        program_name=result.program_name,
        config_name=result.config.name,
        fault_rate_name=fault_rates.name,
        total_cycles=result.stats.total_cycles,
        committed_instructions=result.stats.committed_instructions,
        ipc=result.stats.ipc,
        structure_avf=structure_avf,
        structure_occupancy=structure_occupancy,
        group_ser=group_ser,
        stats={
            "branch_misprediction_rate": result.stats.branch_misprediction_rate,
            "dl1_miss_rate": result.stats.dl1_miss_rate,
            "l2_miss_rate": result.stats.l2_miss_rate,
            "dtlb_miss_rate": result.stats.dtlb_miss_rate,
        },
    )
