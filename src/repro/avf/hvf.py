"""Hardware Vulnerability Factor (HVF) analysis.

Sridharan and Kaeli (ISCA 2010), discussed in the paper's related work,
bound a structure's AVF by its *Hardware Vulnerability Factor*: the fraction
of hardware bit-cycles that hold any program state at all, regardless of
ACE-ness.  HVF is an occupancy-derived upper bound on AVF — it can be
measured without knowing which bits are ACE, but, as the paper argues, it
still depends on the workload and therefore cannot by itself bound the
*observable worst case*.  This module exposes the HVF view on our simulation
results so the two methodologies can be compared directly (see the
``hvf_gap`` helper and `benchmarks/test_ablation_codegen.py`).
"""

from __future__ import annotations

from typing import Mapping

from repro.avf.analysis import StructureGroup, group_structures
from repro.uarch.pipeline import SimulationResult
from repro.uarch.structures import StructureName


def structure_hvf(result: SimulationResult, structure: StructureName) -> float:
    """HVF of one structure: its average occupancy over the run.

    For storage structures (caches, DTLB) occupancy accounting is not
    meaningful in our model, so the AVF itself is returned — for those
    structures the lifetime analysis already *is* the occupancy of live data.
    """
    if structure.is_core:
        return result.occupancy(structure)
    return result.avf(structure)


def hvf_by_structure(result: SimulationResult) -> dict[StructureName, float]:
    """HVF of every tracked structure."""
    return {name: structure_hvf(result, name) for name in result.accumulators}


def group_hvf(result: SimulationResult, group: StructureGroup) -> float:
    """Bit-weighted HVF of a structure group (same normalisation as SER)."""
    members = group_structures(group)
    total_bits = 0.0
    weighted = 0.0
    for name, accumulator in result.accumulators.items():
        if name not in members:
            continue
        bits = float(accumulator.total_bits)
        total_bits += bits
        weighted += structure_hvf(result, name) * bits
    if total_bits == 0.0:
        return 0.0
    return weighted / total_bits


def hvf_gap(result: SimulationResult) -> Mapping[StructureName, float]:
    """Per-structure gap between the HVF upper bound and the measured AVF.

    The gap is the un-ACE fraction of occupied state (wrong-path, dead,
    narrow-width and not-yet-live data); it is zero only when every occupied
    bit is ACE, which is exactly what the stressmark's 100 %-ACE code
    generator drives toward.
    """
    gaps: dict[StructureName, float] = {}
    for name in result.accumulators:
        gaps[name] = max(0.0, structure_hvf(result, name) - result.avf(name))
    return gaps
