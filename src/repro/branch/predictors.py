"""Hybrid branch predictor modelled on the Alpha 21264 tournament predictor.

The predictor combines a global-history predictor (4K 2-bit counters indexed
by the global history register), a two-level local predictor (1K 10-bit local
histories feeding 1K 3-bit counters, simplified to 2-bit counters here) and a
4K-entry choice predictor that learns which component to trust per branch.

Branch mispredictions matter to AVF because wrong-path instructions are
un-ACE and the pipeline flush empties the queueing structures (Section IV-A.4
of the paper), so the predictor's accuracy on each workload directly shapes
per-structure occupancy.

The predictor itself is deliberately *not* a registered vulnerable structure
(:mod:`repro.vuln.structures`): every bit of predictor state is un-ACE by
construction — a particle strike in a counter or history table can cause at
most a misprediction, never wrong architectural state — so it would
contribute identically-zero AVF through the
:class:`~repro.vuln.ledger.VulnerabilityLedger`.  :meth:`HybridPredictor.
storage_bits` exposes the raw state size for anyone modelling
performance-only vulnerability; to actually track a predictor variant whose
state can corrupt architectural state (e.g. a value predictor), register a
descriptor and emit ledger events per the ARCHITECTURE.md recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SaturatingCounter:
    """An n-bit saturating counter used throughout the predictor tables."""

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        if bits <= 0:
            raise ValueError("counter width must be positive")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        self.value = initial if initial is not None else (self.maximum + 1) // 2

    def increment(self) -> None:
        if self.value < self.maximum:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def update(self, taken: bool) -> None:
        if taken:
            self.increment()
        else:
            self.decrement()

    @property
    def predict_taken(self) -> bool:
        return self.value > self.maximum // 2


@dataclass
class PredictorStats:
    """Aggregate prediction statistics."""

    predictions: int = 0
    mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BimodalPredictor:
    """Global-history (gshare-style) component: counters indexed by history ^ pc."""

    def __init__(self, entries: int = 4096, history_bits: int = 12) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.history_bits = history_bits
        self.history = 0
        self.table = [SaturatingCounter(2) for _ in range(entries)]

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)].predict_taken

    def update(self, pc: int, taken: bool) -> None:
        self.table[self._index(pc)].update(taken)
        mask = (1 << self.history_bits) - 1
        self.history = ((self.history << 1) | int(taken)) & mask


class LocalHistoryPredictor:
    """Two-level local predictor: per-branch history selects a counter."""

    def __init__(self, history_entries: int = 1024, history_bits: int = 10) -> None:
        if history_entries <= 0 or history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a positive power of two")
        self.history_entries = history_entries
        self.history_bits = history_bits
        self.histories = [0] * history_entries
        self.counters = [SaturatingCounter(2) for _ in range(1 << history_bits)]

    def _history_index(self, pc: int) -> int:
        return pc & (self.history_entries - 1)

    def _counter_index(self, pc: int) -> int:
        return self.histories[self._history_index(pc)] & ((1 << self.history_bits) - 1)

    def predict(self, pc: int) -> bool:
        return self.counters[self._counter_index(pc)].predict_taken

    def update(self, pc: int, taken: bool) -> None:
        self.counters[self._counter_index(pc)].update(taken)
        history_index = self._history_index(pc)
        mask = (1 << self.history_bits) - 1
        self.histories[history_index] = ((self.histories[history_index] << 1) | int(taken)) & mask


class HybridPredictor:
    """Tournament predictor: choice table arbitrates global vs local components."""

    def __init__(
        self,
        global_entries: int = 4096,
        local_history_entries: int = 1024,
        choice_entries: int = 4096,
    ) -> None:
        self.global_component = BimodalPredictor(entries=global_entries)
        self.local_component = LocalHistoryPredictor(history_entries=local_history_entries)
        if choice_entries <= 0 or choice_entries & (choice_entries - 1):
            raise ValueError("choice_entries must be a positive power of two")
        self.choice = [SaturatingCounter(2) for _ in range(choice_entries)]
        self.choice_entries = choice_entries
        self.stats = PredictorStats()

    def _choice_index(self, pc: int) -> int:
        return pc & (self.choice_entries - 1)

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        use_global = self.choice[self._choice_index(pc)].predict_taken
        if use_global:
            return self.global_component.predict(pc)
        return self.local_component.predict(pc)

    def update(self, pc: int, taken: bool) -> bool:
        """Record the outcome; returns True when the prediction was wrong."""
        global_prediction = self.global_component.predict(pc)
        local_prediction = self.local_component.predict(pc)
        use_global = self.choice[self._choice_index(pc)].predict_taken
        prediction = global_prediction if use_global else local_prediction

        # The choice counter trains toward the component that was correct when
        # the two components disagree (standard tournament update rule).
        if global_prediction != local_prediction:
            self.choice[self._choice_index(pc)].update(global_prediction == taken)

        self.global_component.update(pc, taken)
        self.local_component.update(pc, taken)

        self.stats.predictions += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.stats.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.stats.misprediction_rate

    def storage_bits(self) -> int:
        """Total predictor state bits (un-ACE; see the module docstring)."""
        global_bits = self.global_component.entries * 2
        local_bits = (
            self.local_component.history_entries * self.local_component.history_bits
            + len(self.local_component.counters) * 2
        )
        return global_bits + local_bits + self.choice_entries * 2
