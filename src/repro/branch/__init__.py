"""Branch prediction substrate (hybrid predictor of the Alpha 21264)."""

from repro.branch.predictors import (
    BimodalPredictor,
    HybridPredictor,
    LocalHistoryPredictor,
    SaturatingCounter,
)

__all__ = [
    "BimodalPredictor",
    "HybridPredictor",
    "LocalHistoryPredictor",
    "SaturatingCounter",
]
