"""End-to-end stressmark generation: GA + code generator + AVF simulator.

This module implements the closed loop of Figure 2: the GA proposes knob
settings, the code generator turns them into candidate programs, the AVF
simulator measures their SER, the fitness function scores them, and the best
candidate after the configured number of generations is the AVF stressmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.avf.report import SerReport, build_report
from repro.ga.engine import GAParameters, GAResult, GeneticAlgorithm
from repro.ga.individual import Individual
from repro.isa.program import Program
from repro.parallel.backends import EvaluationBackend, create_backend, resolve_jobs
from repro.parallel.cache import FitnessCache, evaluation_context_digest
from repro.stressmark.codegen import CodeGenerator
from repro.stressmark.fitness import FitnessFunction
from repro.stressmark.knobs import KnobSpace, StressmarkKnobs
from repro.uarch.config import MachineConfig
from repro.uarch.faultrates import FaultRateModel, unit_fault_rates
from repro.uarch.pipeline import OutOfOrderCore, SimulationResult


@dataclass
class StressmarkResult:
    """Outcome of a stressmark generation run."""

    config: MachineConfig
    fault_rates: FaultRateModel
    knobs: StressmarkKnobs
    program: Program
    report: SerReport
    fitness: float
    ga_result: GAResult

    @property
    def convergence_trace(self) -> list[float]:
        """Average fitness per generation (the data of Figure 5b)."""
        return self.ga_result.average_fitness_trace()

    def knob_table(self) -> dict[str, object]:
        """Knob settings in the paper's table format (Figure 5a / 8c / 8d / 9b)."""
        return self.knobs.as_table()


@dataclass
class EvaluationRecord:
    """One evaluated candidate (kept for ablation studies and tests)."""

    knobs: StressmarkKnobs
    fitness: float
    report: SerReport


class StressmarkEvaluator:
    """Picklable fitness evaluator: genome -> codegen -> simulate -> score.

    Instances are shipped to worker processes by
    :class:`~repro.parallel.backends.ProcessPoolBackend`; the code generator
    is excluded from pickling and rebuilt lazily, once per worker, so each
    worker pays construction cost a single time for the whole GA run.
    """

    def __init__(
        self,
        config: MachineConfig,
        fault_rates: FaultRateModel,
        fitness: FitnessFunction,
        knob_space: KnobSpace,
        max_instructions: int,
        simulation_seed: int,
        kernel_backend: str = "",
    ) -> None:
        self.config = config
        self.fault_rates = fault_rates
        self.fitness = fitness
        self.knob_space = knob_space
        self.max_instructions = max_instructions
        self.simulation_seed = simulation_seed
        # Execution choice only (all kernel backends are bit-identical), so
        # it is deliberately *not* part of context_digest(): cached fitness
        # results stay valid across backend selections.
        self.kernel_backend = kernel_backend
        self._codegen: Optional[CodeGenerator] = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_codegen"] = None
        return state

    @property
    def codegen(self) -> CodeGenerator:
        if self._codegen is None:
            self._codegen = CodeGenerator(self.config)
        return self._codegen

    def context_digest(self) -> str:
        """Digest of everything besides the genome that shapes the fitness."""
        return evaluation_context_digest(
            self.config,
            self.fault_rates,
            self.fitness,
            self.max_instructions,
            self.simulation_seed,
        )

    def __call__(self, individual: Individual) -> float:
        knobs = self.knob_space.decode(individual.genome)
        program = self.codegen.generate(knobs)
        core = OutOfOrderCore(self.config, seed=self.simulation_seed)
        core.kernel_backend = self.kernel_backend or None
        result = core.run(program, max_instructions=self.max_instructions)
        score = self.fitness(result)
        report = build_report(result, self.fault_rates)
        individual.payload["report"] = report
        individual.payload["program"] = program
        individual.payload["knobs"] = knobs
        return score

    def evaluate_batch(self, individuals: list[Individual]) -> list[tuple[float, dict]]:
        """Population-at-once evaluation through the batch plane.

        Bit-identical to calling the evaluator per individual — one
        ``OutOfOrderCore`` per simulation with the same seed, the same
        codegen, the same fitness — but the resolved backend's ``run_many``
        shares the compiled batch kernel, warm cache/TLB state and operand
        plans across the whole slice.
        """
        from repro.uarch.kernel_backends import resolve

        decoded = [self.knob_space.decode(individual.genome) for individual in individuals]
        programs = [self.codegen.generate(knobs) for knobs in decoded]
        backend = resolve(self.kernel_backend or None)
        core = OutOfOrderCore(self.config, seed=self.simulation_seed)
        core.kernel_backend = self.kernel_backend or None
        results = backend.run_many(core, programs, self.max_instructions)
        outcomes: list[tuple[float, dict]] = []
        for individual, knobs, program, result in zip(individuals, decoded, programs, results):
            score = float(self.fitness(result))
            payload = dict(individual.payload)
            payload["report"] = build_report(result, self.fault_rates)
            payload["program"] = program
            payload["knobs"] = knobs
            outcomes.append((score, payload))
        return outcomes


class StressmarkGenerator:
    """Automated AVF stressmark generation for one machine configuration.

    ``jobs`` (default: the ``REPRO_JOBS`` environment variable, then 1)
    selects how many worker processes evaluate GA candidates concurrently;
    alternatively pass a preconfigured ``backend``.  Results are identical
    for any worker count.

    ``fitness_store`` (an :class:`~repro.store.artifacts.ArtifactStore`)
    makes the GA's fitness cache persistent: evaluations are written through
    to disk and duplicate genomes never re-simulate, across processes and
    sessions.  ``checkpoint`` (a
    :class:`~repro.store.checkpoint.CheckpointManager`) snapshots the GA
    after every generation so an interrupted search resumes bit-identically.
    """

    def __init__(
        self,
        config: MachineConfig,
        fault_rates: Optional[FaultRateModel] = None,
        fitness: Optional[FitnessFunction] = None,
        knob_space: Optional[KnobSpace] = None,
        ga_parameters: Optional[GAParameters] = None,
        max_instructions: int = 8_000,
        simulation_seed: int = 1,
        keep_history: bool = False,
        jobs: Optional[int] = None,
        backend: Optional[EvaluationBackend] = None,
        fitness_store: Optional[object] = None,
        checkpoint: Optional[object] = None,
        kernel_backend: str = "",
    ) -> None:
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        self.config = config
        self.fault_rates = fault_rates or unit_fault_rates()
        self.fitness = fitness or FitnessFunction.balanced(self.fault_rates)
        self.knob_space = knob_space or KnobSpace(config)
        self.ga_parameters = ga_parameters or GAParameters()
        self.max_instructions = max_instructions
        self.simulation_seed = simulation_seed
        self.keep_history = keep_history
        self.jobs = resolve_jobs(jobs) if backend is None else backend.jobs
        self.backend = backend
        self.fitness_store = fitness_store
        self.checkpoint = checkpoint
        self.kernel_backend = kernel_backend
        self.codegen = CodeGenerator(config)
        self.history: list[EvaluationRecord] = []

    # --------------------------------------------------------------- eval

    def simulate(self, knobs: StressmarkKnobs, max_instructions: Optional[int] = None) -> SimulationResult:
        """Generate and simulate the candidate program for one knob setting."""
        program = self.codegen.generate(knobs)
        core = OutOfOrderCore(self.config, seed=self.simulation_seed)
        core.kernel_backend = self.kernel_backend or None
        return core.run(program, max_instructions=max_instructions or self.max_instructions)

    def evaluate(self, knobs: StressmarkKnobs) -> tuple[float, SerReport, Program]:
        """Evaluate one knob setting; returns (fitness, report, program)."""
        program = self.codegen.generate(knobs)
        core = OutOfOrderCore(self.config, seed=self.simulation_seed)
        core.kernel_backend = self.kernel_backend or None
        result = core.run(program, max_instructions=self.max_instructions)
        score = self.fitness(result)
        report = build_report(result, self.fault_rates)
        if self.keep_history:
            self.history.append(EvaluationRecord(knobs=knobs, fitness=score, report=report))
        return score, report, program

    # ----------------------------------------------------------- generate

    def generate(self, initial_knobs: Optional[list[StressmarkKnobs]] = None) -> StressmarkResult:
        """Run the GA and return the best stressmark found."""
        space = self.knob_space.gene_space()
        evaluator = StressmarkEvaluator(
            config=self.config,
            fault_rates=self.fault_rates,
            fitness=self.fitness,
            knob_space=self.knob_space,
            max_instructions=self.max_instructions,
            simulation_seed=self.simulation_seed,
            kernel_backend=self.kernel_backend,
        )

        seeds = None
        if initial_knobs:
            seeds = [Individual(genome=knobs.to_genome()) for knobs in initial_knobs]

        on_evaluated = None
        if self.keep_history:
            def on_evaluated(individual: Individual) -> None:
                self.history.append(
                    EvaluationRecord(
                        knobs=individual.payload["knobs"],
                        fitness=float(individual.fitness),
                        report=individual.payload["report"],
                    )
                )

        backend = self.backend or create_backend(self.jobs)
        owns_backend = self.backend is None
        try:
            # Bound the in-memory cache: entries retain full payloads
            # (program + report), so an unbounded cache would hold every
            # distinct candidate of a paper-scale run in memory.  A few
            # generations' worth of entries covers elites, migrants and
            # recent duplicates.
            max_entries = max(256, 4 * self.ga_parameters.population_size)
            if self.fitness_store is not None:
                from repro.store.fitness_store import PersistentFitnessCache

                cache: FitnessCache = PersistentFitnessCache(
                    self.fitness_store,
                    context_digest=evaluator.context_digest(),
                    max_entries=max_entries,
                )
            else:
                cache = FitnessCache(
                    context_digest=evaluator.context_digest(),
                    max_entries=max_entries,
                )
            engine = GeneticAlgorithm(
                space,
                evaluator,
                self.ga_parameters,
                backend=backend,
                fitness_cache=cache,
                on_evaluated=on_evaluated,
            )
            ga_result = engine.run(initial_population=seeds, checkpoint=self.checkpoint)
        finally:
            if owns_backend:
                backend.close()

        best = ga_result.best
        knobs = best.payload.get("knobs") or self.knob_space.decode(best.genome)
        report = best.payload.get("report")
        program = best.payload.get("program")
        if report is None or program is None:
            # The winning individual can come from elitist copies whose payload
            # was not preserved; re-evaluate it once to obtain the artefacts.
            _, report, program = self.evaluate(knobs)

        return StressmarkResult(
            config=self.config,
            fault_rates=self.fault_rates,
            knobs=knobs,
            program=program,
            report=report,
            fitness=float(best.fitness),
            ga_result=ga_result,
        )


def reference_knobs(config: MachineConfig, use_l2_miss: bool = True, seed: int = 7) -> StressmarkKnobs:
    """A hand-tuned knob setting close to the paper's published solution.

    Figure 5a reports loop size 81, 29 loads, 28 stores, 5 independent
    arithmetic instructions, 7 instructions dependent on the L2 miss, average
    chain length 2.14, dependency distance 6, 80 % long-latency arithmetic
    and 93 % reg-reg arithmetic for the baseline configuration.  The values
    below scale those proportions to the configured ROB size; they are used
    as a GA seed, as a fast path in the examples, and as a regression anchor
    in tests.
    """
    loop_size = min(int(round(config.rob_entries * 1.0125)), int(round(config.rob_entries * 1.2)))
    scale = loop_size / 81.0
    return StressmarkKnobs(
        loop_size=loop_size,
        num_loads=max(1, int(round(29 * scale))),
        num_stores=max(1, int(round(28 * scale))),
        num_independent_arithmetic=max(1, int(round(5 * scale))),
        num_dependent_on_miss=max(1, int(round(7 * scale))),
        avg_dependence_chain_length=2.14,
        dependency_distance=6,
        fraction_long_latency_arithmetic=0.8,
        fraction_reg_reg=0.93,
        random_seed=seed,
        use_l2_miss=use_l2_miss,
    )
