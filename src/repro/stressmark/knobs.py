"""Knob definitions for the stressmark code generator (Section IV-B).

The paper's code generator exposes nine knobs; we reproduce them one-for-one:

1. I-mix (number of loads / stores / independent arithmetic instructions)
2. Dependency distance
3. Fraction of long-latency arithmetic
4. Average dependence chain length
5. Register usage (fraction of reg-reg vs. immediate arithmetic)
6. Number of instructions dependent on the L2 miss
7. Random seed (instruction placement)
8. Code generator switch (L2-miss vs. L2-hit inner loop)
9. Loop size (bounded at 1.2x the ROB size, as in Section IV-B)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.ga.genes import BoolGene, FloatGene, GeneSpace, IntGene
from repro.uarch.config import MachineConfig


@dataclass(frozen=True)
class StressmarkKnobs:
    """One complete knob setting (a point in the code-generator search space).

    The counts are *requests*; the code generator repairs them to fit within
    ``loop_size`` after accounting for the fixed framework instructions
    (pointer-chase load, index update and loop branch).
    """

    loop_size: int
    num_loads: int
    num_stores: int
    num_independent_arithmetic: int
    num_dependent_on_miss: int
    avg_dependence_chain_length: float
    dependency_distance: int
    fraction_long_latency_arithmetic: float
    fraction_reg_reg: float
    random_seed: int
    use_l2_miss: bool = True

    def __post_init__(self) -> None:
        if self.loop_size < 4:
            raise ValueError("loop_size must be at least 4")
        for name in (
            "num_loads",
            "num_stores",
            "num_independent_arithmetic",
            "num_dependent_on_miss",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.avg_dependence_chain_length < 1.0:
            raise ValueError("avg_dependence_chain_length must be >= 1")
        if self.dependency_distance < 1:
            raise ValueError("dependency_distance must be >= 1")
        for name in ("fraction_long_latency_arithmetic", "fraction_reg_reg"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")

    # ------------------------------------------------------------ encoding

    def to_genome(self) -> dict[str, object]:
        """Encode the knobs as a GA genome."""
        return {
            "loop_size": self.loop_size,
            "num_loads": self.num_loads,
            "num_stores": self.num_stores,
            "num_independent_arithmetic": self.num_independent_arithmetic,
            "num_dependent_on_miss": self.num_dependent_on_miss,
            "avg_dependence_chain_length": self.avg_dependence_chain_length,
            "dependency_distance": self.dependency_distance,
            "fraction_long_latency_arithmetic": self.fraction_long_latency_arithmetic,
            "fraction_reg_reg": self.fraction_reg_reg,
            "random_seed": self.random_seed,
            "use_l2_miss": self.use_l2_miss,
        }

    @classmethod
    def from_genome(cls, genome: Mapping[str, object]) -> "StressmarkKnobs":
        """Decode a GA genome into knobs."""
        return cls(
            loop_size=int(genome["loop_size"]),
            num_loads=int(genome["num_loads"]),
            num_stores=int(genome["num_stores"]),
            num_independent_arithmetic=int(genome["num_independent_arithmetic"]),
            num_dependent_on_miss=int(genome["num_dependent_on_miss"]),
            avg_dependence_chain_length=float(genome["avg_dependence_chain_length"]),
            dependency_distance=int(genome["dependency_distance"]),
            fraction_long_latency_arithmetic=float(genome["fraction_long_latency_arithmetic"]),
            fraction_reg_reg=float(genome["fraction_reg_reg"]),
            random_seed=int(genome["random_seed"]),
            use_l2_miss=bool(genome["use_l2_miss"]),
        )

    def derive(self, **overrides: object) -> "StressmarkKnobs":
        """Return a copy with fields overridden."""
        return replace(self, **overrides)

    def as_table(self) -> dict[str, object]:
        """Knob table in the paper's Figure 5a / 8c / 8d / 9b format."""
        return {
            "Loop Size": self.loop_size,
            "No. of loads": self.num_loads,
            "No. of stores": self.num_stores,
            "No. of Independent Arithmetic Instructions": self.num_independent_arithmetic,
            "No. of instructions dependent on L2 miss": self.num_dependent_on_miss,
            "Avg. Dependence Chain Length": round(self.avg_dependence_chain_length, 2),
            "Dependency Distance": self.dependency_distance,
            "Fraction of Long Latency Arithmetic": round(self.fraction_long_latency_arithmetic, 2),
            "Fraction of Reg-Reg arithmetic instructions": round(self.fraction_reg_reg, 2),
            "Code generator": "L2 miss" if self.use_l2_miss else "L2 hit",
        }


@dataclass(frozen=True)
class KnobSpace:
    """Bounds of the knob space for a given machine configuration.

    The paper restricts the loop to at most 1.2x the ROB size and lets the GA
    pick everything else; the I-mix counts are bounded by the loop size.
    """

    config: MachineConfig
    max_loop_factor: float = 1.2
    min_loop_size: int = 16
    max_dependency_distance: int = 8
    max_chain_length: float = 16.0
    max_random_seed: int = 2**16 - 1
    allow_l2_hit_generator: bool = True
    fixed_overhead: int = field(default=3, init=True)

    def max_loop_size(self) -> int:
        """Largest inner-loop size allowed (1.2x ROB, as in the paper)."""
        return int(round(self.config.rob_entries * self.max_loop_factor))

    def gene_space(self) -> GeneSpace:
        """GA gene space corresponding to these bounds."""
        max_loop = self.max_loop_size()
        max_slots = max(1, max_loop - self.fixed_overhead)
        genes = [
            IntGene("loop_size", self.min_loop_size, max_loop),
            IntGene("num_loads", 0, max_slots),
            IntGene("num_stores", 0, max_slots),
            IntGene("num_independent_arithmetic", 0, max_slots),
            IntGene("num_dependent_on_miss", 0, min(self.config.iq_entries, max_slots)),
            FloatGene("avg_dependence_chain_length", 1.0, self.max_chain_length),
            IntGene("dependency_distance", 1, self.max_dependency_distance),
            FloatGene("fraction_long_latency_arithmetic", 0.0, 1.0),
            FloatGene("fraction_reg_reg", 0.0, 1.0),
            IntGene("random_seed", 0, self.max_random_seed),
        ]
        if self.allow_l2_hit_generator:
            genes.append(BoolGene("use_l2_miss"))
        return GeneSpace(genes)

    def decode(self, genome: Mapping[str, object]) -> StressmarkKnobs:
        """Decode a genome, defaulting the generator switch when it is fixed."""
        values = dict(genome)
        values.setdefault("use_l2_miss", True)
        return StressmarkKnobs.from_genome(values)
