"""Fitness functions for the stressmark GA.

The paper's fitness metric is the observable SER of the candidate under the
configured circuit-level fault rates.  Two formulations are provided:

* :meth:`FitnessFunction.overall` — the literal overall SER: AVF x bits x
  fault-rate summed over every structure and normalised by total bits.
  Because caches hold orders of magnitude more bits than the core, this
  formulation is dominated by the (nearly candidate-invariant) cache term.
* :meth:`FitnessFunction.balanced` — the default used by
  :class:`~repro.stressmark.generator.StressmarkGenerator`: a weighted sum of
  the normalised group SERs (core, DL1+DTLB, L2).  The core carries the
  largest weight so the GA retains a strong optimisation signal on the
  queueing structures and register file, while the cache terms keep the
  incentive to maintain ACE loads/stores — mirroring how the paper's GA
  adapts the I-mix per fault-rate scenario (Section VI-A).  This choice is a
  documented reproduction decision (see DESIGN.md and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.avf.analysis import StructureGroup, normalized_group_ser
from repro.uarch.faultrates import FaultRateModel, unit_fault_rates
from repro.uarch.pipeline import SimulationResult


@dataclass(frozen=True)
class GroupWeights:
    """Relative weights of the structure groups in the fitness function."""

    core: float = 1.0
    dl1_dtlb: float = 0.5
    l2: float = 0.25

    def __post_init__(self) -> None:
        if min(self.core, self.dl1_dtlb, self.l2) < 0.0:
            raise ValueError("group weights must be non-negative")
        if self.core + self.dl1_dtlb + self.l2 == 0.0:
            raise ValueError("at least one group weight must be positive")


@dataclass(frozen=True)
class FitnessFunction:
    """Callable fitness: maps a simulation result to a scalar SER score."""

    fault_rates: FaultRateModel
    weights: GroupWeights
    name: str = "balanced"

    @classmethod
    def balanced(
        cls, fault_rates: FaultRateModel | None = None, weights: GroupWeights | None = None
    ) -> "FitnessFunction":
        """Default fitness: weighted sum of normalised group SERs."""
        return cls(
            fault_rates=fault_rates or unit_fault_rates(),
            weights=weights or GroupWeights(),
            name="balanced",
        )

    @classmethod
    def overall(cls, fault_rates: FaultRateModel | None = None) -> "FitnessFunction":
        """Literal overall SER (bit-weighted across every structure)."""
        return cls(
            fault_rates=fault_rates or unit_fault_rates(),
            weights=GroupWeights(),
            name="overall",
        )

    @classmethod
    def core_only(cls, fault_rates: FaultRateModel | None = None) -> "FitnessFunction":
        """Core-only SER fitness (used in ablation benchmarks)."""
        return cls(
            fault_rates=fault_rates or unit_fault_rates(),
            weights=GroupWeights(core=1.0, dl1_dtlb=0.0, l2=0.0),
            name="core_only",
        )

    def __call__(self, result: SimulationResult) -> float:
        """Score one simulation result."""
        if self.name == "overall":
            return self._overall_ser(result)
        weights = self.weights
        score = 0.0
        score += weights.core * normalized_group_ser(result, StructureGroup.CORE, self.fault_rates)
        score += weights.dl1_dtlb * normalized_group_ser(
            result, StructureGroup.DL1_DTLB, self.fault_rates
        )
        score += weights.l2 * normalized_group_ser(result, StructureGroup.L2, self.fault_rates)
        return score

    def _overall_ser(self, result: SimulationResult) -> float:
        total_bits = 0.0
        weighted = 0.0
        for name, accumulator in result.accumulators.items():
            bits = float(accumulator.total_bits)
            total_bits += bits
            weighted += result.avf(name) * bits * self.fault_rates.rate(name)
        if total_bits == 0.0:
            return 0.0
        return weighted / total_bits
