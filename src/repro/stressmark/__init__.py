"""AVF stressmark generation — the paper's primary contribution.

The package ties together the knob space (Section IV-B of the paper), the
code generator that turns a knob setting into a 100 %-ACE candidate program,
the SER fitness function, and the genetic algorithm that searches the knob
space for the setting that approaches the worst-case observable SER.
"""

from repro.stressmark.knobs import KnobSpace, StressmarkKnobs
from repro.stressmark.codegen import CodeGenerator
from repro.stressmark.fitness import FitnessFunction, GroupWeights
from repro.stressmark.generator import StressmarkGenerator, StressmarkResult

__all__ = [
    "KnobSpace",
    "StressmarkKnobs",
    "CodeGenerator",
    "FitnessFunction",
    "GroupWeights",
    "StressmarkGenerator",
    "StressmarkResult",
]
