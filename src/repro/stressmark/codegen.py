"""Stressmark code generator (Section IV-B and Figure 2 of the paper).

Given a :class:`~repro.stressmark.knobs.StressmarkKnobs` setting, the
generator emits a :class:`~repro.isa.Program` with the framework shape of
Figure 2:

* a data region sized to cover every DTLB entry (page size x DTLB entries,
  and at least twice the L2 so the pointer chase always misses the L2 in the
  L2-miss variant);
* a self-dependent strided (pointer-chasing) load that produces one blocking
  long-latency miss per iteration (or an L2 hit in the L2-hit variant);
* ACE loads and stores that cover every word of the *previous* cache line so
  the whole line (and hence the DL1, DTLB and L2) holds ACE data;
* arithmetic instructions arranged into dependence chains from loads to
  stores, with the requested dependency distance, chain length, long-latency
  fraction and reg-reg fraction;
* a configurable number of instructions data-dependent on the blocking load
  (IQ occupancy in the miss shadow);
* a perfectly predictable loop-closing branch (no front-end flushes).

Every emitted instruction is ACE: every loaded or produced value transitively
feeds a store, and the initialised array is treated as program output (the
paper's "dump memory to file" step), which is reflected in the program's
warm-up region declaration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import (
    ARCH_REG_COUNT,
    Instruction,
    make_alu,
    make_branch,
    make_load,
    make_mul,
    make_store,
)
from repro.isa.memoryref import LineCoverPattern, PointerChasePattern
from repro.isa.program import BranchBehavior, Program, WarmupRegion
from repro.stressmark.knobs import StressmarkKnobs
from repro.uarch.config import MachineConfig
from repro.utils.rng import DeterministicRng

#: Register roles used by the generator.  The top registers are reserved as
#: loop-invariant "constants": they are never written inside the loop, only
#: read as reg-reg second operands, so their architected values stay ACE for
#: the whole run — this is how the reg-reg knob drives register-file AVF
#: ("the generated code utilizes every architected register", Section VI).
_CHASE_REG = 1
_INDEX_REG = 2
_POOL_START = 3
_CONSTANT_REG_COUNT = 10
_POOL = list(range(_POOL_START, ARCH_REG_COUNT - _CONSTANT_REG_COUNT))
_CONSTANT_REGS = list(range(ARCH_REG_COUNT - _CONSTANT_REG_COUNT, ARCH_REG_COUNT))


@dataclass(frozen=True)
class _RepairedCounts:
    """Knob counts after repair to fit the loop size."""

    loads: int
    stores: int
    independent: int
    dependent_on_miss: int
    chain_arithmetic: int


class CodeGenerator:
    """Turns knob settings into candidate stressmark programs."""

    #: Fixed framework instructions: pointer-chase load, index update, branch.
    FIXED_OVERHEAD = 3

    def __init__(self, config: MachineConfig, base_address: int = 0) -> None:
        self.config = config
        self.base_address = base_address

    # ------------------------------------------------------------ regions

    def chase_region_bytes(self, use_l2_miss: bool) -> int:
        """Size of the pointer-chase data region.

        The L2-miss variant covers the whole DTLB reach and at least twice
        the L2 so every chase access misses the L2; the L2-hit variant stays
        within half the L2 (but beyond the DL1) so the chase hits the L2.
        """
        dtlb_reach = self.config.dtlb.reach_bytes
        if use_l2_miss:
            return max(dtlb_reach, 2 * self.config.l2.size_bytes)
        half_l2 = self.config.l2.size_bytes // 2
        return max(2 * self.config.dl1.size_bytes, min(half_l2, dtlb_reach))

    # ----------------------------------------------------------- generate

    def generate(self, knobs: StressmarkKnobs, name: str | None = None) -> Program:
        """Generate the candidate program for one knob setting."""
        rng = DeterministicRng(knobs.random_seed).spawn("codegen")
        counts = self._repair_counts(knobs)
        region = self.chase_region_bytes(knobs.use_l2_miss)
        line_bytes = self.config.dl1.line_bytes

        chase_pattern = PointerChasePattern(
            base=self.base_address, stride=line_bytes, region=region
        )
        chase = make_load(_CHASE_REG, chase_pattern, srcs=[_CHASE_REG], label="chase")
        index_update = make_alu(_INDEX_REG, [_INDEX_REG], label="index_update")

        streams = self._build_streams(knobs, counts, region, rng)
        scheduled = self._schedule(streams, knobs.dependency_distance, rng)

        body: list[Instruction] = [chase, index_update]
        body.extend(scheduled)
        branch_index = len(body)
        body.append(make_branch(srcs=[_INDEX_REG], label="loop_branch"))

        program_name = name or f"stressmark_{self.config.name}_{'miss' if knobs.use_l2_miss else 'hit'}"
        return Program(
            name=program_name,
            body=body,
            iterations=10**9,
            branch_behaviors={branch_index: BranchBehavior.LOOP_CLOSING},
            pointer_chase_indices=frozenset({0}),
            warmup_regions=[
                WarmupRegion(
                    base=self.base_address,
                    size_bytes=region,
                    dirty=True,
                    ace=True,
                    word_fraction=1.0,
                    recurrent=True,
                )
            ],
            metadata={"knobs": knobs.to_genome(), "region_bytes": region},
        )

    # ------------------------------------------------------------- repair

    def _repair_counts(self, knobs: StressmarkKnobs) -> _RepairedCounts:
        """Scale the requested I-mix so it fits within the loop size."""
        slots = max(1, knobs.loop_size - self.FIXED_OVERHEAD)
        requested = (
            knobs.num_loads
            + knobs.num_stores
            + knobs.num_independent_arithmetic
            + knobs.num_dependent_on_miss
        )
        loads = knobs.num_loads
        stores = knobs.num_stores
        independent = knobs.num_independent_arithmetic
        dependent = knobs.num_dependent_on_miss
        if requested > slots:
            scale = slots / requested
            loads = int(loads * scale)
            stores = int(stores * scale)
            independent = int(independent * scale)
            dependent = int(dependent * scale)
        chain_arithmetic = max(0, slots - loads - stores - independent - dependent)
        return _RepairedCounts(
            loads=loads,
            stores=stores,
            independent=independent,
            dependent_on_miss=dependent,
            chain_arithmetic=chain_arithmetic,
        )

    # ------------------------------------------------------------ streams

    def _build_streams(
        self,
        knobs: StressmarkKnobs,
        counts: _RepairedCounts,
        region: int,
        rng: DeterministicRng,
    ) -> list[list[Instruction]]:
        """Build dependence streams (chains) of instructions to be scheduled."""
        line_bytes = self.config.dl1.line_bytes
        cover_slots = max(1, counts.loads + counts.stores)

        pool_cursor = 0

        def next_pool_register() -> int:
            nonlocal pool_cursor
            register = _POOL[pool_cursor % len(_POOL)]
            pool_cursor += 1
            return register

        reg_reg_cursor = 0

        def reg_reg_sources(primary: int) -> list[int]:
            """Sources for an arithmetic op honouring the reg-reg fraction.

            Reg-reg instructions read one of the reserved loop-invariant
            registers, keeping every architected register's value live (ACE).
            """
            nonlocal reg_reg_cursor
            if rng.coin(knobs.fraction_reg_reg):
                reg_reg_cursor += 1
                secondary = _CONSTANT_REGS[reg_reg_cursor % len(_CONSTANT_REGS)]
                return [primary, secondary]
            return [primary]

        def make_arith(dest: int, srcs: list[int], label: str) -> Instruction:
            if rng.coin(knobs.fraction_long_latency_arithmetic):
                return make_mul(dest, srcs, label=label)
            return make_alu(dest, srcs, label=label)

        # Cover loads: hit the previous cache line and keep every word ACE.
        load_instructions: list[Instruction] = []
        load_dests: list[int] = []
        for slot in range(counts.loads):
            dest = next_pool_register()
            load_dests.append(dest)
            pattern = LineCoverPattern(
                base=self.base_address,
                line_bytes=line_bytes,
                region=region,
                slots=cover_slots,
                slot=slot,
                iteration_offset=-1,
            )
            load_instructions.append(
                make_load(dest, pattern, srcs=[_INDEX_REG], label="cover_load")
            )

        # Cover stores: write the remaining words of the previous line; their
        # value sources are wired to chain results / load results below.
        store_slots = list(range(counts.loads, counts.loads + counts.stores))

        # Dependence chains: load -> arithmetic... -> store value.
        chain_count = 0
        if counts.chain_arithmetic > 0:
            chain_count = max(1, round(counts.chain_arithmetic / knobs.avg_dependence_chain_length))
        chain_lengths = self._split_evenly(counts.chain_arithmetic, chain_count)

        streams: list[list[Instruction]] = []
        store_value_sources: list[int] = []

        for chain_index, chain_length in enumerate(chain_lengths):
            stream: list[Instruction] = []
            if load_dests:
                source = load_dests[chain_index % len(load_dests)]
            else:
                source = _INDEX_REG
            current = source
            for _ in range(chain_length):
                dest = next_pool_register()
                stream.append(make_arith(dest, reg_reg_sources(current), label="chain_arith"))
                current = dest
            store_value_sources.append(current)
            if stream:
                streams.append(stream)

        # Loads not consumed by a chain become their own streams.
        for index, instruction in enumerate(load_instructions):
            streams.append([instruction])
            if index >= len(store_value_sources):
                store_value_sources.append(load_dests[index])

        # Independent arithmetic: short self-contained streams.
        for index in range(counts.independent):
            dest = next_pool_register()
            streams.append(
                [make_arith(dest, reg_reg_sources(_INDEX_REG), label="independent_arith")]
            )
            store_value_sources.append(dest)

        # Instructions dependent on the blocking load (IQ occupancy knob).
        for _ in range(counts.dependent_on_miss):
            dest = next_pool_register()
            streams.append(
                [make_arith(dest, [_CHASE_REG] + reg_reg_sources(_CHASE_REG)[1:], label="dependent_on_miss")]
            )

        # Stores: cover the remaining words of the previous line, consuming
        # produced values so every value transitively reaches memory.
        if not store_value_sources:
            store_value_sources = [_INDEX_REG]
        for store_index, slot in enumerate(store_slots):
            value = store_value_sources[store_index % len(store_value_sources)]
            pattern = LineCoverPattern(
                base=self.base_address,
                line_bytes=line_bytes,
                region=region,
                slots=cover_slots,
                slot=slot,
                iteration_offset=-1,
            )
            streams.append(
                [make_store(pattern, srcs=[value, _INDEX_REG], label="cover_store")]
            )

        return streams

    # ---------------------------------------------------------- scheduling

    @staticmethod
    def _split_evenly(total: int, parts: int) -> list[int]:
        """Split ``total`` into ``parts`` near-equal positive chunks."""
        if parts <= 0 or total <= 0:
            return []
        base = total // parts
        remainder = total % parts
        return [base + (1 if index < remainder else 0) for index in range(parts)]

    @staticmethod
    def _schedule(
        streams: list[list[Instruction]], dependency_distance: int, rng: DeterministicRng
    ) -> list[Instruction]:
        """Interleave dependence streams to honour the dependency distance.

        Streams are processed in batches of ``dependency_distance``; within a
        batch instructions are drawn round-robin, so two consecutive
        instructions of the same stream end up roughly ``dependency_distance``
        slots apart.  A distance of one degenerates to depth-first placement
        (dependent instructions back to back), matching the knob's meaning.
        """
        if not streams:
            return []
        order = list(range(len(streams)))
        rng.shuffle(order)
        shuffled = [list(streams[index]) for index in order]

        scheduled: list[Instruction] = []
        batch_size = max(1, dependency_distance)
        for start in range(0, len(shuffled), batch_size):
            batch = [stream for stream in shuffled[start : start + batch_size] if stream]
            while batch:
                for stream in list(batch):
                    scheduled.append(stream.pop(0))
                    if not stream:
                        batch.remove(stream)
        return scheduled
