"""Compiled, memoized simulator kernels (the ``REPRO_KERNEL`` switch).

:func:`kernel_for` turns a ``(program, config)`` pair into a compiled
``kernel_run(core, program, max_instructions)`` callable by asking
:mod:`repro.uarch.kernelgen` for specialized Python source and
``compile()``/``exec()``-ing it once.  Kernels are memoized at two levels:

* **in-process** — a module-level table keyed by
  ``(program digest, config digest)``; every later simulation of the same
  program on the same configuration (bench repeats, duplicate GA genomes,
  workload replays) reuses the compiled code object.  Worker processes keep
  their own table, so a process pool compiles each distinct kernel at most
  once per worker.
* **across processes** — when an
  :class:`~repro.store.artifacts.ArtifactStore` is attached via
  :func:`configure_source_store` (the experiment context wires the result
  store's artifact database in), generated *source text* is persisted under
  a schema-versioned digest key.  Only source ships between processes and
  sessions — never closures or code objects — and each process compiles
  what it loads.

``REPRO_KERNEL=0`` (also ``false``/``off``/``no``) disables the kernel path
globally; :meth:`OutOfOrderCore.run` then executes the interpreted reference
loop.  The two paths are bit-identical by construction (see
``kernelgen``'s module docstring and ``tests/test_kernel_differential.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.parallel.cache import evaluation_context_digest
from repro.uarch.kernelgen import (
    KERNEL_SCHEMA,
    generate_batch_kernel_source,
    generate_kernel_source,
    generate_vector_kernel_source,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.program import Program
    from repro.uarch.config import MachineConfig

#: Environment switch: set to 0/false/off/no to force the interpreted loop.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Programs with more static body instructions than this fall back to the
#: interpreter — the unrolled source (and its compile time) grows linearly
#: with the body, and bodies this large amortise interpretation fine anyway.
MAX_KERNEL_BODY = 4096


@dataclass
class KernelStats:
    """Process-local counters for the kernel cache (observability/tests)."""

    generated: int = 0
    compiled: int = 0
    memo_hits: int = 0
    source_store_hits: int = 0
    failures: int = 0
    failed_digests: set = field(default_factory=set)

    def reset(self) -> None:
        self.generated = 0
        self.compiled = 0
        self.memo_hits = 0
        self.source_store_hits = 0
        self.failures = 0
        self.failed_digests.clear()


STATS = KernelStats()

#: Most compiled kernels kept in the in-process memo (oldest evicted first).
#: A GA run compiles one kernel per distinct genome, so an unbounded memo
#: would grow for the whole search — in the parent *and* in every pool
#: worker, which the warm evaluation fabric deliberately never recycles.
KERNEL_CACHE_LIMIT = 256

#: Compiled config-specialized batch/vector kernels are one per distinct
#: machine configuration — a GA search uses exactly one — but a long-lived
#: ``repro serve`` daemon can meet many configs over its lifetime, so these
#: memos are bounded too.
CONFIG_KERNEL_CACHE_LIMIT = 64

_kernels: dict[tuple[str, str], Callable] = {}
#: Compiled config-specialized batch kernels, keyed by config digest.
_batch_kernels: dict[str, Callable] = {}
#: Compiled config-specialized vector kernels, keyed by config digest.
_vector_kernels: dict[str, Callable] = {}
_source_store = None
_source_store_pid: Optional[int] = None


def _lru_get(cache: dict, key):
    """Bounded-memo lookup that refreshes recency (move-to-end on hit).

    All kernel/plan/warm memos are plain insertion-ordered dicts bounded by
    evicting ``next(iter(...))``; refreshing on hit makes that eviction
    least-recently-*used* rather than first-inserted, so a long-lived serve
    daemon cycling through many configs keeps its hot entries.
    """
    value = cache.get(key)
    if value is not None:
        del cache[key]
        cache[key] = value
    return value


def _lru_put(cache: dict, key, value, limit: int) -> None:
    """Insert into a bounded memo, evicting least-recently-used entries."""
    if key in cache:
        del cache[key]
    while len(cache) >= limit:
        del cache[next(iter(cache))]
    cache[key] = value


def kernel_enabled() -> bool:
    """Whether the specialized-kernel path is active (default: yes)."""
    value = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    return value not in ("0", "false", "off", "no")


def program_digest(program: "Program") -> str:
    """Content digest of a program (everything the generated source bakes in)."""
    return evaluation_context_digest("kernel-program", KERNEL_SCHEMA, program)


def config_digest(config: "MachineConfig") -> str:
    """Content digest of a machine configuration."""
    return evaluation_context_digest("kernel-config", KERNEL_SCHEMA, config)


def source_key(prog_digest: str, cfg_digest: str) -> str:
    """ArtifactStore key one kernel's source is persisted under."""
    return f"kernel-src|v{KERNEL_SCHEMA}|{cfg_digest}|{prog_digest}"


def batch_source_key(cfg_digest: str) -> str:
    """ArtifactStore key one config's batch-kernel source is persisted under."""
    return f"kernel-batch-src|v{KERNEL_SCHEMA}|{cfg_digest}"


def vector_source_key(cfg_digest: str) -> str:
    """ArtifactStore key one config's vector-kernel source is persisted under."""
    return f"kernel-vector-src|v{KERNEL_SCHEMA}|{cfg_digest}"


def configure_source_store(store) -> None:
    """Attach (or detach, with ``None``) a durable source cache.

    ``store`` is any ``get``/``put`` mapping — in practice the result
    store's :class:`~repro.store.artifacts.ArtifactStore`.  Generated source
    is written through so later processes and sessions skip codegen; the
    caller owns the store's lifetime.
    """
    global _source_store, _source_store_pid
    _source_store = store
    _source_store_pid = os.getpid() if store is not None else None


def detach_source_store(store) -> None:
    """Detach ``store`` if it is the currently configured source cache.

    Called when the owner (an experiment context whose result store is being
    closed) releases it, so the module never holds a closed database.  A
    different store configured in the meantime is left in place.
    """
    global _source_store
    if _source_store is store:
        configure_source_store(None)


# Attachment bookkeeping: several experiment contexts can share one result
# store (Session memoizes contexts per scale/jobs), and sessions over
# *different* stores can interleave.  The stack records attachment order
# (one entry per attach, duplicates allowed) so releasing the currently
# configured store restores the most recently attached survivor instead of
# silently disabling persistence for a still-open owner.
_attach_stack: list = []


def attach_source_store(store) -> None:
    """Stacked :func:`configure_source_store` for shared/interleaved owners."""
    _attach_stack.append(store)
    configure_source_store(store)


def release_source_store(store) -> None:
    """Drop one attachment of ``store``; reconfigure to the newest survivor."""
    for index in range(len(_attach_stack) - 1, -1, -1):
        if _attach_stack[index] is store:
            del _attach_stack[index]
            break
    if _source_store is not store:
        return
    for survivor in reversed(_attach_stack):
        if survivor is store:
            # Another attachment of the same store is still live.
            return
    configure_source_store(_attach_stack[-1] if _attach_stack else None)


def _discard_failed_store(store) -> None:
    """Drop a store that raised, everywhere: current slot *and* attach stack.

    A broken store (closed database, locked file) must neither stay
    configured nor lurk on the stack to be re-attached when a sibling
    releases; the newest healthy survivor — if any — takes over.
    """
    _attach_stack[:] = [entry for entry in _attach_stack if entry is not store]
    if _source_store is store:
        configure_source_store(_attach_stack[-1] if _attach_stack else None)


def _active_source_store():
    """The source store safe to use from *this* process.

    A sqlite connection must never be used across ``fork()``: pool workers
    inherit the module global, so on first use in a child process the store
    is reopened at the same path with a private connection (concurrent
    writers are serialized by sqlite's file locking).  Stores that cannot be
    reopened — or are not path-backed — are detached in the child.
    """
    global _source_store, _source_store_pid
    store = _source_store
    if store is None or _source_store_pid == os.getpid():
        return store
    path = getattr(store, "path", None)
    if path is None:
        _discard_failed_store(store)
        return None
    try:
        from repro.store.artifacts import ArtifactStore

        _source_store = ArtifactStore(path)
    except Exception:
        _discard_failed_store(store)
        return None
    _source_store_pid = os.getpid()
    return _source_store


def supports(program: "Program", functional_setup: bool) -> bool:
    """Whether a kernel can replace the interpreter for this invocation.

    The kernel path covers the hot shape: functional cache warm-up plus the
    repeated loop body.  Explicitly simulated setup sections (rare; used by
    a few unit tests) stay on the interpreted reference loop.
    """
    return functional_setup and len(program.body) <= MAX_KERNEL_BODY


def kernel_for(config: "MachineConfig", program: "Program") -> Optional[Callable]:
    """The compiled kernel for (program, config), or ``None`` on failure.

    Failures (codegen or compile errors) are remembered per digest pair and
    never retried, so a pathological program degrades to the interpreter
    once instead of paying the failed generation per run.
    """
    key = (program_digest(program), config_digest(config))
    kernel = _lru_get(_kernels, key)
    if kernel is not None:
        STATS.memo_hits += 1
        return kernel
    if key in STATS.failed_digests:
        return None

    # The durable cache is an optimisation only: a broken or closed store
    # (e.g. outliving the session that attached it) detaches itself and
    # generation proceeds locally.
    store = _active_source_store()
    source: Optional[str] = None
    from_store = False
    if store is not None:
        try:
            stored = store.get(source_key(*key))
        except Exception:
            _discard_failed_store(store)
            store = None
            stored = None
        if isinstance(stored, str):
            source = stored
            from_store = True
            STATS.source_store_hits += 1

    kernel = None
    if source is not None:
        try:
            kernel = compile_kernel(source, key)
        except Exception:
            # A truncated/garbled stored entry must not permanently demote
            # this program to the interpreter — regenerate locally below.
            kernel = None
            source = None
            from_store = False
    if kernel is None:
        try:
            source = generate_kernel_source(config, program)
            STATS.generated += 1
            kernel = compile_kernel(source, key)
        except Exception:
            STATS.failures += 1
            STATS.failed_digests.add(key)
            return None
    if not from_store:
        # Re-resolve: a store that failed during the lookup has been pruned
        # by now, and any healthy survivor should still get the write.
        store = _active_source_store()
        if store is not None:
            try:
                store.put(source_key(*key), source)
            except Exception:
                _discard_failed_store(store)

    STATS.compiled += 1
    _lru_put(_kernels, key, kernel, KERNEL_CACHE_LIMIT)
    return kernel


def batch_kernel_for(config: "MachineConfig") -> Optional[Callable]:
    """The compiled config-specialized batch kernel, or ``None`` on failure.

    Same two-level memoization as :func:`kernel_for` — in-process by config
    digest, cross-process as persisted source text in the attached
    ArtifactStore — with the same never-retry policy for failed generation.
    """
    cfg_digest = config_digest(config)
    kernel = _lru_get(_batch_kernels, cfg_digest)
    if kernel is not None:
        STATS.memo_hits += 1
        return kernel
    failed_key = ("batch", cfg_digest)
    if failed_key in STATS.failed_digests:
        return None

    store = _active_source_store()
    source: Optional[str] = None
    from_store = False
    if store is not None:
        try:
            stored = store.get(batch_source_key(cfg_digest))
        except Exception:
            _discard_failed_store(store)
            store = None
            stored = None
        if isinstance(stored, str):
            source = stored
            from_store = True
            STATS.source_store_hits += 1

    kernel = None
    if source is not None:
        try:
            kernel = compile_batch_kernel(source, cfg_digest)
        except Exception:
            kernel = None
            source = None
            from_store = False
    if kernel is None:
        try:
            source = generate_batch_kernel_source(config)
            STATS.generated += 1
            kernel = compile_batch_kernel(source, cfg_digest)
        except Exception:
            STATS.failures += 1
            STATS.failed_digests.add(failed_key)
            return None
    if not from_store:
        store = _active_source_store()
        if store is not None:
            try:
                store.put(batch_source_key(cfg_digest), source)
            except Exception:
                _discard_failed_store(store)

    STATS.compiled += 1
    _lru_put(_batch_kernels, cfg_digest, kernel, CONFIG_KERNEL_CACHE_LIMIT)
    return kernel


def vector_kernel_for(config: "MachineConfig") -> Optional[Callable]:
    """The compiled config-specialized vector kernel, or ``None`` on failure.

    Same two-level memoization and never-retry policy as
    :func:`batch_kernel_for`, keyed under a distinct store namespace so batch
    and vector sources for one config coexist in the ArtifactStore.
    """
    cfg_digest = config_digest(config)
    kernel = _lru_get(_vector_kernels, cfg_digest)
    if kernel is not None:
        STATS.memo_hits += 1
        return kernel
    failed_key = ("vector", cfg_digest)
    if failed_key in STATS.failed_digests:
        return None

    store = _active_source_store()
    source: Optional[str] = None
    from_store = False
    if store is not None:
        try:
            stored = store.get(vector_source_key(cfg_digest))
        except Exception:
            _discard_failed_store(store)
            store = None
            stored = None
        if isinstance(stored, str):
            source = stored
            from_store = True
            STATS.source_store_hits += 1

    kernel = None
    if source is not None:
        try:
            kernel = compile_vector_kernel(source, cfg_digest)
        except Exception:
            kernel = None
            source = None
            from_store = False
    if kernel is None:
        try:
            source = generate_vector_kernel_source(config)
            STATS.generated += 1
            kernel = compile_vector_kernel(source, cfg_digest)
        except Exception:
            STATS.failures += 1
            STATS.failed_digests.add(failed_key)
            return None
    if not from_store:
        store = _active_source_store()
        if store is not None:
            try:
                store.put(vector_source_key(cfg_digest), source)
            except Exception:
                _discard_failed_store(store)

    STATS.compiled += 1
    _lru_put(_vector_kernels, cfg_digest, kernel, CONFIG_KERNEL_CACHE_LIMIT)
    return kernel


def compile_kernel(source: str, key: tuple[str, str]) -> Callable:
    """Compile generated source and return its ``kernel_run`` callable."""
    filename = f"<repro-kernel {key[0][:12]}.{key[1][:12]}>"
    namespace: dict[str, object] = {}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["kernel_run"]  # type: ignore[return-value]


def compile_batch_kernel(source: str, cfg_digest: str) -> Callable:
    """Compile generated batch-kernel source; returns its ``batch_run``."""
    filename = f"<repro-batch-kernel {cfg_digest[:12]}>"
    namespace: dict[str, object] = {}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["batch_run"]  # type: ignore[return-value]


def compile_vector_kernel(source: str, cfg_digest: str) -> Callable:
    """Compile generated vector-kernel source; returns its ``vector_run``."""
    filename = f"<repro-vector-kernel {cfg_digest[:12]}>"
    namespace: dict[str, object] = {}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["vector_run"]  # type: ignore[return-value]


def kernel_source(config: "MachineConfig", program: "Program") -> str:
    """Freshly generated kernel source — for inspection and tests.

    Source text is deliberately not retained after compilation (only the
    code objects are memoized, bounded by ``KERNEL_CACHE_LIMIT``), so this
    regenerates on demand.
    """
    return generate_kernel_source(config, program)


def clear_kernels() -> None:
    """Drop every compiled kernel and reset counters (tests/benchmarks)."""
    _kernels.clear()
    _batch_kernels.clear()
    _vector_kernels.clear()
    STATS.reset()
    from repro.uarch import kernel_batch, kernel_vector

    kernel_batch.clear_batch_caches()
    kernel_vector.clear_vector_caches()
