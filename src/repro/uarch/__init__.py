"""Microarchitecture substrate: configurations, fault rates, structures, pipeline."""

from repro.uarch.config import (
    MachineConfig,
    baseline_config,
    config_a,
)
from repro.uarch.faultrates import FaultRateModel, edr_fault_rates, rhc_fault_rates, unit_fault_rates
from repro.uarch.structures import AceAccumulator, StructureName
from repro.uarch.pipeline import OutOfOrderCore, SimulationResult

__all__ = [
    "MachineConfig",
    "baseline_config",
    "config_a",
    "FaultRateModel",
    "unit_fault_rates",
    "rhc_fault_rates",
    "edr_fault_rates",
    "AceAccumulator",
    "StructureName",
    "OutOfOrderCore",
    "SimulationResult",
]
