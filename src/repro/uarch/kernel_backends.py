"""Pluggable kernel backends: how a simulation request becomes machine code.

PR 2 made experiment components (configs, fault rates, suites, objectives,
scales, evaluation backends) named registry entries; PR 4 did the same for
vulnerable structures.  This module closes the loop for the innermost layer:
*how* :meth:`repro.uarch.pipeline.OutOfOrderCore.run` executes is now a
registered component too, selectable per run via spec (``kernel_backend``),
CLI (``--kernel-backend``) or environment (``REPRO_KERNEL_BACKEND``):

* ``batch`` (default) — the population-at-once plane: one config-specialized
  compiled kernel, shared functional warm-up, operand plans memoized in the
  ArtifactStore (:mod:`repro.uarch.kernel_batch`).  Single-program runs
  (``run_one``) execute through the per-program ``source`` path, so
  non-batched callers are unchanged.
* ``source`` — the PR 5 per-(program, config) specialized source-codegen
  kernels, with interpreter fallback for unsupported shapes.
* ``interpreted`` — the reference loop, the semantics oracle every other
  backend is differentially tested against.
* ``vector`` — the batch plane with operand columns precomputed by numpy
  array arithmetic and replayed through an inlined flat-array hierarchy
  replica (:mod:`repro.uarch.kernel_vector`).  Requires the optional numpy
  dependency (``pip install repro-avf-stressmark[vector]``); programs the
  column lowering cannot express fall back to ``batch`` per program.

All backends are bit-identical by construction; selection is purely about
speed, which is why evaluation/fitness-cache digests deliberately do *not*
include the backend name — results cached under one backend are valid under
every other.

``REPRO_KERNEL=0`` (the PR 5 escape hatch) still forces the interpreter
regardless of any selection, so existing differential harnesses and the
kernel-smoke gate keep working unchanged.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.program import Program
    from repro.uarch.pipeline import OutOfOrderCore, SimulationResult

#: Environment selector; the ``REPRO_KERNEL=0`` kill switch takes precedence.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

DEFAULT_BACKEND = "batch"

KERNEL_BACKENDS = Registry("kernel backend")


class KernelBackend:
    """One way of executing a simulation (and batches of them).

    ``run_one`` simulates a single program; ``run_many`` a batch sharing
    whatever the backend can share (compiled code, warm state, operand
    plans).  Every backend must be bit-identical to the interpreted
    reference — the differential suite and the batch-smoke gate enforce it.
    """

    name = "base"

    def run_one(
        self, core: "OutOfOrderCore", program: "Program", max_instructions: int
    ) -> "SimulationResult":
        raise NotImplementedError

    def run_many(
        self, core: "OutOfOrderCore", programs: list["Program"], max_instructions: int
    ) -> list["SimulationResult"]:
        return [self.run_one(core, program, max_instructions) for program in programs]


class InterpretedBackend(KernelBackend):
    """The reference loop — the oracle the compiled backends diff against."""

    name = "interpreted"

    def run_one(self, core, program, max_instructions):
        return core.run_interpreted(program, max_instructions, True)


class SourceKernelBackend(KernelBackend):
    """Per-(program, config) specialized source-codegen kernels (PR 5)."""

    name = "source"

    def run_one(self, core, program, max_instructions):
        from repro.uarch import kernel as _kernel

        if _kernel.supports(program, True):
            kernel_run = _kernel.kernel_for(core.config, program)
            if kernel_run is not None:
                return kernel_run(core, program, max_instructions)
        return core.run_interpreted(program, max_instructions, True)


class BatchKernelBackend(SourceKernelBackend):
    """Config-specialized batch kernels with shared warm state.

    ``run_one`` inherits the ``source`` path — for isolated simulations the
    per-program kernel is already optimal and keeps single-run latency
    unchanged; the batch machinery engages through ``run_many``.
    """

    name = "batch"

    def run_many(self, core, programs, max_instructions):
        from repro.uarch import kernel_batch

        results = kernel_batch.run_many(core, programs, max_instructions)
        if results is None:
            # Batch kernel unavailable (codegen failure): per-genome path.
            return [self.run_one(core, program, max_instructions) for program in programs]
        return results


class VectorKernelBackend(BatchKernelBackend):
    """Batch plane with numpy-precomputed operand columns (PR 9).

    ``run_many`` lowers every vectorizable genome through the config's
    vector kernel; genomes the column lowering cannot express (setup
    sections, oversize bodies, pattern overflow) fall back to the batch
    kernel per program.  ``run_one`` inherits the ``source`` path, exactly
    like ``batch``.
    """

    name = "vector"

    def run_many(self, core, programs, max_instructions):
        from repro.uarch import kernel_vector

        results = kernel_vector.run_many(core, programs, max_instructions)
        if results is None:
            # Vector plane unavailable (no numpy / codegen failure): batch.
            return super().run_many(core, programs, max_instructions)
        return results


INTERPRETED = InterpretedBackend()
SOURCE = SourceKernelBackend()
BATCH = BatchKernelBackend()
VECTOR = VectorKernelBackend()


def unavailable_reason(name: str) -> Optional[str]:
    """Why a registered backend cannot run here, or ``None`` if it can.

    ``vector`` is always *registered* so specs naming it validate uniformly,
    but it needs numpy at run time; the CLI listing uses this to annotate
    the entry instead of hiding it.
    """
    if name == "vector":
        from repro.uarch import kernel_vector

        if not kernel_vector.numpy_available():
            return (
                "requires numpy — install the optional dependency with "
                "'pip install repro-avf-stressmark[vector]'"
            )
    return None


def _require_vector_backend() -> KernelBackend:
    reason = unavailable_reason("vector")
    if reason is not None:
        from repro.registry import RegistryError

        raise RegistryError(
            f"kernel backend 'vector' is unavailable: {reason}",
            suggestion="use the 'batch' backend, or install the [vector] extra",
        )
    return VECTOR


KERNEL_BACKENDS.register("batch", lambda: BATCH)
KERNEL_BACKENDS.register("source", lambda: SOURCE)
KERNEL_BACKENDS.register("interpreted", lambda: INTERPRETED)
KERNEL_BACKENDS.register("vector", _require_vector_backend)


def resolve(name: Optional[str] = None) -> KernelBackend:
    """The kernel backend a run should execute through.

    Precedence: the ``REPRO_KERNEL=0`` kill switch (forces the interpreter,
    preserving the PR 5 contract), then an explicit ``name`` (spec/CLI pin),
    then ``REPRO_KERNEL_BACKEND``, then the default (``batch``).
    """
    from repro.uarch import kernel as _kernel

    if not _kernel.kernel_enabled():
        return INTERPRETED
    if not name:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
    return KERNEL_BACKENDS.create(name)
