"""The ``vector`` kernel backend: population evaluation over operand columns.

The batch plane (PR 8, :mod:`repro.uarch.kernel_batch`) made a whole GA
population share one config-specialized kernel, one functional warm-up and
one operand plan.  This module removes the remaining per-op Python dispatch
from that kernel's hot loop by *lowering* each genome's dynamic instruction
stream to precomputed columns before the timing loop runs:

* **front-end column** — one stall penalty (0 or the miss penalty) per
  dynamic op, drawn from the frontend RNG stream in reference order;
* **mispredict column** — one bool per dynamic branch, produced by a flat
  integer replica of the tournament predictor driven over the whole branch
  trace at once (same RNG draws, same counter updates, no object dispatch);
* **memory columns** — per memory slot, the fully resolved address *parts*
  ``(address, dtlb_page, dl1_set, dl1_tag, dl1_word, dl1_line)`` for every
  iteration.  Strided / line-cover / pointer-chase / fixed patterns are
  closed-form and vectorize to whole numpy int64 columns; random patterns
  replay ``pattern.resolve`` in exact reference draw order (the memory RNG
  stream is separate from the branch/front-end streams, so pre-resolving it
  wholesale cannot perturb any other stream).

The timing loop itself (emitted by
:func:`repro.uarch.kernelgen.generate_vector_kernel_source`) then runs
against a :class:`VectorHierarchy` — the memory hierarchy's replacement,
lifetime and residency state flattened to per-slot integer columns with one
inlined ``access`` method — frozen once per (config, warm footprint) from
the batch plane's shared warm state and rematerialized per genome by cheap
list copies instead of deep object clones.

Everything on the AVF path stays integer-exact: word lifetime state packs
``cycle * 8 + event_code * 2 + write_ace`` into one int, residency credits
are integer sums, and end-of-run credit for still-live ACE writes is the
closed form ``count * final_cycle - sum(start_cycles)`` maintained
incrementally — so results are bit-identical to the interpreted reference
(enforced by the four-way differential matrix in
``tests/test_kernel_differential.py`` and the batch-smoke byte-compare).

Programs the lowering cannot express (explicit setup sections, oversize
bodies, address columns that overflow the int64 window) fall back to the
``batch`` plane per item — the same policy the source kernel uses.  numpy
is an optional dependency (the ``vector`` extra); without it
:func:`run_many` reports unavailable and the backend chain falls through to
``batch`` untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

try:  # optional dependency — the `vector` extra (pip install repro-avf-stressmark[vector])
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the numpy-less tests
    _np = None

from repro.isa.memoryref import (
    FixedPattern,
    LineCoverPattern,
    PointerChasePattern,
    StridedPattern,
)
from repro.uarch import kernel as _kernel
from repro.uarch import kernel_batch

if TYPE_CHECKING:  # pragma: no cover
    from repro.isa.program import Program
    from repro.uarch.config import MachineConfig

#: Dynamic-op ceiling for column materialization (memory bound, not a
#: correctness bound — larger runs fall back to the batch plane).
VECTOR_MAX_OPS = 500_000

#: Column values must stay well inside int64 under the decomposition
#: arithmetic; anything near the edge takes the (unbounded-int) fallback.
_INT64_GUARD = 1 << 60

#: Frozen warm-state LRU (see :data:`kernel_batch.WARM_CACHE_LIMIT`).
VECTOR_WARM_CACHE_LIMIT = 8

_MISSING = object()


class Unvectorizable(Exception):
    """This program cannot be lowered to columns; use the batch plane."""


class VectorStats:
    """In-process counters (observability for tests and the smoke gate)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.vector_runs = 0
        self.fallbacks = 0
        self.warm_freezes = 0


STATS = VectorStats()

#: (config digest, warm signature) -> frozen VectorWarmState or None.
_frozen_warm: dict[tuple, Optional["VectorWarmState"]] = {}

#: (global_entries, local_entries, choice_entries) -> predictor template.
_predictor_templates: dict[tuple, tuple] = {}


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return _np is not None


def clear_vector_caches() -> None:
    """Drop the vector plane's in-process caches (tests, ``clear_kernels``)."""
    _frozen_warm.clear()
    _predictor_templates.clear()
    STATS.reset()


def supports_vector(program: "Program") -> bool:
    """Whether the column lowering can express this program at all.

    Same gate as the batch plane's warm sharing plus the body-size bound:
    explicit setup sections replay stateful warm-up the columns cannot
    model, oversize bodies are not worth specializing.
    """
    return not program.setup and len(program.body) <= _kernel.MAX_KERNEL_BODY


# --------------------------------------------------------------- predictor


def _predictor_template(config: "MachineConfig") -> tuple:
    """Fresh flat tournament-predictor state for one config (copied lists).

    Mirrors :class:`repro.branch.predictors.HybridPredictor` construction:
    2-bit counters initialised to 2 (weakly taken), zeroed histories; the
    bimodal component masks its 12-bit global history, the local component
    keeps 10-bit histories indexing 1024 counters.
    """
    key = (
        config.branch_predictor_global_entries,
        config.branch_predictor_local_entries,
        config.branch_predictor_choice_entries,
    )
    template = _predictor_templates.get(key)
    if template is None:
        template = ([2] * key[0], [0] * key[1], [2] * 1024, [2] * key[2])
        _predictor_templates[key] = template
    global_table, local_histories, local_counters, choice_table = template
    return (
        list(global_table),
        list(local_histories),
        list(local_counters),
        list(choice_table),
    )


def _mispredict_column(
    config: "MachineConfig",
    body_infos: list,
    full_iters: int,
    tail_ops: int,
    last_iteration: int,
    branch_rng,
) -> list:
    """One mispredict bool per dynamic branch, in dynamic order.

    Replays the hybrid predictor update-for-update over the whole branch
    trace: outcome draw order (only non-loop-closing branches draw), choice
    update gating, counter saturation and history shifts all match
    :meth:`HybridPredictor.update` exactly.
    """
    branch_slots = [
        (index, info[16], bool(info[17]), info[18])
        for index, info in enumerate(body_infos)
        if info[5]
    ]
    if not branch_slots:
        return []
    global_table, local_histories, local_counters, choice_table = _predictor_template(config)
    global_index_mask = len(global_table) - 1
    local_history_mask = len(local_histories) - 1
    choice_mask = len(choice_table) - 1
    global_history = 0
    draw = branch_rng.raw().random
    mispredicts: list[bool] = []
    append = mispredicts.append

    def run_iteration(iteration: int, limit: Optional[int]) -> None:
        nonlocal global_history
        closing_taken = iteration < last_iteration
        for index, taken_probability, loop_closing, pc in branch_slots:
            if limit is not None and index >= limit:
                break
            taken = closing_taken if loop_closing else draw() < taken_probability
            gi = (pc ^ global_history) & global_index_mask
            global_prediction = global_table[gi] > 1
            hi = pc & local_history_mask
            history = local_histories[hi]
            local_prediction = local_counters[history] > 1
            ci = pc & choice_mask
            prediction = global_prediction if choice_table[ci] > 1 else local_prediction
            if global_prediction != local_prediction:
                if global_prediction == taken:
                    if choice_table[ci] < 3:
                        choice_table[ci] += 1
                elif choice_table[ci] > 0:
                    choice_table[ci] -= 1
            if taken:
                if global_table[gi] < 3:
                    global_table[gi] += 1
            elif global_table[gi] > 0:
                global_table[gi] -= 1
            global_history = ((global_history << 1) | taken) & 4095
            if taken:
                if local_counters[history] < 3:
                    local_counters[history] += 1
            elif local_counters[history] > 0:
                local_counters[history] -= 1
            local_histories[hi] = ((history << 1) | taken) & 1023
            append(prediction != taken)

    for iteration in range(full_iters):
        run_iteration(iteration, None)
    if tail_ops:
        run_iteration(full_iters, tail_ops)
    return mispredicts


# ------------------------------------------------------------ memory columns


def _closed_form_addresses(pattern, count: int):
    """Whole-column addresses for a closed-form pattern, or None.

    Eligibility is by *exact* type (subclasses may override ``resolve``);
    any column whose intermediate arithmetic could leave the int64 guard
    window returns None and takes the ordered python-int path instead.
    """
    kind = type(pattern)
    iterations = None
    if kind is FixedPattern:
        if abs(pattern.address) < _INT64_GUARD:
            return _np.full(count, pattern.address, dtype=_np.int64)
        return None
    if kind is StridedPattern or kind is PointerChasePattern:
        if (
            count * pattern.stride < _INT64_GUARD
            and abs(pattern.base) + pattern.region < _INT64_GUARD
        ):
            iterations = _np.arange(count, dtype=_np.int64)
            return pattern.base + (iterations * pattern.stride) % pattern.region
        return None
    if kind is LineCoverPattern:
        reach = count + abs(pattern.iteration_offset) + 1
        scale = max(pattern.line_bytes, pattern.slots, pattern.word_bytes, 1)
        if (
            reach * scale < _INT64_GUARD
            and abs(pattern.base) + pattern.region < _INT64_GUARD
        ):
            effective = _np.arange(count, dtype=_np.int64) + pattern.iteration_offset
            if pattern.iteration_offset:
                _np.maximum(effective, 0, out=effective)
            words_per_line = max(1, pattern.line_bytes // pattern.word_bytes)
            word_index = (effective * pattern.slots + pattern.slot) % words_per_line
            return (
                pattern.base
                + (effective * pattern.line_bytes) % pattern.region
                + word_index * pattern.word_bytes
            )
        return None
    return None


def _memory_columns(
    config: "MachineConfig",
    body_infos: list,
    full_iters: int,
    tail_ops: int,
    memory_rng,
) -> list:
    """Resolved address-part columns per body slot (None for non-memory ops).

    Each entry is a list of ``(address, dtlb_page, dl1_set, dl1_tag,
    dl1_word, dl1_line)`` tuples indexed by iteration.  Slots whose pattern
    draws randomness (or whose closed form could overflow) are resolved in
    the exact reference order — iteration-major, body order within an
    iteration — so the memory RNG stream is untouched.
    """
    dl1 = config.dl1
    line_bytes = dl1.line_bytes
    num_sets = dl1.num_sets
    word_bytes = dl1.word_bytes
    page_bytes = config.dtlb.page_bytes

    columns: list = [None] * len(body_infos)
    address_arrays: dict[int, object] = {}
    ordered: list[tuple] = []
    for index, info in enumerate(body_infos):
        is_nop, is_store = info[2], info[4]
        fixed_latency, pattern = info[14], info[15]
        issue_resolve = (not is_nop) and fixed_latency is None
        commit_resolve = is_store and pattern is not None
        if issue_resolve and commit_resolve:
            raise Unvectorizable("op resolves its address twice per instance")
        if not (issue_resolve or commit_resolve):
            continue
        count = full_iters + (1 if index < tail_ops else 0)
        addresses = _closed_form_addresses(pattern, count)
        if addresses is None:
            ordered.append((index, pattern))
        else:
            address_arrays[index] = addresses

    if ordered:
        rows: dict[int, list] = {index: [] for index, _ in ordered}
        resolvers = [(index, pattern, rows[index].append) for index, pattern in ordered]
        for iteration in range(full_iters):
            for _, pattern, append in resolvers:
                append(pattern.resolve(iteration, memory_rng))
        if tail_ops:
            for index, pattern, append in resolvers:
                if index < tail_ops:
                    append(pattern.resolve(full_iters, memory_rng))
        for index, values in rows.items():
            if values and not (0 <= min(values) and max(values) < _INT64_GUARD):
                if min(values) < 0:
                    # The reference raises on the first negative address; the
                    # batch fallback reproduces that exact error.
                    raise Unvectorizable("negative address stream")
                raise Unvectorizable("address stream exceeds the int64 window")
            address_arrays[index] = _np.asarray(values, dtype=_np.int64)

    for index, addresses in address_arrays.items():
        if addresses.size and int(addresses.min()) < 0:
            raise Unvectorizable("negative address stream")
        pages = addresses // page_bytes
        line_addresses = addresses // line_bytes
        set_indices = line_addresses % num_sets
        tags = line_addresses // num_sets
        word_indices = (addresses % line_bytes) // word_bytes
        line_numbers = tags * num_sets + set_indices
        columns[index] = list(
            zip(
                addresses.tolist(),
                pages.tolist(),
                set_indices.tolist(),
                tags.tolist(),
                word_indices.tolist(),
                line_numbers.tolist(),
            )
        )
    return columns


def build_columns(
    config: "MachineConfig",
    body_infos: list,
    full_iters: int,
    tail_ops: int,
    last_iteration: int,
    memory_rng,
    branch_rng,
    frontend_rng,
    frontend_miss_rate: float,
    frontend_miss_penalty: int,
) -> tuple:
    """The whole pre-pass: (frontend, mispredict, memory) columns.

    Raises :class:`Unvectorizable` before any caller-visible state is
    touched — the generated kernel calls this before materializing warm
    state, so a failed lowering falls back to the batch plane cleanly.
    All three RNG streams are independent spawns, so draining each in its
    own pre-pass preserves every stream's reference draw sequence.
    """
    total_ops = full_iters * len(body_infos) + tail_ops
    if total_ops > VECTOR_MAX_OPS:
        raise Unvectorizable(f"{total_ops} dynamic ops exceed the column budget")
    if frontend_miss_rate > 0.0:
        draw = frontend_rng.raw().random
        frontend = [
            frontend_miss_penalty if draw() < frontend_miss_rate else 0
            for _ in range(total_ops)
        ]
    else:
        frontend = None
    mispredicts = _mispredict_column(
        config, body_infos, full_iters, tail_ops, last_iteration, branch_rng
    )
    memory = _memory_columns(config, body_infos, full_iters, tail_ops, memory_rng)
    return frontend, mispredicts, memory


# --------------------------------------------------------- flat hierarchy

#: Word lifetime events packed into the low three state bits
#: (``cycle * 8 + code``): FILL=0, READ=2, WRITE=4, +1 when the recorded
#: write was ACE.  ``state & 7 == 5`` is therefore "ACE write still live" —
#: the only terminal state that earns credit on eviction or finalize.
_EVENT_CODES = {"fill": 0, "read": 2, "write": 4}


class VectorHierarchy:
    """DL1 + L2 + DTLB (+ L2 TLB) flattened to integer columns.

    One object per genome run, rematerialized from a frozen
    :class:`VectorWarmState` by shallow list copies.  Semantically a
    statement-for-statement replica of :meth:`MemoryHierarchy.access_parts`
    restricted to what the simulation result can observe: latencies, access
    and miss counts, the load-side L2 miss counter, and integer ACE cycle
    totals per structure.  LRU victims are found by a first-minimum scan in
    dict insertion order — identical to the reference ``min()`` because
    neither implementation ever reorders entries in place.
    """

    __slots__ = (
        "memory_latency", "tlb_miss_penalty", "l2_tlb_hit_latency",
        "dl1_hit_latency", "l2_hit_latency",
        "dl1_line_bytes", "dl1_assoc", "dl1_wpl",
        "l2_line_bytes", "l2_num_sets", "l2_word_bytes", "l2_assoc", "l2_wpl",
        "has_l2_tlb", "l2_tlb_page_bytes",
        "dl1_word_bits", "l2_word_bits", "dtlb_entry_bits", "l2_tlb_entry_bits",
        "dl1_sets", "dl1_line_no", "dl1_dirty", "dl1_dirty_ace", "dl1_lu",
        "dl1_ws", "dl1_free", "dl1_accesses", "dl1_misses",
        "dl1_ace_cycles", "dl1_wa_count", "dl1_wa_sum",
        "l2_sets", "l2_lu", "l2_ws", "l2_free", "l2_accesses", "l2_misses",
        "l2_ace_cycles", "l2_wa_count", "l2_wa_sum",
        "dtlb_map", "dtlb_first", "dtlb_last", "dtlb_lu", "dtlb_rec",
        "dtlb_free", "dtlb_accesses", "dtlb_misses", "dtlb_ace_cycles",
        "l2_tlb_map", "l2_tlb_first", "l2_tlb_last", "l2_tlb_lu",
        "l2_tlb_rec", "l2_tlb_free", "l2_tlb_ace_cycles",
        "load_l2_misses",
    )

    def access(self, parts: tuple, is_write: bool, cycle: int, ace: bool) -> int:
        """One memory access from precomputed parts; returns its latency."""
        address, page, set_index, tag, word, line_number = parts

        # ---- DTLB (Tlb.access with the page precomputed)
        self.dtlb_accesses += 1
        dtlb_map = self.dtlb_map
        slot = dtlb_map.get(page)
        if slot is not None:
            self.dtlb_lu[slot] = cycle
            if ace:
                if self.dtlb_first[slot] < 0:
                    self.dtlb_first[slot] = cycle
                self.dtlb_last[slot] = cycle
            latency = 0
        else:
            self.dtlb_misses += 1
            free = self.dtlb_free
            if not free:
                lu = self.dtlb_lu
                best = None
                victim_page = victim_slot = -1
                for entry_page, entry_slot in dtlb_map.items():
                    value = lu[entry_slot]
                    if best is None or value < best:
                        best = value
                        victim_page = entry_page
                        victim_slot = entry_slot
                del dtlb_map[victim_page]
                first = self.dtlb_first[victim_slot]
                if first >= 0:
                    duration = self.dtlb_last[victim_slot] - first
                    if duration > 0:
                        self.dtlb_ace_cycles += duration
                free.append(victim_slot)
            slot = free.pop()
            dtlb_map[page] = slot
            if ace:
                self.dtlb_first[slot] = cycle
                self.dtlb_last[slot] = cycle
            else:
                self.dtlb_first[slot] = -1
                self.dtlb_last[slot] = -1
            self.dtlb_lu[slot] = cycle
            self.dtlb_rec[slot] = False
            if self.has_l2_tlb and self._l2_tlb_access(address, cycle, ace):
                latency = self.l2_tlb_hit_latency
            else:
                latency = self.tlb_miss_penalty

        # ---- DL1 (Cache.access_parts with the decomposition precomputed)
        self.dl1_accesses += 1
        cache_set = self.dl1_sets[set_index]
        slot = cache_set.get(tag)
        ws = self.dl1_ws
        evicted_dirty = False
        evicted_address = 0
        evicted_ace = False
        if slot is None:
            self.dl1_misses += 1
            if len(cache_set) >= self.dl1_assoc:
                lu = self.dl1_lu
                best = None
                victim_tag = victim_slot = -1
                for entry_tag, entry_slot in cache_set.items():
                    value = lu[entry_slot]
                    if best is None or value < best:
                        best = value
                        victim_tag = entry_tag
                        victim_slot = entry_slot
                del cache_set[victim_tag]
                wpl = self.dl1_wpl
                for offset in range(victim_slot * wpl, victim_slot * wpl + wpl):
                    state = ws[offset]
                    if state >= 0:
                        if state & 7 == 5:
                            start = state >> 3
                            self.dl1_wa_count -= 1
                            self.dl1_wa_sum -= start
                            duration = cycle - start
                            if duration > 0:
                                self.dl1_ace_cycles += duration
                        ws[offset] = -1
                if self.dl1_dirty[victim_slot]:
                    evicted_dirty = True
                    evicted_address = self.dl1_line_no[victim_slot] * self.dl1_line_bytes
                    evicted_ace = self.dl1_dirty_ace[victim_slot]
                self.dl1_free.append(victim_slot)
            slot = self.dl1_free.pop()
            cache_set[tag] = slot
            self.dl1_line_no[slot] = line_number
            self.dl1_dirty[slot] = False
            self.dl1_dirty_ace[slot] = False
            index = slot * self.dl1_wpl + word
            ws[index] = cycle * 8  # eager fill of the accessed word
            hit = False
        else:
            hit = True
            index = slot * self.dl1_wpl + word
            if ws[index] < 0:
                ws[index] = cycle * 8  # lazy fill of an untouched word
        self.dl1_lu[slot] = cycle
        state = ws[index]
        if state & 7 == 5:
            self.dl1_wa_count -= 1
            self.dl1_wa_sum -= state >> 3
        if is_write:
            if ace:
                ws[index] = cycle * 8 + 5
                self.dl1_wa_count += 1
                self.dl1_wa_sum += cycle
            else:
                ws[index] = cycle * 8 + 4
            self.dl1_dirty[slot] = True
            if ace:
                self.dl1_dirty_ace[slot] = True
        else:
            if ace:
                duration = cycle - (state >> 3)
                if duration > 0:
                    self.dl1_ace_cycles += duration
            ws[index] = cycle * 8 + 2 + (state & 1)

        latency += self.dl1_hit_latency
        if not hit:
            l2_hit = self._l2_access(address, False, cycle, ace)
            latency += self.l2_hit_latency
            if not l2_hit:
                latency += self.memory_latency
                if not is_write:
                    self.load_l2_misses += 1
        if evicted_dirty:
            # Dirty DL1 victim written back into the L2 (after the line fill,
            # exactly the reference's ordering).
            self._l2_access(evicted_address, True, cycle, evicted_ace)
        return latency

    def _l2_access(self, address: int, is_write: bool, cycle: int, ace: bool) -> bool:
        """L2 probe; returns hit.  Dirty L2 victims go to memory untracked."""
        self.l2_accesses += 1
        line_address = address // self.l2_line_bytes
        num_sets = self.l2_num_sets
        set_index = line_address % num_sets
        tag = line_address // num_sets
        word = (address % self.l2_line_bytes) // self.l2_word_bytes
        cache_set = self.l2_sets[set_index]
        slot = cache_set.get(tag)
        ws = self.l2_ws
        if slot is None:
            self.l2_misses += 1
            if len(cache_set) >= self.l2_assoc:
                lu = self.l2_lu
                best = None
                victim_tag = victim_slot = -1
                for entry_tag, entry_slot in cache_set.items():
                    value = lu[entry_slot]
                    if best is None or value < best:
                        best = value
                        victim_tag = entry_tag
                        victim_slot = entry_slot
                del cache_set[victim_tag]
                wpl = self.l2_wpl
                for offset in range(victim_slot * wpl, victim_slot * wpl + wpl):
                    state = ws[offset]
                    if state >= 0:
                        if state & 7 == 5:
                            start = state >> 3
                            self.l2_wa_count -= 1
                            self.l2_wa_sum -= start
                            duration = cycle - start
                            if duration > 0:
                                self.l2_ace_cycles += duration
                        ws[offset] = -1
                self.l2_free.append(victim_slot)
            slot = self.l2_free.pop()
            cache_set[tag] = slot
            index = slot * self.l2_wpl + word
            ws[index] = cycle * 8
            hit = False
        else:
            hit = True
            index = slot * self.l2_wpl + word
            if ws[index] < 0:
                ws[index] = cycle * 8
        self.l2_lu[slot] = cycle
        state = ws[index]
        if state & 7 == 5:
            self.l2_wa_count -= 1
            self.l2_wa_sum -= state >> 3
        if is_write:
            if ace:
                ws[index] = cycle * 8 + 5
                self.l2_wa_count += 1
                self.l2_wa_sum += cycle
            else:
                ws[index] = cycle * 8 + 4
        else:
            if ace:
                duration = cycle - (state >> 3)
                if duration > 0:
                    self.l2_ace_cycles += duration
            ws[index] = cycle * 8 + 2 + (state & 1)
        return hit

    def _l2_tlb_access(self, address: int, cycle: int, ace: bool) -> bool:
        """Second-level TLB probe (Tlb.access; stats are unobservable)."""
        page = address // self.l2_tlb_page_bytes
        tlb_map = self.l2_tlb_map
        slot = tlb_map.get(page)
        if slot is not None:
            self.l2_tlb_lu[slot] = cycle
            if ace:
                if self.l2_tlb_first[slot] < 0:
                    self.l2_tlb_first[slot] = cycle
                self.l2_tlb_last[slot] = cycle
            return True
        free = self.l2_tlb_free
        if not free:
            lu = self.l2_tlb_lu
            best = None
            victim_page = victim_slot = -1
            for entry_page, entry_slot in tlb_map.items():
                value = lu[entry_slot]
                if best is None or value < best:
                    best = value
                    victim_page = entry_page
                    victim_slot = entry_slot
            del tlb_map[victim_page]
            first = self.l2_tlb_first[victim_slot]
            if first >= 0:
                duration = self.l2_tlb_last[victim_slot] - first
                if duration > 0:
                    self.l2_tlb_ace_cycles += duration
            free.append(victim_slot)
        slot = free.pop()
        tlb_map[page] = slot
        if ace:
            self.l2_tlb_first[slot] = cycle
            self.l2_tlb_last[slot] = cycle
        else:
            self.l2_tlb_first[slot] = -1
            self.l2_tlb_last[slot] = -1
        self.l2_tlb_lu[slot] = cycle
        self.l2_tlb_rec[slot] = False
        return False

    def finalize(self, cycle: int) -> None:
        """End-of-run credit (MemoryHierarchy.finalize, closed form).

        Live ACE-write words credit ``cycle - start`` each; the loop over
        words is replaced by the incrementally maintained ``count * cycle -
        sum(starts)`` (every start is <= cycle, so the positive-duration
        gate is vacuous and the sum is exact integer arithmetic).  TLB
        entries retire individually — recurrent entries extend their ACE
        window to the end of the run first, exactly like ``Tlb.finalize``.
        """
        self.dl1_ace_cycles += self.dl1_wa_count * cycle - self.dl1_wa_sum
        self.l2_ace_cycles += self.l2_wa_count * cycle - self.l2_wa_sum
        first, last, rec = self.dtlb_first, self.dtlb_last, self.dtlb_rec
        for slot in self.dtlb_map.values():
            start = first[slot]
            if rec[slot] and start >= 0 and last[slot] < cycle:
                last[slot] = cycle
            if start >= 0:
                duration = last[slot] - start
                if duration > 0:
                    self.dtlb_ace_cycles += duration
        self.dtlb_map.clear()
        if self.has_l2_tlb:
            first, last, rec = self.l2_tlb_first, self.l2_tlb_last, self.l2_tlb_rec
            for slot in self.l2_tlb_map.values():
                start = first[slot]
                if rec[slot] and start >= 0 and last[slot] < cycle:
                    last[slot] = cycle
                if start >= 0:
                    duration = last[slot] - start
                    if duration > 0:
                        self.l2_tlb_ace_cycles += duration
            self.l2_tlb_map.clear()


def install_trackers(ledger, hierarchy: VectorHierarchy) -> None:
    """Fold the flat hierarchy's ACE totals into a fresh ledger.

    A fresh ledger has no word/residency trackers registered, so
    ``collect()`` folds nothing for the storage structures; this performs
    the exact same single ``add_bit_cycles`` per account that the reference
    trackers' fold would (one float multiply per structure, from zero).
    """
    ledger.account("dl1").add_bit_cycles(
        float(hierarchy.dl1_ace_cycles) * hierarchy.dl1_word_bits
    )
    ledger.account("l2").add_bit_cycles(
        float(hierarchy.l2_ace_cycles) * hierarchy.l2_word_bits
    )
    ledger.account("dtlb").add_bit_cycles(
        float(hierarchy.dtlb_ace_cycles) * hierarchy.dtlb_entry_bits
    )
    if hierarchy.has_l2_tlb:
        ledger.account("l2_tlb").add_bit_cycles(
            float(hierarchy.l2_tlb_ace_cycles) * hierarchy.l2_tlb_entry_bits
        )


# ------------------------------------------------------------- warm freezing


def _freeze_cache(cache) -> Optional[tuple]:
    """Flatten one warm Cache to column template state (None if unprovable).

    The flat replica relies on the invariant "word touched <=> word state
    live in the tracker"; the freeze *checks* it (count and membership)
    rather than assuming it, so any warm-up path that breaks it degrades to
    the batch plane instead of silently diverging.
    """
    num_sets = cache._num_sets
    associativity = cache._associativity
    words_per_line = cache._words_per_line
    num_lines = num_sets * associativity
    sets: list[dict] = []
    line_no = [0] * num_lines
    dirty = [False] * num_lines
    dirty_ace = [False] * num_lines
    last_use = [0] * num_lines
    word_state = [-1] * (num_lines * words_per_line)
    live = cache.lifetime._live
    wa_count = 0
    wa_sum = 0
    slot = 0
    installed = 0
    for set_index, cache_set in enumerate(cache._sets):
        flat_set: dict = {}
        for tag, line in cache_set.items():
            line_number = tag * num_sets + set_index
            flat_set[tag] = slot
            line_no[slot] = line_number
            dirty[slot] = line.dirty
            dirty_ace[slot] = line.dirty_ace
            last_use[slot] = line.last_use
            base = slot * words_per_line
            for word in line.words_touched:
                state = live.get((line_number, word))
                if state is None:
                    return None
                packed = state[1] * 8 + _EVENT_CODES[state[0].value] + (1 if state[2] else 0)
                word_state[base + word] = packed
                if packed & 7 == 5:
                    wa_count += 1
                    wa_sum += state[1]
                installed += 1
            slot += 1
        sets.append(flat_set)
    if installed != len(live):
        return None  # live word state outside any resident line
    free = list(range(num_lines - 1, slot - 1, -1))
    stats = cache.stats
    return (
        sets, line_no, dirty, dirty_ace, last_use, word_state, free,
        stats.accesses, stats.misses,
        cache.lifetime.ace_word_cycles, wa_count, wa_sum,
    )


def _freeze_tlb(tlb) -> Optional[tuple]:
    """Flatten one warm Tlb to column template state (None if unprovable)."""
    capacity = tlb._capacity
    tlb_map: dict = {}
    first = [-1] * capacity
    last = [-1] * capacity
    last_use = [0] * capacity
    recurrent = [False] * capacity
    slot = 0
    for page, entry in tlb._entries.items():
        if (entry.first_ace_use is None) != (entry.last_ace_use is None):
            return None  # the flat replica assumes they are set together
        tlb_map[page] = slot
        if entry.first_ace_use is not None:
            first[slot] = entry.first_ace_use
            last[slot] = entry.last_ace_use
        last_use[slot] = entry.last_use
        recurrent[slot] = entry.recurrent
        slot += 1
    free = list(range(capacity - 1, slot - 1, -1))
    stats = tlb.stats
    return (
        tlb_map, first, last, last_use, recurrent, free,
        stats.accesses, stats.misses,
        tlb._residency.ace_entry_cycles,
    )


class VectorWarmState:
    """Frozen flat warm state, rematerialized per genome by list copies."""

    __slots__ = ("constants", "dl1", "l2", "dtlb", "l2_tlb")

    def __init__(self, constants: dict, dl1, l2, dtlb, l2_tlb) -> None:
        self.constants = constants
        self.dl1 = dl1
        self.l2 = l2
        self.dtlb = dtlb
        self.l2_tlb = l2_tlb

    @classmethod
    def freeze(
        cls, config: "MachineConfig", master: "kernel_batch.WarmState"
    ) -> Optional["VectorWarmState"]:
        """Flatten the batch plane's warm master (read-only; None = fall back)."""
        hierarchy = master._hierarchy
        dl1 = _freeze_cache(hierarchy.dl1)
        l2 = _freeze_cache(hierarchy.l2)
        dtlb = _freeze_tlb(hierarchy.dtlb)
        if dl1 is None or l2 is None or dtlb is None:
            return None
        l2_tlb = None
        if hierarchy.l2_tlb is not None:
            l2_tlb = _freeze_tlb(hierarchy.l2_tlb)
            if l2_tlb is None:
                return None
        constants = {
            "memory_latency": hierarchy.memory_latency,
            "tlb_miss_penalty": hierarchy.tlb_miss_penalty,
            "l2_tlb_hit_latency": hierarchy.l2_tlb_hit_latency,
            "dl1_hit_latency": hierarchy._dl1_hit_latency,
            "l2_hit_latency": hierarchy._l2_hit_latency,
            "dl1_line_bytes": config.dl1.line_bytes,
            "dl1_assoc": config.dl1.associativity,
            "dl1_wpl": config.dl1.words_per_line,
            "l2_line_bytes": config.l2.line_bytes,
            "l2_num_sets": config.l2.num_sets,
            "l2_word_bytes": config.l2.word_bytes,
            "l2_assoc": config.l2.associativity,
            "l2_wpl": config.l2.words_per_line,
            "has_l2_tlb": hierarchy.l2_tlb is not None,
            "l2_tlb_page_bytes": (
                config.l2_tlb.page_bytes if config.l2_tlb is not None else 0
            ),
            "dl1_word_bits": config.dl1.word_bytes * 8,
            "l2_word_bits": config.l2.word_bytes * 8,
            "dtlb_entry_bits": config.dtlb.entry_bits,
            "l2_tlb_entry_bits": (
                config.l2_tlb.entry_bits if config.l2_tlb is not None else 0
            ),
        }
        return cls(constants, dl1, l2, dtlb, l2_tlb)

    def materialize(self) -> VectorHierarchy:
        """A fresh mutable VectorHierarchy seeded from the frozen template."""
        vh = VectorHierarchy.__new__(VectorHierarchy)
        for name, value in self.constants.items():
            setattr(vh, name, value)

        sets, line_no, dirty, dirty_ace, lu, ws, free, acc, miss, ace, wa_c, wa_s = self.dl1
        vh.dl1_sets = [dict(entry) for entry in sets]
        vh.dl1_line_no = line_no.copy()
        vh.dl1_dirty = dirty.copy()
        vh.dl1_dirty_ace = dirty_ace.copy()
        vh.dl1_lu = lu.copy()
        vh.dl1_ws = ws.copy()
        vh.dl1_free = free.copy()
        vh.dl1_accesses = acc
        vh.dl1_misses = miss
        vh.dl1_ace_cycles = ace
        vh.dl1_wa_count = wa_c
        vh.dl1_wa_sum = wa_s

        sets, _, _, _, lu, ws, free, acc, miss, ace, wa_c, wa_s = self.l2
        vh.l2_sets = [dict(entry) for entry in sets]
        vh.l2_lu = lu.copy()
        vh.l2_ws = ws.copy()
        vh.l2_free = free.copy()
        vh.l2_accesses = acc
        vh.l2_misses = miss
        vh.l2_ace_cycles = ace
        vh.l2_wa_count = wa_c
        vh.l2_wa_sum = wa_s

        tlb_map, first, last, lu, rec, free, acc, miss, ace = self.dtlb
        vh.dtlb_map = dict(tlb_map)
        vh.dtlb_first = first.copy()
        vh.dtlb_last = last.copy()
        vh.dtlb_lu = lu.copy()
        vh.dtlb_rec = rec.copy()
        vh.dtlb_free = free.copy()
        vh.dtlb_accesses = acc
        vh.dtlb_misses = miss
        vh.dtlb_ace_cycles = ace

        if self.l2_tlb is not None:
            tlb_map, first, last, lu, rec, free, _, _, ace = self.l2_tlb
            vh.l2_tlb_map = dict(tlb_map)
            vh.l2_tlb_first = first.copy()
            vh.l2_tlb_last = last.copy()
            vh.l2_tlb_lu = lu.copy()
            vh.l2_tlb_rec = rec.copy()
            vh.l2_tlb_free = free.copy()
            vh.l2_tlb_ace_cycles = ace

        vh.load_l2_misses = 0
        return vh


def _frozen_warm_for(
    config: "MachineConfig", program: "Program"
) -> Optional[VectorWarmState]:
    """The frozen warm state for this (config, footprint), LRU-memoized.

    Failed freezes are cached too (as None) so an unfreezable footprint is
    probed once, not per genome.
    """
    key = (_kernel.config_digest(config), kernel_batch.warm_signature(program))
    cached = _frozen_warm.get(key, _MISSING)
    if cached is not _MISSING:
        del _frozen_warm[key]
        _frozen_warm[key] = cached  # refresh LRU recency
        return cached
    master = kernel_batch.warm_state_for(config, program)
    state = VectorWarmState.freeze(config, master)
    STATS.warm_freezes += 1
    while len(_frozen_warm) >= VECTOR_WARM_CACHE_LIMIT:
        del _frozen_warm[next(iter(_frozen_warm))]
    _frozen_warm[key] = state
    return state


# ------------------------------------------------------------------ running


def _run_via_batch(core, config, program, max_instructions: int, rows):
    """One program through the batch plane (the per-item fallback)."""
    kernel = _kernel.batch_kernel_for(config)
    if kernel is not None:
        warm = None
        if kernel_batch.supports_warm_sharing(program):
            warm = kernel_batch.warm_state_for(config, program)
        return kernel(core, program, max_instructions, rows, warm)
    from repro.uarch.kernel_backends import BATCH

    return BATCH.run_one(core, program, max_instructions)


def run_many(core, programs, max_instructions: int = 50_000):
    """Evaluate ``programs`` through the vector plane.

    Returns None when the plane is unavailable for this process/config
    (numpy missing, codegen failure) — the backend then falls through to
    the batch plane wholesale.  Individual programs the lowering cannot
    express fall back to the batch plane per item.
    """
    if _np is None or not programs:
        return None
    config = core.config
    kernel = _kernel.vector_kernel_for(config)
    if kernel is None:
        return None
    config_dig = _kernel.config_digest(config)
    program_digests = [_kernel.program_digest(program) for program in programs]
    plans = kernel_batch._plan_for(core, config_dig, programs, program_digests)
    results = []
    for program, digest in zip(programs, program_digests):
        if not program.body:
            results.append(core.run_interpreted(program, max_instructions, True))
            continue
        if supports_vector(program):
            warm = _frozen_warm_for(config, program)
            if warm is not None:
                try:
                    result = kernel(core, program, max_instructions, plans[digest], warm)
                except Unvectorizable:
                    result = None
                if result is not None:
                    STATS.vector_runs += 1
                    results.append(result)
                    continue
        STATS.fallbacks += 1
        results.append(_run_via_batch(core, config, program, max_instructions, plans[digest]))
    return results
