"""Program-specialized simulator code generation.

Stressmarks and synthetic workload proxies are a tiny static body repeated
thousands of times, which is the ideal shape for program-specialized code
generation — the same trick :mod:`repro.stressmark.codegen` uses to emit C
stressmarks, turned inward on our own simulator.  Given a
:class:`~repro.isa.program.Program` and a
:class:`~repro.uarch.config.MachineConfig`, :func:`generate_kernel_source`
emits the Python source of a ``kernel_run(core, program, max_instructions)``
function that is semantically identical to
:meth:`repro.uarch.pipeline.OutOfOrderCore.run_interpreted` (with
``functional_setup=True``) but specialized to the program:

* the per-dynamic-op tuple unpacking and every static class flag
  (``is_nop``/``is_lq``/``is_store``/``writes_reg``/branch behaviour) are
  constant-folded away — each static instruction becomes a straight-line
  block containing only the statements its class can ever execute;
* machine-configuration constants (widths, queue depths, latencies,
  bits-per-entry) are baked in as literals;
* fixed execution latencies fold into ``complete = issue + N``; the
  functional-unit ACE credit of arithmetic ops folds into a single literal;
* address patterns with closed-form address streams (fixed, strided,
  pointer-chase, line-cover) are inlined as integer arithmetic, and
  :class:`~repro.isa.memoryref.RandomPattern` draws through the *same*
  hoisted ``memory_rng.randint`` the interpreter uses;
* per-op ``committed``/``committed_ace``/``branch_count`` bookkeeping
  becomes closed-form arithmetic over static per-iteration counts and
  prefix tables.

**Bit-identity contract.**  The generated code performs the same sequence of
floating-point additions into the same accumulators, draws the same RNG
streams in the same order, and probes the memory hierarchy / branch
predictor with the same arguments at the same simulated cycles as the
interpreter.  Constant folding only ever combines values that the
interpreter also combines in one left-associated expression, so every folded
literal equals the interpreter's intermediate exactly.  The differential
suite (``tests/test_kernel_differential.py``) and the ``kernel-smoke``
tier-2 gate enforce the contract.

The final partial loop iteration (when ``max_instructions`` is not a
multiple of the body length) runs through a *generic* transcription of the
interpreter's per-op body over the same precomputed info tuples — constant
code size regardless of body length, and trivially in lockstep with the
reference implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa.memoryref import (
    FixedPattern,
    LineCoverPattern,
    PointerChasePattern,
    RandomPattern,
    StridedPattern,
)
from repro.isa.program import BranchBehavior, Program
from repro.uarch.config import MachineConfig
from repro.uarch.structures import StructureName
from repro.vuln.ledger import VulnerabilityLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: Bump when the generated-source layout or semantics change: persisted
#: sources are keyed by this, so stale kernels can never be loaded.
KERNEL_SCHEMA = 1


def _lit(value: object) -> str:
    """Exact literal for an int/float/bool (floats round-trip via repr)."""
    return repr(value)


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        if line:
            self.lines.append("    " * self.indent + line)
        else:
            self.lines.append("")

    def block(self, *lines: str) -> None:
        for line in lines:
            self.emit(line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


def _address_statements(pattern, index: int, needs: list[int]) -> tuple[list[str], str]:
    """(setup statements, address expression) inlining one address pattern.

    Patterns with closed-form streams become integer arithmetic over
    ``iteration``; :class:`RandomPattern` draws via the hoisted
    ``memory_randint`` (the same ``memory_rng.randint`` call the pattern's
    ``resolve`` performs, so RNG consumption is unchanged).  Unknown pattern
    types fall back to calling ``resolve`` on the pattern object itself
    (``needs`` collects body indices whose pattern must be bound at runtime).
    """
    if isinstance(pattern, FixedPattern):
        return [], _lit(pattern.address)
    if isinstance(pattern, (StridedPattern, PointerChasePattern)):
        return [], f"{_lit(pattern.base)} + (iteration * {_lit(pattern.stride)}) % {_lit(pattern.region)}"
    if isinstance(pattern, LineCoverPattern):
        words_per_line = max(1, pattern.line_bytes // pattern.word_bytes)
        setup = [
            f"_eff = iteration + {_lit(pattern.iteration_offset)}",
            "if _eff < 0:",
            "    _eff = 0",
        ]
        if pattern.iteration_offset == 0:
            # iteration >= 0 always, so max(0, .) is the identity.
            setup = []
            effective = "iteration"
        else:
            effective = "_eff"
        expr = (
            f"{_lit(pattern.base)} + ({effective} * {_lit(pattern.line_bytes)}) % {_lit(pattern.region)}"
            f" + (({effective} * {_lit(pattern.slots)} + {_lit(pattern.slot)}) % {_lit(words_per_line)})"
            f" * {_lit(pattern.word_bytes)}"
        )
        return setup, expr
    if isinstance(pattern, RandomPattern):
        slots = max(1, pattern.region // pattern.alignment)
        return [], f"{_lit(pattern.base)} + memory_randint(0, {_lit(slots - 1)}) * {_lit(pattern.alignment)}"
    needs.append(index)
    return [], f"_pat_{index}.resolve(iteration, memory_rng)"


def generate_kernel_source(config: MachineConfig, program: Program) -> str:
    """Generate specialized ``kernel_run`` source for (program, config)."""
    from repro.uarch.pipeline import OutOfOrderCore

    core = OutOfOrderCore(config)
    body = program.body
    infos = [
        core._instruction_info(instruction, index, False, program)
        for index, instruction in enumerate(body)
    ]

    ledger = VulnerabilityLedger(config)
    accounts = ledger.accounts
    rob_bits = accounts[StructureName.ROB].bits_per_entry
    iq_bits = accounts[StructureName.IQ].bits_per_entry
    lqt_bits = accounts[StructureName.LQ_TAG].bits_per_entry
    lqd_bits = accounts[StructureName.LQ_DATA].bits_per_entry
    sqt_bits = accounts[StructureName.SQ_TAG].bits_per_entry
    sqd_bits = accounts[StructureName.SQ_DATA].bits_per_entry
    rf_bits = accounts[StructureName.RF].bits_per_entry
    fu_bits = accounts[StructureName.FU].bits_per_entry
    sb_account = accounts.get(StructureName.SB)
    track_sb = sb_account is not None
    sb_bits = sb_account.bits_per_entry if track_sb else 0
    sb_drain = float(config.store_buffer_drain_cycles)

    from repro.isa.instructions import ARCH_REG_COUNT

    architected = config.architected_registers
    num_regs = max(ARCH_REG_COUNT, architected)
    all_present = architected >= ARCH_REG_COUNT

    frontend_miss_rate = float(program.metadata.get("frontend_miss_rate", 0.0))
    frontend_miss_penalty = int(program.metadata.get("frontend_miss_penalty", 10))
    has_frontend = frontend_miss_rate > 0.0

    # Ring sizing — the exact formula of the interpreter's prologue.
    max_override = 0
    for info in infos:
        if info[14] is not None and info[14] > max_override:
            max_override = info[14]
    per_op_latency_bound = (
        config.memory_latency
        + config.tlb_miss_penalty
        + max(config.multiply_latency, config.divide_latency, config.alu_latency, max_override)
        + 2
    )
    window_bound = config.rob_entries * per_op_latency_bound + 1024
    ring_size = 1 << (min(max(window_bound, 1024), 1 << 17) - 1).bit_length()

    body_len = len(body)
    ace_prefix = [0]
    branch_prefix = [0]
    for info in infos:
        ace_prefix.append(ace_prefix[-1] + (1 if info[11] else 0))
        branch_prefix.append(branch_prefix[-1] + (1 if info[5] else 0))
    has_loop_closing = any(info[17] for info in infos)
    has_random_pattern = any(
        isinstance(instruction.address_pattern, RandomPattern)
        for instruction in body
        if instruction.address_pattern is not None
    )
    has_memory = any(info[1] for info in infos)
    has_loads = any(info[3] for info in infos)
    has_stores = any(info[4] for info in infos)

    fallback_patterns: list[int] = []
    # Pre-render the per-instruction blocks so fallback-pattern bindings are
    # known before the prologue is emitted.
    blocks: list[list[str]] = []
    for index, info in enumerate(infos):
        block = _Emitter()
        block.indent = 0
        _emit_op_block(
            block,
            info,
            body[index].address_pattern,
            index,
            config=config,
            track_sb=track_sb,
            sb_bits=sb_bits,
            sb_drain=sb_drain,
            bits=(rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits),
            all_present=all_present,
            has_frontend=has_frontend,
            frontend_miss_rate=frontend_miss_rate,
            frontend_miss_penalty=frontend_miss_penalty,
            fallback_patterns=fallback_patterns,
        )
        blocks.append(block.lines)

    out = _Emitter()
    out.block(
        '"""Auto-generated specialized simulator kernel.',
        "",
        f"program: {program.name!r}  config: {config.name!r}  schema: {KERNEL_SCHEMA}",
        "Generated by repro.uarch.kernelgen; do not edit.  See ARCHITECTURE.md.",
        '"""',
        "",
        "import heapq",
        "from collections import deque",
        "",
        "from repro.branch.predictors import HybridPredictor",
        "from repro.memory.hierarchy import MemoryHierarchy",
        "from repro.uarch.pipeline import OutOfOrderCore, SimulationResult, SimulationStats",
        "from repro.uarch.structures import StructureName",
        "from repro.utils.rng import DeterministicRng",
        "from repro.vuln.ledger import VulnerabilityLedger",
        "",
        "_grow_rings = OutOfOrderCore._grow_rings",
        "",
        f"_ACE_PREFIX = {tuple(ace_prefix)!r}",
        f"_BRANCH_PREFIX = {tuple(branch_prefix)!r}",
        "",
        "",
        f"def kernel_run(core, program, max_instructions={50_000}):",
    )
    out.indent = 1
    out.block(
        "if max_instructions <= 0:",
        "    raise ValueError('max_instructions must be positive')",
        "config = core.config",
        "rng = DeterministicRng(core.seed).spawn('sim', program.name)",
        "ledger = VulnerabilityLedger(config)",
        "hierarchy = MemoryHierarchy(",
        "    dl1_config=config.dl1,",
        "    l2_config=config.l2,",
        "    dtlb_config=config.dtlb,",
        "    memory_latency=config.memory_latency,",
        "    tlb_miss_penalty=config.tlb_miss_penalty,",
        "    ledger=ledger,",
        "    l2_tlb_config=config.l2_tlb,",
        "    l2_tlb_hit_latency=config.l2_tlb_hit_latency,",
        ")",
        "predictor = HybridPredictor(",
        "    global_entries=config.branch_predictor_global_entries,",
        "    local_history_entries=config.branch_predictor_local_entries,",
        "    choice_entries=config.branch_predictor_choice_entries,",
        ")",
        "stats = SimulationStats()",
        "memory_rng = rng.spawn('memory')",
        "branch_rng = rng.spawn('branch')",
        "frontend_rng = rng.spawn('frontend')",
        "core._run_functional_setup(program, hierarchy, rng)",
        "",
        f"ring_size = {ring_size}",
        f"ring_mask = {ring_size - 1}",
        f"ring_tag = [-1] * {ring_size}",
        f"ring_issue = [0] * {ring_size}",
        f"ring_mem = [0] * {ring_size}",
        f"ring_alu = [0] * {ring_size}",
        f"ring_mul = [0] * {ring_size}",
        "",
        "rob_commits = deque()",
        "lq_commits = deque()",
        "sq_commits = deque()",
        "iq_issue_heap = []",
        "rename_commit_heap = []",
        "# Container lengths mirrored in locals (append/pop sites keep them",
        "# exact), replacing per-op len() calls.",
        "rob_len = lq_len = sq_len = 0",
        "iq_len = rename_len = 0",
        "",
        f"reg_present = [True] * {architected} + [False] * {num_regs - architected}",
        f"reg_complete = [0] * {num_regs}",
        f"reg_width = [1.0] * {num_regs}",
        f"reg_ace = [True] * {num_regs}",
        f"reg_last_read = [-1] * {num_regs}",
        f"reg_ready = [0] * {num_regs}",
        "extra_regs = []",
        "",
        "rob_occ = rob_ace = 0.0",
        "iq_occ = iq_ace = 0.0",
        "lqt_occ = lqt_ace = 0.0",
        "lqd_occ = lqd_ace = 0.0",
        "sqt_occ = sqt_ace = 0.0",
        "sqd_occ = sqd_ace = 0.0",
        "rf_occ = rf_ace = 0.0",
        "fu_occ = fu_ace = 0.0",
    )
    if track_sb:
        out.emit("sb_occ = sb_ace = 0.0")
    out.block(
        "",
        "hierarchy_access = hierarchy.access_parts",
        "predictor_update = predictor.update",
        "branch_random = branch_rng.raw().random",
    )
    if has_frontend:
        out.emit("frontend_random = frontend_rng.raw().random")
    if has_random_pattern:
        out.emit("memory_randint = memory_rng.randint")
    out.block(
        "heappush = heapq.heappush",
        "heappop = heapq.heappop",
        "rob_append = rob_commits.append",
        "rob_popleft = rob_commits.popleft",
    )
    if has_loads:
        out.block("lq_append = lq_commits.append", "lq_popleft = lq_commits.popleft")
    if has_stores:
        out.block("sq_append = sq_commits.append", "sq_popleft = sq_commits.popleft")
    for index in sorted(set(fallback_patterns)):
        out.emit(f"_pat_{index} = program.body[{index}].address_pattern")
    out.block(
        "",
        "branch_mispredictions = 0",
        "l2_misses = 0",
        "min_dispatch_cycle = 1",
        "fetch_resume_cycle = 0",
        "last_commit_cycle = 0",
        "final_cycle = 1",
        "disp_cycle = -1",
        "disp_count = 0",
        "commit_count = 0",
        "",
        f"full_iters = max_instructions // {body_len}",
        f"if full_iters >= {program.iterations}:",
        f"    full_iters = {program.iterations}",
        "    tail_ops = 0",
        "else:",
        f"    tail_ops = max_instructions - full_iters * {body_len}",
        "",
        "for iteration in range(full_iters):",
    )
    out.indent = 2
    if has_loop_closing:
        out.emit(f"closing_taken = iteration < {program.iterations - 1}")
    for index, block_lines in enumerate(blocks):
        instruction = body[index]
        out.emit(f"# --- op {index}: {instruction.opclass.value}"
                 + (f" [{instruction.label}]" if instruction.label else ""))
        for line in block_lines:
            out.emit(line)
    out.indent = 1

    # ------------------------------------------------------- generic tail
    out.block(
        "",
        "if tail_ops:",
    )
    out.indent = 2
    out.block(
        "body_infos = [core._instruction_info(instruction, index, False, program)",
        "              for index, instruction in enumerate(program.body)]",
        "iteration = full_iters",
        f"closing_taken = iteration < {program.iterations - 1}",
        "for _tail_index in range(tail_ops):",
    )
    out.indent = 3
    _emit_generic_op(
        out,
        track_sb=track_sb,
        sb_bits=sb_bits,
        sb_drain=sb_drain,
        bits=(rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits),
        has_frontend=has_frontend,
        frontend_miss_rate=frontend_miss_rate,
        frontend_miss_penalty=frontend_miss_penalty,
        config=config,
    )
    out.indent = 1

    # ---------------------------------------------------------- epilogue
    out.block(
        "",
        f"for reg in range({architected}):",
        "    if reg_ace[reg]:",
        "        last_read = reg_last_read[reg]",
        "        if last_read > reg_complete[reg]:",
        "            duration = float(last_read - reg_complete[reg])",
        "            rf_occ += duration",
        f"            rf_ace += duration * {rf_bits} * reg_width[reg]",
        "for reg in extra_regs:",
        "    if reg_ace[reg]:",
        "        last_read = reg_last_read[reg]",
        "        if last_read > reg_complete[reg]:",
        "            duration = float(last_read - reg_complete[reg])",
        "            rf_occ += duration",
        f"            rf_ace += duration * {rf_bits} * reg_width[reg]",
        "",
        "credit = ledger.credit",
        "credit(StructureName.ROB, rob_occ, rob_ace)",
        "credit(StructureName.IQ, iq_occ, iq_ace)",
        "credit(StructureName.LQ_TAG, lqt_occ, lqt_ace)",
        "credit(StructureName.LQ_DATA, lqd_occ, lqd_ace)",
        "credit(StructureName.SQ_TAG, sqt_occ, sqt_ace)",
        "credit(StructureName.SQ_DATA, sqd_occ, sqd_ace)",
        "credit(StructureName.RF, rf_occ, rf_ace)",
        "credit(StructureName.FU, fu_occ, fu_ace)",
    )
    if track_sb:
        out.emit("credit(StructureName.SB, sb_occ, sb_ace)")
    out.block(
        "",
        "hierarchy.finalize(final_cycle)",
        "",
        f"committed = full_iters * {body_len} + tail_ops",
        "stats.committed_instructions = committed",
        f"stats.committed_ace_instructions = full_iters * {ace_prefix[-1]} + _ACE_PREFIX[tail_ops]",
        f"stats.branch_count = full_iters * {branch_prefix[-1]} + _BRANCH_PREFIX[tail_ops]",
        "stats.branch_mispredictions = branch_mispredictions",
        "stats.l2_misses = l2_misses",
        "stats.total_cycles = final_cycle",
        "stats.dl1_miss_rate = hierarchy.dl1.stats.miss_rate",
        "stats.l2_miss_rate = hierarchy.l2.stats.miss_rate",
        "stats.dtlb_miss_rate = hierarchy.dtlb.stats.miss_rate",
        "",
        "return SimulationResult(",
        "    program_name=program.name,",
        "    config=config,",
        "    accumulators=dict(ledger.collect()),",
        "    stats=stats,",
        "    metadata=dict(program.metadata),",
        ")",
    )
    out.indent = 0
    return out.source()


def generate_batch_kernel_source(config: MachineConfig) -> str:
    """Generate config-specialized *batch* kernel source.

    The batch evaluation plane evaluates a whole GA population through one
    compiled function per machine configuration: machine constants (widths,
    depths, latencies, bits-per-entry, ring geometry bounds) are folded in
    once, while everything program-specific — the precomputed per-op info
    columns, address patterns, iteration count, front-end miss model — stays
    a runtime input.  The emitted function is

        ``batch_run(core, program, max_instructions, body_infos, warm=None)``

    where ``body_infos`` is the per-op info table (the same 19-tuples the
    interpreter precomputes) and ``warm`` optionally supplies a pre-warmed
    (ledger, hierarchy) pair via ``warm.materialize()`` — the batch runner
    shares one functional warm-up across every genome with the same declared
    footprint, which is where the population-at-once speedup comes from.

    Bit-identity contract: same floating-point addition order, same RNG
    spawn/draw order, same hierarchy/predictor probe arguments at the same
    cycles as :meth:`OutOfOrderCore.run_interpreted`.  The ``warm`` path is
    only taken for programs with no explicit setup instructions, where the
    interpreter's ``spawn('setup')`` stream is created but never drawn from,
    so skipping the warm-up replay cannot perturb any RNG stream.
    """
    ledger = VulnerabilityLedger(config)
    accounts = ledger.accounts
    rob_bits = accounts[StructureName.ROB].bits_per_entry
    iq_bits = accounts[StructureName.IQ].bits_per_entry
    lqt_bits = accounts[StructureName.LQ_TAG].bits_per_entry
    lqd_bits = accounts[StructureName.LQ_DATA].bits_per_entry
    sqt_bits = accounts[StructureName.SQ_TAG].bits_per_entry
    sqd_bits = accounts[StructureName.SQ_DATA].bits_per_entry
    rf_bits = accounts[StructureName.RF].bits_per_entry
    fu_bits = accounts[StructureName.FU].bits_per_entry
    sb_account = accounts.get(StructureName.SB)
    track_sb = sb_account is not None
    sb_bits = sb_account.bits_per_entry if track_sb else 0
    sb_drain = float(config.store_buffer_drain_cycles)

    from repro.isa.instructions import ARCH_REG_COUNT

    architected = config.architected_registers
    num_regs = max(ARCH_REG_COUNT, architected)

    # Config part of the interpreter's ring-sizing formula; the program part
    # (the max fixed-latency override) joins at runtime.
    static_latency_bound = max(
        config.multiply_latency, config.divide_latency, config.alu_latency
    )

    out = _Emitter()
    out.block(
        '"""Auto-generated config-specialized batch simulator kernel.',
        "",
        f"config: {config.name!r}  schema: {KERNEL_SCHEMA}",
        "Generated by repro.uarch.kernelgen; do not edit.  See ARCHITECTURE.md.",
        '"""',
        "",
        "import heapq",
        "from collections import deque",
        "",
        "from repro.branch.predictors import HybridPredictor",
        "from repro.memory.hierarchy import MemoryHierarchy",
        "from repro.uarch.pipeline import OutOfOrderCore, SimulationResult, SimulationStats",
        "from repro.uarch.structures import StructureName",
        "from repro.utils.rng import DeterministicRng",
        "from repro.vuln.ledger import VulnerabilityLedger",
        "",
        "_grow_rings = OutOfOrderCore._grow_rings",
        "",
        "",
        f"def batch_run(core, program, max_instructions={50_000}, body_infos=None, warm=None):",
    )
    out.indent = 1
    out.block(
        "if max_instructions <= 0:",
        "    raise ValueError('max_instructions must be positive')",
        "config = core.config",
        "rng = DeterministicRng(core.seed).spawn('sim', program.name)",
        "if warm is None:",
        "    ledger = VulnerabilityLedger(config)",
        "    hierarchy = MemoryHierarchy(",
        "        dl1_config=config.dl1,",
        "        l2_config=config.l2,",
        "        dtlb_config=config.dtlb,",
        "        memory_latency=config.memory_latency,",
        "        tlb_miss_penalty=config.tlb_miss_penalty,",
        "        ledger=ledger,",
        "        l2_tlb_config=config.l2_tlb,",
        "        l2_tlb_hit_latency=config.l2_tlb_hit_latency,",
        "    )",
        "else:",
        "    ledger, hierarchy = warm.materialize()",
        "predictor = HybridPredictor(",
        "    global_entries=config.branch_predictor_global_entries,",
        "    local_history_entries=config.branch_predictor_local_entries,",
        "    choice_entries=config.branch_predictor_choice_entries,",
        ")",
        "stats = SimulationStats()",
        "frontend_miss_rate = float(program.metadata.get('frontend_miss_rate', 0.0))",
        "frontend_miss_penalty = int(program.metadata.get('frontend_miss_penalty', 10))",
        "has_frontend = frontend_miss_rate > 0.0",
        "memory_rng = rng.spawn('memory')",
        "branch_rng = rng.spawn('branch')",
        "frontend_rng = rng.spawn('frontend')",
        "if warm is None:",
        "    core._run_functional_setup(program, hierarchy, rng)",
        "",
        "if body_infos is None:",
        "    body_infos = [core._instruction_info(instruction, index, False, program)",
        "                  for index, instruction in enumerate(program.body)]",
        "body_len = len(body_infos)",
        "",
        "max_override = 0",
        "ace_total = 0",
        "branch_total = 0",
        "ace_prefix = [0]",
        "branch_prefix = [0]",
        "for info in body_infos:",
        "    if info[14] is not None and info[14] > max_override:",
        "        max_override = info[14]",
        "    if info[11]:",
        "        ace_total += 1",
        "    if info[5]:",
        "        branch_total += 1",
        "    ace_prefix.append(ace_total)",
        "    branch_prefix.append(branch_total)",
        "",
        f"latency_bound = {static_latency_bound}",
        "if max_override > latency_bound:",
        "    latency_bound = max_override",
        f"per_op_latency_bound = {config.memory_latency + config.tlb_miss_penalty} + latency_bound + 2",
        f"window_bound = {config.rob_entries} * per_op_latency_bound + 1024",
        f"ring_size = 1 << (min(max(window_bound, 1024), {1 << 17}) - 1).bit_length()",
        "ring_mask = ring_size - 1",
        "ring_tag = [-1] * ring_size",
        "ring_issue = [0] * ring_size",
        "ring_mem = [0] * ring_size",
        "ring_alu = [0] * ring_size",
        "ring_mul = [0] * ring_size",
        "",
        "rob_commits = deque()",
        "lq_commits = deque()",
        "sq_commits = deque()",
        "iq_issue_heap = []",
        "rename_commit_heap = []",
        "rob_len = lq_len = sq_len = 0",
        "iq_len = rename_len = 0",
        "",
        f"reg_present = [True] * {architected} + [False] * {num_regs - architected}",
        f"reg_complete = [0] * {num_regs}",
        f"reg_width = [1.0] * {num_regs}",
        f"reg_ace = [True] * {num_regs}",
        f"reg_last_read = [-1] * {num_regs}",
        f"reg_ready = [0] * {num_regs}",
        "extra_regs = []",
        "",
        "rob_occ = rob_ace = 0.0",
        "iq_occ = iq_ace = 0.0",
        "lqt_occ = lqt_ace = 0.0",
        "lqd_occ = lqd_ace = 0.0",
        "sqt_occ = sqt_ace = 0.0",
        "sqd_occ = sqd_ace = 0.0",
        "rf_occ = rf_ace = 0.0",
        "fu_occ = fu_ace = 0.0",
    )
    if track_sb:
        out.emit("sb_occ = sb_ace = 0.0")
    out.block(
        "",
        "hierarchy_access = hierarchy.access_parts",
        "predictor_update = predictor.update",
        "branch_random = branch_rng.raw().random",
        "frontend_random = frontend_rng.raw().random",
        "heappush = heapq.heappush",
        "heappop = heapq.heappop",
        "rob_append = rob_commits.append",
        "rob_popleft = rob_commits.popleft",
        "",
        "branch_mispredictions = 0",
        "l2_misses = 0",
        "min_dispatch_cycle = 1",
        "fetch_resume_cycle = 0",
        "last_commit_cycle = 0",
        "final_cycle = 1",
        "disp_cycle = -1",
        "disp_count = 0",
        "commit_count = 0",
        "",
        "iterations_total = program.iterations",
        "last_iteration = iterations_total - 1",
        "full_iters = max_instructions // body_len",
        "if full_iters >= iterations_total:",
        "    full_iters = iterations_total",
        "    tail_ops = 0",
        "else:",
        "    tail_ops = max_instructions - full_iters * body_len",
        "",
        "for iteration in range(full_iters):",
    )
    out.indent = 2
    out.block(
        "closing_taken = iteration < last_iteration",
        "for _tail_index in range(body_len):",
    )
    out.indent = 3
    _emit_generic_op(
        out,
        track_sb=track_sb,
        sb_bits=sb_bits,
        sb_drain=sb_drain,
        bits=(rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits),
        has_frontend=False,
        frontend_miss_rate=0.0,
        frontend_miss_penalty=0,
        config=config,
        runtime_frontend=True,
    )
    out.indent = 1

    out.block(
        "",
        "if tail_ops:",
    )
    out.indent = 2
    out.block(
        "iteration = full_iters",
        "closing_taken = iteration < last_iteration",
        "for _tail_index in range(tail_ops):",
    )
    out.indent = 3
    _emit_generic_op(
        out,
        track_sb=track_sb,
        sb_bits=sb_bits,
        sb_drain=sb_drain,
        bits=(rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits),
        has_frontend=False,
        frontend_miss_rate=0.0,
        frontend_miss_penalty=0,
        config=config,
        runtime_frontend=True,
    )
    out.indent = 1

    out.block(
        "",
        f"for reg in range({architected}):",
        "    if reg_ace[reg]:",
        "        last_read = reg_last_read[reg]",
        "        if last_read > reg_complete[reg]:",
        "            duration = float(last_read - reg_complete[reg])",
        "            rf_occ += duration",
        f"            rf_ace += duration * {rf_bits} * reg_width[reg]",
        "for reg in extra_regs:",
        "    if reg_ace[reg]:",
        "        last_read = reg_last_read[reg]",
        "        if last_read > reg_complete[reg]:",
        "            duration = float(last_read - reg_complete[reg])",
        "            rf_occ += duration",
        f"            rf_ace += duration * {rf_bits} * reg_width[reg]",
        "",
        "credit = ledger.credit",
        "credit(StructureName.ROB, rob_occ, rob_ace)",
        "credit(StructureName.IQ, iq_occ, iq_ace)",
        "credit(StructureName.LQ_TAG, lqt_occ, lqt_ace)",
        "credit(StructureName.LQ_DATA, lqd_occ, lqd_ace)",
        "credit(StructureName.SQ_TAG, sqt_occ, sqt_ace)",
        "credit(StructureName.SQ_DATA, sqd_occ, sqd_ace)",
        "credit(StructureName.RF, rf_occ, rf_ace)",
        "credit(StructureName.FU, fu_occ, fu_ace)",
    )
    if track_sb:
        out.emit("credit(StructureName.SB, sb_occ, sb_ace)")
    out.block(
        "",
        "hierarchy.finalize(final_cycle)",
        "",
        "stats.committed_instructions = full_iters * body_len + tail_ops",
        "stats.committed_ace_instructions = full_iters * ace_total + ace_prefix[tail_ops]",
        "stats.branch_count = full_iters * branch_total + branch_prefix[tail_ops]",
        "stats.branch_mispredictions = branch_mispredictions",
        "stats.l2_misses = l2_misses",
        "stats.total_cycles = final_cycle",
        "stats.dl1_miss_rate = hierarchy.dl1.stats.miss_rate",
        "stats.l2_miss_rate = hierarchy.l2.stats.miss_rate",
        "stats.dtlb_miss_rate = hierarchy.dtlb.stats.miss_rate",
        "",
        "return SimulationResult(",
        "    program_name=program.name,",
        "    config=config,",
        "    accumulators=dict(ledger.collect()),",
        "    stats=stats,",
        "    metadata=dict(program.metadata),",
        ")",
    )
    out.indent = 0
    return out.source()


def generate_vector_kernel_source(config: MachineConfig) -> str:
    """Generate config-specialized *vector* kernel source.

    The vector plane's timing loop: same shape as the batch kernel, but
    every per-op stochastic or object-dispatched input is precomputed into
    columns by :func:`repro.uarch.kernel_vector.build_columns` before the
    loop runs — front-end stalls, branch mispredicts and resolved address
    parts become plain list indexing — and the memory hierarchy is the flat
    :class:`~repro.uarch.kernel_vector.VectorHierarchy` materialized from a
    frozen warm template.  The emitted function is

        ``vector_run(core, program, max_instructions, body_infos, warm)``

    where ``warm`` is a :class:`~repro.uarch.kernel_vector.VectorWarmState`
    (required — setup programs never reach this plane) and ``body_infos``
    the batch plane's per-op info rows, unchanged: plans are backend-
    agnostic, which keeps the backend name out of every digest.

    Bit-identity contract: identical float addition order, RNG draw order
    and probe cycles as the interpreted reference.  The structural queues
    are replaced by append-only commit columns with drain cursors — valid
    because commit cycles are monotone non-decreasing (each op's commit is
    clamped to ``last_commit_cycle``), so the reference's rename heap pops
    in exactly append order; the IQ keeps a real heap (issue cycles are not
    monotone).  Raises ``kernel_vector.Unvectorizable`` for programs the
    column lowering cannot express; the runner falls back to the batch
    plane per item.
    """
    ledger = VulnerabilityLedger(config)
    accounts = ledger.accounts
    rob_bits = accounts[StructureName.ROB].bits_per_entry
    iq_bits = accounts[StructureName.IQ].bits_per_entry
    lqt_bits = accounts[StructureName.LQ_TAG].bits_per_entry
    lqd_bits = accounts[StructureName.LQ_DATA].bits_per_entry
    sqt_bits = accounts[StructureName.SQ_TAG].bits_per_entry
    sqd_bits = accounts[StructureName.SQ_DATA].bits_per_entry
    rf_bits = accounts[StructureName.RF].bits_per_entry
    fu_bits = accounts[StructureName.FU].bits_per_entry
    sb_account = accounts.get(StructureName.SB)
    track_sb = sb_account is not None
    sb_bits = sb_account.bits_per_entry if track_sb else 0
    sb_drain = float(config.store_buffer_drain_cycles)

    from repro.isa.instructions import ARCH_REG_COUNT

    architected = config.architected_registers
    num_regs = max(ARCH_REG_COUNT, architected)

    static_latency_bound = max(
        config.multiply_latency, config.divide_latency, config.alu_latency
    )

    out = _Emitter()
    out.block(
        '"""Auto-generated config-specialized vector simulator kernel.',
        "",
        f"config: {config.name!r}  schema: {KERNEL_SCHEMA}",
        "Generated by repro.uarch.kernelgen; do not edit.  See ARCHITECTURE.md.",
        '"""',
        "",
        "import heapq",
        "",
        "from repro.uarch import kernel_vector as _kv",
        "from repro.uarch.pipeline import OutOfOrderCore, SimulationResult, SimulationStats",
        "from repro.uarch.structures import StructureName",
        "from repro.utils.rng import DeterministicRng",
        "from repro.vuln.ledger import VulnerabilityLedger",
        "",
        "_grow_rings = OutOfOrderCore._grow_rings",
        "",
        "",
        f"def vector_run(core, program, max_instructions={50_000}, body_infos=None, warm=None):",
    )
    out.indent = 1
    out.block(
        "if max_instructions <= 0:",
        "    raise ValueError('max_instructions must be positive')",
        "if warm is None:",
        "    raise _kv.Unvectorizable('vector kernels require a frozen warm state')",
        "config = core.config",
        "rng = DeterministicRng(core.seed).spawn('sim', program.name)",
        "stats = SimulationStats()",
        "frontend_miss_rate = float(program.metadata.get('frontend_miss_rate', 0.0))",
        "frontend_miss_penalty = int(program.metadata.get('frontend_miss_penalty', 10))",
        "has_frontend = frontend_miss_rate > 0.0",
        "memory_rng = rng.spawn('memory')",
        "branch_rng = rng.spawn('branch')",
        "frontend_rng = rng.spawn('frontend')",
        "",
        "if body_infos is None:",
        "    body_infos = [core._instruction_info(instruction, index, False, program)",
        "                  for index, instruction in enumerate(program.body)]",
        "body_len = len(body_infos)",
        "",
        "max_override = 0",
        "ace_total = 0",
        "branch_total = 0",
        "ace_prefix = [0]",
        "branch_prefix = [0]",
        "for info in body_infos:",
        "    if info[14] is not None and info[14] > max_override:",
        "        max_override = info[14]",
        "    if info[11]:",
        "        ace_total += 1",
        "    if info[5]:",
        "        branch_total += 1",
        "    ace_prefix.append(ace_total)",
        "    branch_prefix.append(branch_total)",
        "",
        f"latency_bound = {static_latency_bound}",
        "if max_override > latency_bound:",
        "    latency_bound = max_override",
        f"per_op_latency_bound = {config.memory_latency + config.tlb_miss_penalty} + latency_bound + 2",
        f"window_bound = {config.rob_entries} * per_op_latency_bound + 1024",
        f"ring_size = 1 << (min(max(window_bound, 1024), {1 << 17}) - 1).bit_length()",
        "ring_mask = ring_size - 1",
        "ring_tag = [-1] * ring_size",
        "ring_issue = [0] * ring_size",
        "ring_mem = [0] * ring_size",
        "ring_alu = [0] * ring_size",
        "ring_mul = [0] * ring_size",
        "",
        "iterations_total = program.iterations",
        "last_iteration = iterations_total - 1",
        "full_iters = max_instructions // body_len",
        "if full_iters >= iterations_total:",
        "    full_iters = iterations_total",
        "    tail_ops = 0",
        "else:",
        "    tail_ops = max_instructions - full_iters * body_len",
        "",
        "# Column pre-pass before any per-run state exists: an Unvectorizable",
        "# program falls back to the batch plane with nothing to unwind.",
        "frontend_col, mispredict_col, memory_cols = _kv.build_columns(",
        "    config, body_infos, full_iters, tail_ops, last_iteration,",
        "    memory_rng, branch_rng, frontend_rng,",
        "    frontend_miss_rate, frontend_miss_penalty,",
        ")",
        "hierarchy = warm.materialize()",
        "",
        "# Append-only commit columns + drain cursors replace the reference",
        "# deques/rename-heap (commit cycles are monotone); the IQ issue heap",
        "# stays a real heap.",
        "commit_col = []",
        "commit_append = commit_col.append",
        "lq_commit_col = []",
        "lq_commit_append = lq_commit_col.append",
        "sq_commit_col = []",
        "sq_commit_append = sq_commit_col.append",
        "write_commit_col = []",
        "write_commit_append = write_commit_col.append",
        "iq_issue_heap = []",
        "op_index = 0",
        "lq_count = 0",
        "sq_count = 0",
        "write_count = 0",
        "rename_drained = 0",
        "iq_len = 0",
        "branch_index = 0",
        "",
        f"reg_present = [True] * {architected} + [False] * {num_regs - architected}",
        f"reg_complete = [0] * {num_regs}",
        f"reg_width = [1.0] * {num_regs}",
        f"reg_ace = [True] * {num_regs}",
        f"reg_last_read = [-1] * {num_regs}",
        f"reg_ready = [0] * {num_regs}",
        "extra_regs = []",
        "",
        "rob_occ = rob_ace = 0.0",
        "iq_occ = iq_ace = 0.0",
        "lqt_occ = lqt_ace = 0.0",
        "lqd_occ = lqd_ace = 0.0",
        "sqt_occ = sqt_ace = 0.0",
        "sqd_occ = sqd_ace = 0.0",
        "rf_occ = rf_ace = 0.0",
        "fu_occ = fu_ace = 0.0",
    )
    if track_sb:
        out.emit("sb_occ = sb_ace = 0.0")
    out.block(
        "",
        "hierarchy_access = hierarchy.access",
        "heappush = heapq.heappush",
        "heappop = heapq.heappop",
        "",
        "branch_mispredictions = 0",
        "min_dispatch_cycle = 1",
        "fetch_resume_cycle = 0",
        "last_commit_cycle = 0",
        "final_cycle = 1",
        "disp_cycle = -1",
        "disp_count = 0",
        "commit_count = 0",
        "",
        "for iteration in range(full_iters):",
    )
    out.indent = 2
    out.block(
        "for _tail_index in range(body_len):",
    )
    out.indent = 3
    _emit_vector_op(
        out,
        track_sb=track_sb,
        sb_bits=sb_bits,
        sb_drain=sb_drain,
        bits=(rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits),
        config=config,
    )
    out.indent = 1

    out.block(
        "",
        "if tail_ops:",
    )
    out.indent = 2
    out.block(
        "iteration = full_iters",
        "for _tail_index in range(tail_ops):",
    )
    out.indent = 3
    _emit_vector_op(
        out,
        track_sb=track_sb,
        sb_bits=sb_bits,
        sb_drain=sb_drain,
        bits=(rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits),
        config=config,
    )
    out.indent = 1

    out.block(
        "",
        f"for reg in range({architected}):",
        "    if reg_ace[reg]:",
        "        last_read = reg_last_read[reg]",
        "        if last_read > reg_complete[reg]:",
        "            duration = float(last_read - reg_complete[reg])",
        "            rf_occ += duration",
        f"            rf_ace += duration * {rf_bits} * reg_width[reg]",
        "for reg in extra_regs:",
        "    if reg_ace[reg]:",
        "        last_read = reg_last_read[reg]",
        "        if last_read > reg_complete[reg]:",
        "            duration = float(last_read - reg_complete[reg])",
        "            rf_occ += duration",
        f"            rf_ace += duration * {rf_bits} * reg_width[reg]",
        "",
        "ledger = VulnerabilityLedger(config)",
        "credit = ledger.credit",
        "credit(StructureName.ROB, rob_occ, rob_ace)",
        "credit(StructureName.IQ, iq_occ, iq_ace)",
        "credit(StructureName.LQ_TAG, lqt_occ, lqt_ace)",
        "credit(StructureName.LQ_DATA, lqd_occ, lqd_ace)",
        "credit(StructureName.SQ_TAG, sqt_occ, sqt_ace)",
        "credit(StructureName.SQ_DATA, sqd_occ, sqd_ace)",
        "credit(StructureName.RF, rf_occ, rf_ace)",
        "credit(StructureName.FU, fu_occ, fu_ace)",
    )
    if track_sb:
        out.emit("credit(StructureName.SB, sb_occ, sb_ace)")
    out.block(
        "",
        "hierarchy.finalize(final_cycle)",
        "_kv.install_trackers(ledger, hierarchy)",
        "",
        "stats.committed_instructions = full_iters * body_len + tail_ops",
        "stats.committed_ace_instructions = full_iters * ace_total + ace_prefix[tail_ops]",
        "stats.branch_count = full_iters * branch_total + branch_prefix[tail_ops]",
        "stats.branch_mispredictions = branch_mispredictions",
        "stats.l2_misses = hierarchy.load_l2_misses",
        "stats.total_cycles = final_cycle",
        "stats.dl1_miss_rate = (hierarchy.dl1_misses / hierarchy.dl1_accesses"
        " if hierarchy.dl1_accesses else 0.0)",
        "stats.l2_miss_rate = (hierarchy.l2_misses / hierarchy.l2_accesses"
        " if hierarchy.l2_accesses else 0.0)",
        "stats.dtlb_miss_rate = (hierarchy.dtlb_misses / hierarchy.dtlb_accesses"
        " if hierarchy.dtlb_accesses else 0.0)",
        "",
        "return SimulationResult(",
        "    program_name=program.name,",
        "    config=config,",
        "    accumulators=dict(ledger.collect()),",
        "    stats=stats,",
        "    metadata=dict(program.metadata),",
        ")",
    )
    out.indent = 0
    return out.source()


def _emit_vector_op(
    out: _Emitter,
    *,
    track_sb: bool,
    sb_bits: int,
    sb_drain: float,
    bits: tuple[int, int, int, int, int, int, int, int],
    config: MachineConfig,
) -> None:
    """Emit the vector per-op body (:func:`_emit_generic_op` on columns).

    Identical to the generic transcription except every stochastic or
    object-dispatched input is a column read: front-end stall from
    ``frontend_col``, branch outcome from ``mispredict_col``, memory access
    parts from ``memory_cols``; and the ROB/LQ/SQ/rename structural gates
    index the append-only commit columns directly.
    """
    rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits = bits
    out.block(
        "(_, is_memory, is_nop, is_lq, is_store, is_branch, is_mul,",
        " is_arith, writes_reg, dest, srcs, ace, data_frac, width_frac,",
        " fixed_latency, pattern, taken_probability, loop_closing,",
        " pc) = body_infos[_tail_index]",
        "dispatch = min_dispatch_cycle",
        "if fetch_resume_cycle > dispatch:",
        "    dispatch = fetch_resume_cycle",
        "if has_frontend:",
        "    dispatch += frontend_col[op_index]",
        f"if op_index >= {config.rob_entries} and commit_col[op_index - {config.rob_entries}] > dispatch:",
        f"    dispatch = commit_col[op_index - {config.rob_entries}]",
        "if is_lq:",
        f"    if lq_count >= {config.lq_entries} and lq_commit_col[lq_count - {config.lq_entries}] > dispatch:",
        f"        dispatch = lq_commit_col[lq_count - {config.lq_entries}]",
        "elif is_store:",
        f"    if sq_count >= {config.sq_entries} and sq_commit_col[sq_count - {config.sq_entries}] > dispatch:",
        f"        dispatch = sq_commit_col[sq_count - {config.sq_entries}]",
        "if writes_reg:",
        "    while rename_drained < write_count and write_commit_col[rename_drained] <= dispatch:",
        "        rename_drained += 1",
        f"    if write_count - rename_drained >= {config.free_rename_registers}:",
        "        if write_commit_col[rename_drained] > dispatch:",
        "            dispatch = write_commit_col[rename_drained]",
        "        while rename_drained < write_count and write_commit_col[rename_drained] <= dispatch:",
        "            rename_drained += 1",
        "if not is_nop:",
        "    while iq_len and iq_issue_heap[0] <= dispatch:",
        "        heappop(iq_issue_heap)",
        "        iq_len -= 1",
        f"    if iq_len >= {config.iq_entries}:",
        "        if iq_issue_heap[0] > dispatch:",
        "            dispatch = iq_issue_heap[0]",
        "        while iq_len and iq_issue_heap[0] <= dispatch:",
        "            heappop(iq_issue_heap)",
        "            iq_len -= 1",
        "if dispatch == disp_cycle:",
        f"    if disp_count >= {config.dispatch_width}:",
        "        dispatch += 1",
        "        disp_cycle = dispatch",
        "        disp_count = 1",
        "    else:",
        "        disp_count += 1",
        "else:",
        "    disp_cycle = dispatch",
        "    disp_count = 1",
        "min_dispatch_cycle = dispatch",
        "if is_nop:",
        "    issue = dispatch",
        "    complete = dispatch",
        "    latency = 0",
        "else:",
        "    issue = dispatch + 1",
        "    for src in srcs:",
        "        ready = reg_ready[src]",
        "        if ready > issue:",
        "            issue = ready",
        "    while True:",
        "        slot = issue & ring_mask",
        "        if ring_tag[slot] == issue:",
        f"            if ring_issue[slot] >= {config.issue_width}:",
        "                issue += 1",
        "                continue",
        "            if is_memory:",
        f"                if ring_mem[slot] >= {config.memory_issue_width}:",
        "                    issue += 1",
        "                    continue",
        "            elif is_mul:",
        f"                if ring_mul[slot] >= {config.int_multipliers}:",
        "                    issue += 1",
        "                    continue",
        f"            elif ring_alu[slot] >= {config.int_alus}:",
        "                issue += 1",
        "                continue",
        "        break",
        "    if issue - dispatch >= ring_size:",
        "        ring_size, ring_mask, ring_tag, ring_issue, ring_mem, ring_alu, ring_mul = _grow_rings(",
        "            issue - dispatch, dispatch, ring_size,",
        "            ring_tag, ring_issue, ring_mem, ring_alu, ring_mul,",
        "        )",
        "        slot = issue & ring_mask",
        "    if ring_tag[slot] == issue:",
        "        ring_issue[slot] += 1",
        "    else:",
        "        ring_tag[slot] = issue",
        "        ring_issue[slot] = 1",
        "        ring_mem[slot] = 0",
        "        ring_alu[slot] = 0",
        "        ring_mul[slot] = 0",
        "    if is_memory:",
        "        ring_mem[slot] += 1",
        "    elif is_mul:",
        "        ring_mul[slot] += 1",
        "    else:",
        "        ring_alu[slot] += 1",
        "    if fixed_latency is not None:",
        "        latency = fixed_latency",
        "    else:",
        "        latency = hierarchy_access(memory_cols[_tail_index][iteration], False, issue, ace)",
        "    complete = issue + latency",
        "commit = complete + 1",
        "if last_commit_cycle > commit:",
        "    commit = last_commit_cycle",
        f"if commit == last_commit_cycle and commit_count >= {config.commit_width}:",
        "    commit += 1",
        "if commit == last_commit_cycle:",
        "    commit_count += 1",
        "else:",
        "    commit_count = 1",
        "last_commit_cycle = commit",
        "if commit > final_cycle:",
        "    final_cycle = commit",
        "if is_store and pattern is not None:",
        "    hierarchy_access(memory_cols[_tail_index][iteration], True, commit, ace)",
        "if is_branch:",
        "    if mispredict_col[branch_index]:",
        "        branch_mispredictions += 1",
        f"        resume = complete + {config.branch_misprediction_penalty}",
        "        if resume > fetch_resume_cycle:",
        "            fetch_resume_cycle = resume",
        "    branch_index += 1",
        "commit_append(commit)",
        "if is_lq:",
        "    lq_commit_append(commit)",
        "    lq_count += 1",
        "elif is_store:",
        "    sq_commit_append(commit)",
        "    sq_count += 1",
        "if not is_nop:",
        "    heappush(iq_issue_heap, issue)",
        "    iq_len += 1",
        "if writes_reg:",
        "    write_commit_append(commit)",
        "    write_count += 1",
        "op_index += 1",
        "duration = float(commit - dispatch)",
        "rob_occ += duration",
        "if ace:",
        f"    rob_ace += duration * {rob_bits}",
        "if not is_nop:",
        "    duration = float(issue - dispatch)",
        "    iq_occ += duration",
        "    if ace:",
        f"        iq_ace += duration * {iq_bits}",
        "if is_lq:",
        "    lqt_occ += float(issue - dispatch)",
        "    duration = float(commit - issue)",
        "    lqt_occ += duration",
        "    if ace:",
        f"        lqt_ace += duration * {lqt_bits}",
        "    lqd_occ += float(complete - dispatch)",
        "    duration = float(commit - complete)",
        "    lqd_occ += duration",
        "    if data_frac:",
        f"        lqd_ace += duration * {lqd_bits} * data_frac",
        "elif is_store:",
        "    sqt_occ += float(issue - dispatch)",
        "    duration = float(commit - issue)",
        "    sqt_occ += duration",
        "    if ace:",
        f"        sqt_ace += duration * {sqt_bits}",
        "    sqd_occ += float(issue - dispatch)",
        "    if data_frac:",
        f"        sqd_ace += duration * {sqd_bits} * data_frac",
        "    sqd_occ += duration",
    )
    if track_sb:
        out.block(
            f"    sb_occ += {_lit(sb_drain)}",
            "    if data_frac:",
            f"        sb_ace += {_lit(sb_drain)} * {sb_bits} * data_frac",
        )
    out.block(
        "if is_arith:",
        "    duration = float(latency if latency > 1 else 1)",
        "    fu_occ += duration",
        "    if ace:",
        f"        fu_ace += duration * {fu_bits}",
        "if ace:",
        "    for src in srcs:",
        "        if reg_present[src] and issue > reg_last_read[src]:",
        "            reg_last_read[src] = issue",
        "if writes_reg:",
        "    if reg_present[dest]:",
        "        if reg_ace[dest]:",
        "            last_read = reg_last_read[dest]",
        "            if last_read > reg_complete[dest]:",
        "                duration = float(last_read - reg_complete[dest])",
        "                rf_occ += duration",
        f"                rf_ace += duration * {rf_bits} * reg_width[dest]",
        "    else:",
        "        reg_present[dest] = True",
        "        extra_regs.append(dest)",
        "    reg_complete[dest] = complete",
        "    reg_width[dest] = width_frac",
        "    reg_ace[dest] = ace",
        "    reg_last_read[dest] = -1",
        "    reg_ready[dest] = complete",
    )


def _emit_op_block(
    out: _Emitter,
    info: tuple,
    pattern,
    index: int,
    *,
    config: MachineConfig,
    track_sb: bool,
    sb_bits: int,
    sb_drain: float,
    bits: tuple[int, int, int, int, int, int, int, int],
    all_present: bool,
    has_frontend: bool,
    frontend_miss_rate: float,
    frontend_miss_penalty: int,
    fallback_patterns: list[int],
) -> None:
    """Emit the specialized straight-line block of one static instruction."""
    (_, is_memory, is_nop, is_lq, is_store, is_branch, is_mul, is_arith,
     writes_reg, dest, srcs, ace, data_frac, width_frac, fixed_latency,
     _pattern, taken_probability, loop_closing, pc) = info
    rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits = bits

    # ---------------------------------------------------------- dispatch
    out.block(
        "dispatch = min_dispatch_cycle",
        "if fetch_resume_cycle > dispatch:",
        "    dispatch = fetch_resume_cycle",
    )
    if has_frontend:
        out.block(
            f"if frontend_random() < {_lit(frontend_miss_rate)}:",
            f"    dispatch += {_lit(frontend_miss_penalty)}",
        )
    out.block(
        f"if rob_len >= {config.rob_entries} and rob_commits[0] > dispatch:",
        "    dispatch = rob_commits[0]",
    )
    if is_lq:
        out.block(
            f"if lq_len >= {config.lq_entries} and lq_commits[0] > dispatch:",
            "    dispatch = lq_commits[0]",
        )
    elif is_store:
        out.block(
            f"if sq_len >= {config.sq_entries} and sq_commits[0] > dispatch:",
            "    dispatch = sq_commits[0]",
        )
    if writes_reg:
        out.block(
            "while rename_len and rename_commit_heap[0] <= dispatch:",
            "    heappop(rename_commit_heap)",
            "    rename_len -= 1",
            f"if rename_len >= {config.free_rename_registers}:",
            "    if rename_commit_heap[0] > dispatch:",
            "        dispatch = rename_commit_heap[0]",
            "    while rename_len and rename_commit_heap[0] <= dispatch:",
            "        heappop(rename_commit_heap)",
            "        rename_len -= 1",
        )
    if not is_nop:
        out.block(
            "while iq_len and iq_issue_heap[0] <= dispatch:",
            "    heappop(iq_issue_heap)",
            "    iq_len -= 1",
            f"if iq_len >= {config.iq_entries}:",
            "    if iq_issue_heap[0] > dispatch:",
            "        dispatch = iq_issue_heap[0]",
            "    while iq_len and iq_issue_heap[0] <= dispatch:",
            "        heappop(iq_issue_heap)",
            "        iq_len -= 1",
        )
    out.block(
        "if dispatch == disp_cycle:",
        f"    if disp_count >= {config.dispatch_width}:",
        "        dispatch += 1",
        "        disp_cycle = dispatch",
        "        disp_count = 1",
        "    else:",
        "        disp_count += 1",
        "else:",
        "    disp_cycle = dispatch",
        "    disp_count = 1",
        "min_dispatch_cycle = dispatch",
    )

    # ------------------------------------------------------------- issue
    if is_nop:
        out.block("issue = dispatch", "complete = dispatch")
    else:
        out.emit("issue = dispatch + 1")
        for src in srcs:
            out.block(
                f"ready = reg_ready[{src}]",
                "if ready > issue:",
                "    issue = ready",
            )
        if is_memory:
            port_cond = f"if ring_mem[slot] >= {config.memory_issue_width}:"
            ring_counter = "ring_mem"
        elif is_mul:
            port_cond = f"if ring_mul[slot] >= {config.int_multipliers}:"
            ring_counter = "ring_mul"
        else:
            port_cond = f"if ring_alu[slot] >= {config.int_alus}:"
            ring_counter = "ring_alu"
        out.block(
            "while True:",
            "    slot = issue & ring_mask",
            "    if ring_tag[slot] == issue:",
            f"        if ring_issue[slot] >= {config.issue_width}:",
            "            issue += 1",
            "            continue",
            f"        {port_cond}",
            "            issue += 1",
            "            continue",
            "    break",
        )
        out.block(
            "if issue - dispatch >= ring_size:",
            "    ring_size, ring_mask, ring_tag, ring_issue, ring_mem, ring_alu, ring_mul = _grow_rings(",
            "        issue - dispatch, dispatch, ring_size,",
            "        ring_tag, ring_issue, ring_mem, ring_alu, ring_mul,",
            "    )",
            "    slot = issue & ring_mask",
            "if ring_tag[slot] == issue:",
            "    ring_issue[slot] += 1",
            "else:",
            "    ring_tag[slot] = issue",
            "    ring_issue[slot] = 1",
            "    ring_mem[slot] = 0",
            "    ring_alu[slot] = 0",
            "    ring_mul[slot] = 0",
            f"{ring_counter}[slot] += 1",
        )
        if fixed_latency is not None:
            out.emit(f"complete = issue + {_lit(fixed_latency)}")
        else:
            setup, expr = _address_statements(pattern, index, fallback_patterns)
            out.block(*setup)
            out.block(
                f"latency, dl1_hit, l2_hit, _ = hierarchy_access({expr}, False, issue, {_lit(ace)})",
                "if not dl1_hit and not l2_hit:",
                "    l2_misses += 1",
                "complete = issue + latency",
            )

    # ------------------------------------------------------------ commit
    out.block(
        "commit = complete + 1",
        "if last_commit_cycle > commit:",
        "    commit = last_commit_cycle",
        f"if commit == last_commit_cycle and commit_count >= {config.commit_width}:",
        "    commit += 1",
        "if commit == last_commit_cycle:",
        "    commit_count += 1",
        "else:",
        "    commit_count = 1",
        "last_commit_cycle = commit",
        "if commit > final_cycle:",
        "    final_cycle = commit",
    )

    if is_store and pattern is not None:
        setup, expr = _address_statements(pattern, index, fallback_patterns)
        out.block(*setup)
        out.emit(f"hierarchy_access({expr}, True, commit, {_lit(ace)})")

    # ------------------------------------------------------ branch logic
    if is_branch:
        if loop_closing:
            out.emit("taken = closing_taken")
        else:
            out.emit(f"taken = branch_random() < {_lit(taken_probability)}")
        out.block(
            f"if predictor_update({_lit(pc)}, taken):",
            "    branch_mispredictions += 1",
            f"    resume = complete + {config.branch_misprediction_penalty}",
            "    if resume > fetch_resume_cycle:",
            "        fetch_resume_cycle = resume",
        )

    # ------------------------------------------------- structural state
    out.block(
        "rob_append(commit)",
        f"if rob_len >= {config.rob_entries}:",
        "    rob_popleft()",
        "else:",
        "    rob_len += 1",
    )
    if is_lq:
        out.block(
            "lq_append(commit)",
            f"if lq_len >= {config.lq_entries}:",
            "    lq_popleft()",
            "else:",
            "    lq_len += 1",
        )
    elif is_store:
        out.block(
            "sq_append(commit)",
            f"if sq_len >= {config.sq_entries}:",
            "    sq_popleft()",
            "else:",
            "    sq_len += 1",
        )
    if not is_nop:
        out.block("heappush(iq_issue_heap, issue)", "iq_len += 1")
    if writes_reg:
        out.block("heappush(rename_commit_heap, commit)", "rename_len += 1")

    # --------------------------------------------------------- ACE credit
    out.block(
        "duration = float(commit - dispatch)",
        "rob_occ += duration",
    )
    if ace:
        out.emit(f"rob_ace += duration * {rob_bits}")
    if not is_nop:
        out.block(
            "duration = float(issue - dispatch)",
            "iq_occ += duration",
        )
        if ace:
            out.emit(f"iq_ace += duration * {iq_bits}")
    if is_lq:
        out.block(
            "lqt_occ += float(issue - dispatch)",
            "duration = float(commit - issue)",
            "lqt_occ += duration",
        )
        if ace:
            out.emit(f"lqt_ace += duration * {lqt_bits}")
        out.block(
            "lqd_occ += float(complete - dispatch)",
            "duration = float(commit - complete)",
            "lqd_occ += duration",
        )
        if data_frac:
            out.emit(f"lqd_ace += duration * {lqd_bits}" + ("" if data_frac == 1.0 else f" * {_lit(data_frac)}"))
    elif is_store:
        out.block(
            "sqt_occ += float(issue - dispatch)",
            "duration = float(commit - issue)",
            "sqt_occ += duration",
        )
        if ace:
            out.emit(f"sqt_ace += duration * {sqt_bits}")
        out.emit("sqd_occ += float(issue - dispatch)")
        if data_frac:
            out.emit(f"sqd_ace += duration * {sqd_bits}" + ("" if data_frac == 1.0 else f" * {_lit(data_frac)}"))
        out.emit("sqd_occ += duration")
        if track_sb:
            out.emit(f"sb_occ += {_lit(sb_drain)}")
            if data_frac:
                out.emit(f"sb_ace += {_lit(sb_drain * sb_bits * data_frac)}")
    if is_arith:
        fu_duration = float(fixed_latency if fixed_latency > 1 else 1)
        out.emit(f"fu_occ += {_lit(fu_duration)}")
        if ace:
            out.emit(f"fu_ace += {_lit(fu_duration * fu_bits)}")

    # ------------------------------------------- register-file lifetime
    if ace and srcs:
        for src in srcs:
            if all_present:
                out.block(
                    f"if issue > reg_last_read[{src}]:",
                    f"    reg_last_read[{src}] = issue",
                )
            else:
                out.block(
                    f"if reg_present[{src}] and issue > reg_last_read[{src}]:",
                    f"    reg_last_read[{src}] = issue",
                )
    if writes_reg:
        if all_present:
            out.block(
                f"if reg_ace[{dest}]:",
                f"    last_read = reg_last_read[{dest}]",
                f"    if last_read > reg_complete[{dest}]:",
                "        duration = float(last_read - reg_complete[" + str(dest) + "])",
                "        rf_occ += duration",
                f"        rf_ace += duration * {rf_bits} * reg_width[{dest}]",
            )
        else:
            out.block(
                f"if reg_present[{dest}]:",
                f"    if reg_ace[{dest}]:",
                f"        last_read = reg_last_read[{dest}]",
                f"        if last_read > reg_complete[{dest}]:",
                "            duration = float(last_read - reg_complete[" + str(dest) + "])",
                "            rf_occ += duration",
                f"            rf_ace += duration * {rf_bits} * reg_width[{dest}]",
                "else:",
                f"    reg_present[{dest}] = True",
                f"    extra_regs.append({dest})",
            )
        out.block(
            f"reg_complete[{dest}] = complete",
            f"reg_width[{dest}] = {_lit(width_frac)}",
            f"reg_ace[{dest}] = {_lit(ace)}",
            f"reg_last_read[{dest}] = -1",
            f"reg_ready[{dest}] = complete",
        )


def _emit_generic_op(
    out: _Emitter,
    *,
    track_sb: bool,
    sb_bits: int,
    sb_drain: float,
    bits: tuple[int, int, int, int, int, int, int, int],
    has_frontend: bool,
    frontend_miss_rate: float,
    frontend_miss_penalty: int,
    config: MachineConfig,
    runtime_frontend: bool = False,
) -> None:
    """Emit the generic per-op body (the interpreter transcription).

    Used for the final partial iteration of program-specialized kernels and
    for the whole main loop of the config-specialized batch kernel; mirrors
    the reference loop of :meth:`OutOfOrderCore.run_interpreted` statement
    for statement, reading the same precomputed info tuples.

    ``runtime_frontend`` emits the interpreter's runtime front-end gate
    (``has_frontend and frontend_random() < frontend_miss_rate``, same
    short-circuit so RNG draw order is preserved) instead of folding the
    program's miss rate/penalty in as literals.
    """
    rob_bits, iq_bits, lqt_bits, lqd_bits, sqt_bits, sqd_bits, rf_bits, fu_bits = bits
    out.block(
        "(_, is_memory, is_nop, is_lq, is_store, is_branch, is_mul,",
        " is_arith, writes_reg, dest, srcs, ace, data_frac, width_frac,",
        " fixed_latency, pattern, taken_probability, loop_closing,",
        " pc) = body_infos[_tail_index]",
        "dispatch = min_dispatch_cycle",
        "if fetch_resume_cycle > dispatch:",
        "    dispatch = fetch_resume_cycle",
    )
    if runtime_frontend:
        out.block(
            "if has_frontend and frontend_random() < frontend_miss_rate:",
            "    dispatch += frontend_miss_penalty",
        )
    elif has_frontend:
        out.block(
            f"if frontend_random() < {_lit(frontend_miss_rate)}:",
            f"    dispatch += {_lit(frontend_miss_penalty)}",
        )
    out.block(
        f"if rob_len >= {config.rob_entries} and rob_commits[0] > dispatch:",
        "    dispatch = rob_commits[0]",
        "if is_lq:",
        f"    if lq_len >= {config.lq_entries} and lq_commits[0] > dispatch:",
        "        dispatch = lq_commits[0]",
        "elif is_store:",
        f"    if sq_len >= {config.sq_entries} and sq_commits[0] > dispatch:",
        "        dispatch = sq_commits[0]",
        "if writes_reg:",
        "    while rename_len and rename_commit_heap[0] <= dispatch:",
        "        heappop(rename_commit_heap)",
        "        rename_len -= 1",
        f"    if rename_len >= {config.free_rename_registers}:",
        "        if rename_commit_heap[0] > dispatch:",
        "            dispatch = rename_commit_heap[0]",
        "        while rename_len and rename_commit_heap[0] <= dispatch:",
        "            heappop(rename_commit_heap)",
        "            rename_len -= 1",
        "if not is_nop:",
        "    while iq_len and iq_issue_heap[0] <= dispatch:",
        "        heappop(iq_issue_heap)",
        "        iq_len -= 1",
        f"    if iq_len >= {config.iq_entries}:",
        "        if iq_issue_heap[0] > dispatch:",
        "            dispatch = iq_issue_heap[0]",
        "        while iq_len and iq_issue_heap[0] <= dispatch:",
        "            heappop(iq_issue_heap)",
        "            iq_len -= 1",
        "if dispatch == disp_cycle:",
        f"    if disp_count >= {config.dispatch_width}:",
        "        dispatch += 1",
        "        disp_cycle = dispatch",
        "        disp_count = 1",
        "    else:",
        "        disp_count += 1",
        "else:",
        "    disp_cycle = dispatch",
        "    disp_count = 1",
        "min_dispatch_cycle = dispatch",
        "if is_nop:",
        "    issue = dispatch",
        "    complete = dispatch",
        "    latency = 0",
        "else:",
        "    issue = dispatch + 1",
        "    for src in srcs:",
        "        ready = reg_ready[src]",
        "        if ready > issue:",
        "            issue = ready",
        "    while True:",
        "        slot = issue & ring_mask",
        "        if ring_tag[slot] == issue:",
        f"            if ring_issue[slot] >= {config.issue_width}:",
        "                issue += 1",
        "                continue",
        "            if is_memory:",
        f"                if ring_mem[slot] >= {config.memory_issue_width}:",
        "                    issue += 1",
        "                    continue",
        "            elif is_mul:",
        f"                if ring_mul[slot] >= {config.int_multipliers}:",
        "                    issue += 1",
        "                    continue",
        f"            elif ring_alu[slot] >= {config.int_alus}:",
        "                issue += 1",
        "                continue",
        "        break",
        "    if issue - dispatch >= ring_size:",
        "        ring_size, ring_mask, ring_tag, ring_issue, ring_mem, ring_alu, ring_mul = _grow_rings(",
        "            issue - dispatch, dispatch, ring_size,",
        "            ring_tag, ring_issue, ring_mem, ring_alu, ring_mul,",
        "        )",
        "        slot = issue & ring_mask",
        "    if ring_tag[slot] == issue:",
        "        ring_issue[slot] += 1",
        "    else:",
        "        ring_tag[slot] = issue",
        "        ring_issue[slot] = 1",
        "        ring_mem[slot] = 0",
        "        ring_alu[slot] = 0",
        "        ring_mul[slot] = 0",
        "    if is_memory:",
        "        ring_mem[slot] += 1",
        "    elif is_mul:",
        "        ring_mul[slot] += 1",
        "    else:",
        "        ring_alu[slot] += 1",
        "    if fixed_latency is not None:",
        "        latency = fixed_latency",
        "    else:",
        "        address = pattern.resolve(iteration, memory_rng)",
        "        latency, dl1_hit, l2_hit, _ = hierarchy_access(address, False, issue, ace)",
        "        if not dl1_hit and not l2_hit:",
        "            l2_misses += 1",
        "    complete = issue + latency",
        "commit = complete + 1",
        "if last_commit_cycle > commit:",
        "    commit = last_commit_cycle",
        f"if commit == last_commit_cycle and commit_count >= {config.commit_width}:",
        "    commit += 1",
        "if commit == last_commit_cycle:",
        "    commit_count += 1",
        "else:",
        "    commit_count = 1",
        "last_commit_cycle = commit",
        "if commit > final_cycle:",
        "    final_cycle = commit",
        "if is_store and pattern is not None:",
        "    address = pattern.resolve(iteration, memory_rng)",
        "    hierarchy_access(address, True, commit, ace)",
        "if is_branch:",
        "    if loop_closing:",
        "        taken = closing_taken",
        "    else:",
        "        taken = branch_random() < taken_probability",
        "    if predictor_update(pc, taken):",
        "        branch_mispredictions += 1",
        f"        resume = complete + {config.branch_misprediction_penalty}",
        "        if resume > fetch_resume_cycle:",
        "            fetch_resume_cycle = resume",
        "rob_append(commit)",
        f"if rob_len >= {config.rob_entries}:",
        "    rob_popleft()",
        "else:",
        "    rob_len += 1",
        "if is_lq:",
        "    lq_commits.append(commit)",
        f"    if lq_len >= {config.lq_entries}:",
        "        lq_commits.popleft()",
        "    else:",
        "        lq_len += 1",
        "elif is_store:",
        "    sq_commits.append(commit)",
        f"    if sq_len >= {config.sq_entries}:",
        "        sq_commits.popleft()",
        "    else:",
        "        sq_len += 1",
        "if not is_nop:",
        "    heappush(iq_issue_heap, issue)",
        "    iq_len += 1",
        "if writes_reg:",
        "    heappush(rename_commit_heap, commit)",
        "    rename_len += 1",
        "duration = float(commit - dispatch)",
        "rob_occ += duration",
        "if ace:",
        f"    rob_ace += duration * {rob_bits}",
        "if not is_nop:",
        "    duration = float(issue - dispatch)",
        "    iq_occ += duration",
        "    if ace:",
        f"        iq_ace += duration * {iq_bits}",
        "if is_lq:",
        "    lqt_occ += float(issue - dispatch)",
        "    duration = float(commit - issue)",
        "    lqt_occ += duration",
        "    if ace:",
        f"        lqt_ace += duration * {lqt_bits}",
        "    lqd_occ += float(complete - dispatch)",
        "    duration = float(commit - complete)",
        "    lqd_occ += duration",
        "    if data_frac:",
        f"        lqd_ace += duration * {lqd_bits} * data_frac",
        "elif is_store:",
        "    sqt_occ += float(issue - dispatch)",
        "    duration = float(commit - issue)",
        "    sqt_occ += duration",
        "    if ace:",
        f"        sqt_ace += duration * {sqt_bits}",
        "    sqd_occ += float(issue - dispatch)",
        "    if data_frac:",
        f"        sqd_ace += duration * {sqd_bits} * data_frac",
        "    sqd_occ += duration",
    )
    if track_sb:
        out.block(
            f"    sb_occ += {_lit(sb_drain)}",
            "    if data_frac:",
            f"        sb_ace += {_lit(sb_drain)} * {sb_bits} * data_frac",
        )
    out.block(
        "if is_arith:",
        "    duration = float(latency if latency > 1 else 1)",
        "    fu_occ += duration",
        "    if ace:",
        f"        fu_ace += duration * {fu_bits}",
        "if ace:",
        "    for src in srcs:",
        "        if reg_present[src] and issue > reg_last_read[src]:",
        "            reg_last_read[src] = issue",
        "if writes_reg:",
        "    if reg_present[dest]:",
        "        if reg_ace[dest]:",
        "            last_read = reg_last_read[dest]",
        "            if last_read > reg_complete[dest]:",
        "                duration = float(last_read - reg_complete[dest])",
        "                rf_occ += duration",
        f"                rf_ace += duration * {rf_bits} * reg_width[dest]",
        "    else:",
        "        reg_present[dest] = True",
        "        extra_regs.append(dest)",
        "    reg_complete[dest] = complete",
        "    reg_width[dest] = width_frac",
        "    reg_ace[dest] = ace",
        "    reg_last_read[dest] = -1",
        "    reg_ready[dest] = complete",
    )
