"""Population-at-once batch evaluation: shared warm state + plan memoization.

The GA evaluates a whole generation of genomes against one machine
configuration.  Per genome, the per-program kernel path (PR 5) pays codegen
+ compile + functional warm-up from scratch; at GA scale the warm-up — which
walks the program's declared :class:`~repro.isa.program.WarmupRegion`
footprint through the caches and TLBs — dominates.  This module retires that
per-genome cost:

* **One compiled kernel per config.**  :func:`repro.uarch.kernelgen.
  generate_batch_kernel_source` folds the machine constants in once; the
  per-genome operand tables stay runtime inputs, so one compile covers the
  whole search (see :func:`repro.uarch.kernel.batch_kernel_for`).
* **One functional warm-up per footprint.**  Stressmark candidates declare
  identical or near-identical warm-up footprints (the knob space only
  toggles the L2-miss region), so a generation needs at most a couple of
  distinct warm states.  :class:`WarmState` runs ``warm_region`` once
  against a master ledger/hierarchy pair and ``materialize``\\ s an
  independent clone per genome — bit-identical to re-running the warm-up,
  because warm-up is deterministic, draws no RNG, and happens entirely at
  cycle 0.  Warm sharing is only used for programs with no explicit setup
  instructions: for those the interpreter's ``spawn('setup')`` stream is
  created but never drawn from, so skipping the replay perturbs nothing.
* **One operand-plan per (config, population).**  The per-op info tables
  (the interpreter's 19-field tuples) are laid out as flat per-column lists
  and memoized by (config digest, sorted program digests) in the attached
  ArtifactStore, so re-evaluated populations (bench repeats, resumed runs,
  pool workers) skip the per-genome precomputation entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.memory.hierarchy import MemoryHierarchy
from repro.parallel.cache import evaluation_context_digest
from repro.uarch import kernel as _kernel
from repro.uarch.kernelgen import KERNEL_SCHEMA
from repro.vuln.ledger import VulnerabilityLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.isa.program import Program
    from repro.uarch.config import MachineConfig
    from repro.uarch.pipeline import OutOfOrderCore, SimulationResult

#: Distinct warm states kept per process.  A GA search touches at most two
#: (the knob space only toggles the L2-miss region's presence).
WARM_CACHE_LIMIT = 8

#: Operand plans kept in the in-process memo (oldest evicted first).
PLAN_CACHE_LIMIT = 32


@dataclass
class BatchStats:
    """Process-local counters for the batch plane (observability/tests)."""

    warm_builds: int = 0
    warm_hits: int = 0
    plans_built: int = 0
    plan_memo_hits: int = 0
    plan_store_hits: int = 0
    batch_runs: int = 0

    def reset(self) -> None:
        self.warm_builds = 0
        self.warm_hits = 0
        self.plans_built = 0
        self.plan_memo_hits = 0
        self.plan_store_hits = 0
        self.batch_runs = 0


STATS = BatchStats()

_warm_states: dict[tuple, "WarmState"] = {}
_plans: dict[str, dict[str, list]] = {}


# -------------------------------------------------------------- warm state


class WarmState:
    """A functionally warmed (ledger, hierarchy) master, cloned per genome.

    Construction performs exactly the interpreter's warm-up sequence — the
    same ``MemoryHierarchy`` construction against a fresh ledger, then one
    ``warm_region`` call per declared footprint region, in order.  Warm-up
    is deterministic, consumes no RNG, and runs entirely at cycle 0, so a
    clone of the master is indistinguishable from a freshly warmed pair.
    """

    def __init__(self, config: "MachineConfig", signature: tuple) -> None:
        self.signature = signature
        self._ledger = VulnerabilityLedger(config)
        self._hierarchy = MemoryHierarchy(
            dl1_config=config.dl1,
            l2_config=config.l2,
            dtlb_config=config.dtlb,
            memory_latency=config.memory_latency,
            tlb_miss_penalty=config.tlb_miss_penalty,
            ledger=self._ledger,
            l2_tlb_config=config.l2_tlb,
            l2_tlb_hit_latency=config.l2_tlb_hit_latency,
        )
        for base, size_bytes, dirty, ace, word_fraction, recurrent in signature:
            self._hierarchy.warm_region(
                base=base,
                size_bytes=size_bytes,
                dirty=dirty,
                ace=ace,
                word_fraction=word_fraction,
                recurrent=recurrent,
            )

    def materialize(self) -> tuple[VulnerabilityLedger, MemoryHierarchy]:
        """An independent (ledger, hierarchy) clone for one simulation."""
        ledger = self._ledger.clone()
        return ledger, self._hierarchy.clone(ledger)


def warm_signature(program: "Program") -> tuple:
    """The warm-up footprint of a program as a hashable cache key."""
    return tuple(
        (region.base, region.size_bytes, region.dirty, region.ace,
         region.word_fraction, region.recurrent)
        for region in program.warmup_regions
    )


def supports_warm_sharing(program: "Program") -> bool:
    """Whether a shared warm state is bit-identical for this program.

    Programs with explicit setup instructions replay them through the
    hierarchy (and spawn-and-draw the setup RNG stream), which the shared
    warm state does not capture; they fall back to the unshared path.
    """
    return not program.setup


def warm_state_for(config: "MachineConfig", program: "Program") -> WarmState:
    """The (memoized) warm state for a program's declared footprint."""
    key = (_kernel.config_digest(config), warm_signature(program))
    state = _kernel._lru_get(_warm_states, key)
    if state is not None:
        STATS.warm_hits += 1
        return state
    state = WarmState(config, key[1])
    _kernel._lru_put(_warm_states, key, state, WARM_CACHE_LIMIT)
    STATS.warm_builds += 1
    return state


# ------------------------------------------------------------ operand plans


def plan_key(cfg_digest: str, prog_digests: list[str]) -> str:
    """ArtifactStore key of one batch's operand plan.

    Keyed by (config digest, sorted program digests): the same population
    evaluated again — bench repeats, resumed searches, another worker —
    resolves to the same plan regardless of batch ordering.
    """
    batch_digest = evaluation_context_digest(
        "kernel-batch-plan", KERNEL_SCHEMA, sorted(prog_digests)
    )
    return f"kernel-batch-plan|v{KERNEL_SCHEMA}|{cfg_digest}|{batch_digest}"


def _build_infos(core: "OutOfOrderCore", program: "Program") -> list[tuple]:
    return [
        core._instruction_info(instruction, index, False, program)
        for index, instruction in enumerate(program.body)
    ]


def _plan_for(
    core: "OutOfOrderCore",
    cfg_digest: str,
    programs: list["Program"],
    prog_digests: list[str],
) -> dict[str, list]:
    """Per-op info rows for every program of the batch, keyed by digest.

    Plans are stored column-major (one flat list per info field, shared
    across the ops of a program) and zipped back into the row tuples the
    hot loop unpacks; rows are memoized in-process and the columns persist
    in the attached ArtifactStore.
    """
    key = plan_key(cfg_digest, prog_digests)
    rows = _kernel._lru_get(_plans, key)
    if rows is not None:
        STATS.plan_memo_hits += 1
        return rows

    columns: Optional[dict[str, tuple]] = None
    store = _kernel._active_source_store()
    if store is not None:
        try:
            stored = store.get(key)
        except Exception:
            _kernel._discard_failed_store(store)
            store = None
            stored = None
        if isinstance(stored, dict) and set(stored) == set(prog_digests):
            columns = stored
            STATS.plan_store_hits += 1

    if columns is None:
        columns = {}
        for digest, program in zip(prog_digests, programs):
            if digest not in columns:
                infos = _build_infos(core, program)
                columns[digest] = tuple(zip(*infos)) if infos else ()
        STATS.plans_built += 1
        store = _kernel._active_source_store()
        if store is not None:
            try:
                store.put(key, columns)
            except Exception:
                _kernel._discard_failed_store(store)

    rows = {
        digest: (list(zip(*cols)) if cols else [])
        for digest, cols in columns.items()
    }
    _kernel._lru_put(_plans, key, rows, PLAN_CACHE_LIMIT)
    return rows


# ------------------------------------------------------------- batch runner


def run_many(
    core: "OutOfOrderCore",
    programs: list["Program"],
    max_instructions: int = 50_000,
) -> Optional[list["SimulationResult"]]:
    """Simulate every program of a batch through the config batch kernel.

    Returns results aligned with ``programs``, or ``None`` when the batch
    kernel is unavailable for this configuration (the caller falls back to
    the per-genome path).  Programs the batch plane cannot cover (empty
    bodies) run through the interpreted reference inline.
    """
    config = core.config
    kernel = _kernel.batch_kernel_for(config)
    if kernel is None:
        return None
    cfg_digest = _kernel.config_digest(config)
    prog_digests = [_kernel.program_digest(program) for program in programs]
    plans = _plan_for(core, cfg_digest, programs, prog_digests)

    results: list["SimulationResult"] = []
    for program, digest in zip(programs, prog_digests):
        if not program.body:
            results.append(core.run_interpreted(program, max_instructions, True))
            continue
        warm = warm_state_for(config, program) if supports_warm_sharing(program) else None
        results.append(kernel(core, program, max_instructions, plans[digest], warm))
        STATS.batch_runs += 1
    return results


def run_one(
    core: "OutOfOrderCore",
    program: "Program",
    max_instructions: int = 50_000,
) -> Optional["SimulationResult"]:
    """Single-program entry of the batch plane (shares warm/kernel caches)."""
    results = run_many(core, [program], max_instructions)
    return results[0] if results else None


def clear_batch_caches() -> None:
    """Drop warm states and plans, reset counters (tests/benchmarks)."""
    _warm_states.clear()
    _plans.clear()
    STATS.reset()
