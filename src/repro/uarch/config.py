"""Machine configurations (Table I baseline and Table II Configuration A)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.memory.cache import CacheConfig
from repro.memory.tlb import TlbConfig


@dataclass(frozen=True)
class MachineConfig:
    """Out-of-order core + memory hierarchy configuration.

    Field defaults correspond to the paper's baseline Alpha 21264-class
    configuration (Table I).  Use :func:`baseline_config` / :func:`config_a`
    to obtain the two configurations evaluated in the paper, or
    ``dataclasses.replace`` to derive custom ones.
    """

    name: str = "baseline"

    # Widths (Table I: fetch/slot/map/issue/commit = 4/4/4/4/4).
    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    memory_issue_width: int = 2  # the 21264 issues at most two memory ops/cycle

    # Functional units.
    int_alus: int = 4
    int_multipliers: int = 1
    alu_latency: int = 1
    multiply_latency: int = 7
    divide_latency: int = 20

    # Queueing structures.
    iq_entries: int = 20
    iq_bits_per_entry: int = 32
    rob_entries: int = 80
    rob_bits_per_entry: int = 76
    lq_entries: int = 32
    sq_entries: int = 32
    lsq_bits_per_entry: int = 128  # split evenly between tag and data arrays
    rename_registers: int = 80
    register_bits: int = 64
    architected_registers: int = 32
    fu_bits_per_unit: int = 64

    # Branch handling.
    branch_predictor_global_entries: int = 4096
    branch_predictor_local_entries: int = 1024
    branch_predictor_choice_entries: int = 4096
    branch_misprediction_penalty: int = 7

    # Memory hierarchy.
    dl1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="dl1", size_bytes=64 * 1024, associativity=2, line_bytes=64, hit_latency=3
        )
    )
    il1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="il1", size_bytes=64 * 1024, associativity=2, line_bytes=64, hit_latency=1
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="l2", size_bytes=1024 * 1024, associativity=1, line_bytes=64, hit_latency=7
        )
    )
    dtlb: TlbConfig = field(default_factory=lambda: TlbConfig(entries=256, page_bytes=8 * 1024))
    memory_latency: int = 200
    tlb_miss_penalty: int = 30

    # Flag-gated tracked structures (PR 4).  Zero entries disables both the
    # structure and its SER accounting, leaving the stock paper configurations
    # bit-identical; see the ``extended`` registered config and ARCHITECTURE.md.
    store_buffer_entries: int = 0
    store_buffer_bits_per_entry: int = 128
    store_buffer_drain_cycles: int = 6
    l2_tlb_entries: int = 0
    l2_tlb_hit_latency: int = 8

    def __post_init__(self) -> None:
        if min(self.fetch_width, self.dispatch_width, self.issue_width, self.commit_width) <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.rename_registers < self.architected_registers:
            raise ValueError("rename register file must be at least as large as the architected set")
        if min(self.iq_entries, self.rob_entries, self.lq_entries, self.sq_entries) <= 0:
            raise ValueError("queue sizes must be positive")
        if self.store_buffer_entries < 0 or self.l2_tlb_entries < 0:
            raise ValueError("optional structure entry counts must be non-negative")
        if self.store_buffer_entries and (
            self.store_buffer_bits_per_entry <= 0 or self.store_buffer_drain_cycles <= 0
        ):
            raise ValueError("store buffer geometry/latency must be positive when enabled")
        if self.l2_tlb_entries and self.l2_tlb_hit_latency <= 0:
            raise ValueError("L2 TLB hit latency must be positive when enabled")

    @property
    def free_rename_registers(self) -> int:
        """Rename registers available for in-flight (uncommitted) results."""
        return self.rename_registers - self.architected_registers

    @property
    def functional_units(self) -> int:
        return self.int_alus + self.int_multipliers

    @property
    def l2_tlb(self) -> "TlbConfig | None":
        """Geometry of the optional unified second-level TLB (None = disabled)."""
        if self.l2_tlb_entries <= 0:
            return None
        return TlbConfig(
            entries=self.l2_tlb_entries,
            page_bytes=self.dtlb.page_bytes,
            entry_bits=self.dtlb.entry_bits,
        )

    @property
    def lsq_tag_bits(self) -> int:
        return self.lsq_bits_per_entry // 2

    @property
    def lsq_data_bits(self) -> int:
        return self.lsq_bits_per_entry - self.lsq_tag_bits

    def derive(self, **overrides: object) -> "MachineConfig":
        """Return a copy of this configuration with fields overridden."""
        return replace(self, **overrides)


def baseline_config() -> MachineConfig:
    """The paper's baseline configuration (Table I)."""
    return MachineConfig(name="baseline")


def extended_config() -> MachineConfig:
    """Baseline plus the flag-gated tracked structures (store buffer, L2 TLB).

    Demonstrates the pluggable vulnerability model end-to-end: the post-commit
    store buffer and a unified second-level TLB are enabled, so their AVF/SER
    appears in reports, group aggregation and GA fitness.  The paper's
    structure set is unchanged — only the two extensions are added.
    """
    return MachineConfig(
        name="extended",
        store_buffer_entries=32,
        l2_tlb_entries=512,
    )


def config_a() -> MachineConfig:
    """The paper's alternate Configuration A (Table II).

    Larger IQ (32), ROB (96), rename register file (96), four multipliers,
    4-way DL1, 512-entry DTLB and a 2 MB 8-way L2 with 12-cycle latency.
    """
    return MachineConfig(
        name="config_a",
        int_multipliers=4,
        iq_entries=32,
        rob_entries=96,
        rename_registers=96,
        dl1=CacheConfig(
            name="dl1", size_bytes=64 * 1024, associativity=4, line_bytes=64, hit_latency=3
        ),
        dtlb=TlbConfig(entries=512, page_bytes=8 * 1024),
        l2=CacheConfig(
            name="l2", size_bytes=2 * 1024 * 1024, associativity=8, line_bytes=64, hit_latency=12
        ),
    )
