"""Circuit-level fault-rate models (unit, RHC and EDR of Figure 8a).

The paper assumes an arbitrary raw fault rate of 1 unit/bit for every
structure in the baseline study, and the two SER-mitigation scenarios of
Figure 8a:

* **RHC** (radiation-hardened circuitry on ROB/LQ/SQ): ROB 0.25, LQ tag/data
  0.4, SQ tag/data 0.35, everything else 1.
* **EDR** (error detection and recovery on ROB/LQ/SQ): those structures are
  fully protected (0), everything else 1.

Cache, DTLB and L2 fault rates are unchanged (1 unit/bit) in all scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.uarch.structures import StructureName
from repro.vuln.structures import STRUCTURES


def _fault_rate_key(structure: StructureName) -> str:
    """The structure's declared fault-rate key (its own value if unregistered)."""
    if structure.value in STRUCTURES:
        return STRUCTURES.get(structure.value).fault_rate_key
    return structure.value


@dataclass(frozen=True)
class FaultRateModel:
    """Per-structure circuit-level fault rates in units/bit."""

    name: str
    rates: Mapping[StructureName, float] = field(default_factory=dict)
    default_rate: float = 1.0

    def __post_init__(self) -> None:
        for structure, rate in self.rates.items():
            if rate < 0.0:
                raise ValueError(f"fault rate for {structure} must be non-negative")
        if self.default_rate < 0.0:
            raise ValueError("default fault rate must be non-negative")

    def rate(self, structure: StructureName) -> float:
        """Raw fault rate for ``structure`` in units/bit.

        Resolution order: an explicit per-structure rate, then the rate of
        the structure's declared ``fault_rate_key`` (descriptors may alias
        another structure's circuit technology, e.g. a new cache sharing the
        DL1 cell rate), then ``default_rate``.
        """
        value = self.rates.get(structure)
        if value is not None:
            return float(value)
        key = _fault_rate_key(structure)
        if key != structure.value:
            try:
                alias = StructureName(key)
            except ValueError:
                alias = None
            if alias is not None:
                value = self.rates.get(alias)
                if value is not None:
                    return float(value)
        return float(self.default_rate)

    def with_rate(self, structure: StructureName, rate: float) -> "FaultRateModel":
        """Return a copy with one structure's rate overridden."""
        updated = dict(self.rates)
        updated[structure] = rate
        return FaultRateModel(name=self.name, rates=updated, default_rate=self.default_rate)


def unit_fault_rates() -> FaultRateModel:
    """All structures at 1 unit/bit (the paper's baseline assumption)."""
    return FaultRateModel(name="unit")


def rhc_fault_rates() -> FaultRateModel:
    """Radiation-hardened ROB/LQ/SQ (Figure 8a, column RHC)."""
    return FaultRateModel(
        name="rhc",
        rates={
            StructureName.ROB: 0.25,
            StructureName.LQ_TAG: 0.4,
            StructureName.LQ_DATA: 0.4,
            StructureName.SQ_TAG: 0.35,
            StructureName.SQ_DATA: 0.35,
        },
    )


def edr_fault_rates() -> FaultRateModel:
    """Error detection and recovery on ROB/LQ/SQ (Figure 8a, column EDR)."""
    return FaultRateModel(
        name="edr",
        rates={
            StructureName.ROB: 0.0,
            StructureName.LQ_TAG: 0.0,
            StructureName.LQ_DATA: 0.0,
            StructureName.SQ_TAG: 0.0,
            StructureName.SQ_DATA: 0.0,
        },
    )
