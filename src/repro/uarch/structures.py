"""ACE accounting for queueing structures, the register file and FUs.

AVF of a structure is the fraction of its bit-cycles that hold ACE state:

    AVF = sum over entries of ACE cycles  /  (entries * total cycles)

The pipeline computes, for each dynamic instruction, the cycles during which
it occupies each structure and how many of the occupied bits are ACE.  Those
intervals are recorded here; AVF and SER fall out at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class StructureName(Enum):
    """Identifiers of every structure tracked for SER accounting."""

    IQ = "iq"
    ROB = "rob"
    LQ_TAG = "lq_tag"
    LQ_DATA = "lq_data"
    SQ_TAG = "sq_tag"
    SQ_DATA = "sq_data"
    RF = "rf"
    FU = "fu"
    DL1 = "dl1"
    DTLB = "dtlb"
    L2 = "l2"

    @property
    def is_core(self) -> bool:
        """True for structures inside the core (queues, RF, FU)."""
        return self in _CORE_STRUCTURES

    @property
    def is_queueing(self) -> bool:
        """True for the queueing structures (QS group of the paper)."""
        return self in _QUEUEING_STRUCTURES


_QUEUEING_STRUCTURES = frozenset(
    {
        StructureName.IQ,
        StructureName.ROB,
        StructureName.LQ_TAG,
        StructureName.LQ_DATA,
        StructureName.SQ_TAG,
        StructureName.SQ_DATA,
        StructureName.FU,
    }
)

_CORE_STRUCTURES = _QUEUEING_STRUCTURES | {StructureName.RF}


@dataclass
class AceAccumulator:
    """Accumulates occupancy and ACE bit-cycles for one structure.

    Attributes
    ----------
    name:
        Which structure this accumulator belongs to.
    entries:
        Number of entries in the structure.
    bits_per_entry:
        Storage bits per entry.
    """

    name: StructureName
    entries: int
    bits_per_entry: int
    ace_bit_cycles: float = 0.0
    occupied_entry_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.bits_per_entry <= 0:
            raise ValueError("entries and bits_per_entry must be positive")

    @property
    def total_bits(self) -> int:
        """Total storage bits of the structure."""
        return self.entries * self.bits_per_entry

    def add_interval(self, start: int, end: int, ace_fraction: float = 1.0) -> None:
        """Record that one entry was occupied during [start, end).

        ``ace_fraction`` is the fraction of the entry's bits that hold ACE
        state during the interval (e.g. 0.5 for a 32-bit operand in a 64-bit
        data field, or 0.0 for an un-ACE instruction).
        """
        if end <= start:
            return
        if not 0.0 <= ace_fraction <= 1.0:
            raise ValueError("ace_fraction must be within [0, 1]")
        duration = float(end - start)
        self.occupied_entry_cycles += duration
        self.ace_bit_cycles += duration * self.bits_per_entry * ace_fraction

    def add_bit_cycles(self, ace_bit_cycles: float, occupied_entry_cycles: float = 0.0) -> None:
        """Directly add pre-computed ACE bit-cycles (used for caches/TLB)."""
        if ace_bit_cycles < 0.0 or occupied_entry_cycles < 0.0:
            raise ValueError("bit-cycles must be non-negative")
        self.ace_bit_cycles += ace_bit_cycles
        self.occupied_entry_cycles += occupied_entry_cycles

    def avf(self, total_cycles: int) -> float:
        """Architectural Vulnerability Factor over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.ace_bit_cycles / (self.total_bits * float(total_cycles)))

    def average_occupancy(self, total_cycles: int) -> float:
        """Mean fraction of entries occupied over the run."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.occupied_entry_cycles / (self.entries * float(total_cycles)))


def core_structure_accumulators(config: "MachineConfig") -> dict[StructureName, AceAccumulator]:
    """Create accumulators for every core structure of a machine configuration."""
    from repro.uarch.config import MachineConfig  # local import to avoid a cycle

    if not isinstance(config, MachineConfig):
        raise TypeError("config must be a MachineConfig")
    return {
        StructureName.IQ: AceAccumulator(StructureName.IQ, config.iq_entries, config.iq_bits_per_entry),
        StructureName.ROB: AceAccumulator(
            StructureName.ROB, config.rob_entries, config.rob_bits_per_entry
        ),
        StructureName.LQ_TAG: AceAccumulator(
            StructureName.LQ_TAG, config.lq_entries, config.lsq_tag_bits
        ),
        StructureName.LQ_DATA: AceAccumulator(
            StructureName.LQ_DATA, config.lq_entries, config.lsq_data_bits
        ),
        StructureName.SQ_TAG: AceAccumulator(
            StructureName.SQ_TAG, config.sq_entries, config.lsq_tag_bits
        ),
        StructureName.SQ_DATA: AceAccumulator(
            StructureName.SQ_DATA, config.sq_entries, config.lsq_data_bits
        ),
        StructureName.RF: AceAccumulator(
            StructureName.RF, config.rename_registers, config.register_bits
        ),
        StructureName.FU: AceAccumulator(
            StructureName.FU, config.functional_units, config.fu_bits_per_unit
        ),
    }
