"""Structure identities and ACE accounts (compatibility surface).

AVF of a structure is the fraction of its bit-cycles that hold ACE state:

    AVF = sum over entries of ACE cycles  /  (entries * total cycles)

Since the vulnerability-model refactor the authoritative definitions live in
:mod:`repro.vuln`: structures are :class:`~repro.vuln.structures.
VulnerableStructure` descriptors in the :data:`~repro.vuln.structures.
STRUCTURES` registry, and accounting flows through the
:class:`~repro.vuln.ledger.VulnerabilityLedger`.  This module re-exports the
identity (:class:`StructureName`) and account (:class:`AceAccumulator`)
types under their historical import path and keeps the
:func:`core_structure_accumulators` helper used by analysis code and tests.
"""

from __future__ import annotations

from repro.vuln.ledger import AceAccumulator, VulnerabilityLedger
from repro.vuln.structures import (
    STRUCTURES,
    StructureName,
    VulnerableStructure,
    enabled_structures,
    register_structure,
)

__all__ = [
    "AceAccumulator",
    "STRUCTURES",
    "StructureName",
    "VulnerableStructure",
    "core_structure_accumulators",
    "enabled_structures",
    "register_structure",
]


def core_structure_accumulators(config: "MachineConfig") -> dict[StructureName, AceAccumulator]:
    """Create accounts for every enabled *core* structure of a configuration.

    Registry-driven: any registered descriptor of kind ``"core"`` whose
    ``enabled`` predicate holds for ``config`` contributes an account, in
    registration order (the stock eight of the paper — IQ, ROB, LQ/SQ tag and
    data, RF, FU — plus flag-gated extensions such as the store buffer).
    """
    from repro.uarch.config import MachineConfig  # local import to avoid a cycle

    if not isinstance(config, MachineConfig):
        raise TypeError("config must be a MachineConfig")
    return {
        descriptor.structure: AceAccumulator(
            descriptor.structure, descriptor.entries(config), descriptor.bits_per_entry(config)
        )
        for descriptor in enabled_structures(config)
        if descriptor.kind == "core"
    }
