"""Cycle-level out-of-order core model with ACE/AVF accounting.

The model is a one-pass timing simulator: dynamic instructions are processed
in program order and their dispatch, issue, completion and commit cycles are
computed subject to the machine's structural constraints (ROB/IQ/LQ/SQ/rename
register capacity, dispatch/issue/commit bandwidth, memory-issue ports,
functional-unit counts, branch misprediction redirects and data-memory
latency).  Every dynamic instruction then contributes occupancy and ACE
intervals to the per-structure accumulators, which is exactly the information
ACE analysis needs:

* **ROB** entries are occupied from dispatch to commit and are ACE when the
  instruction is ACE.
* **IQ** entries are occupied (and ACE) from dispatch to issue.
* **LQ/SQ** entries are occupied from dispatch to commit; the tag array is
  ACE once the address is computed at issue, the LQ data array only once the
  data has returned from the memory hierarchy, and the SQ data array once the
  store's operands are ready (the paper's Section IV-A.1 distinction).
* **Rename registers** are ACE from the producer's completion until the last
  read by an ACE consumer.
* **FUs** are ACE while executing ACE arithmetic instructions.
* **DL1/DTLB/L2** ACE time comes from the lifetime analysis embedded in the
  memory hierarchy.

Branch mispredictions redirect fetch: the front-end is stalled until the
branch resolves plus the misprediction penalty, which drains the windows the
same way wrong-path flushes do (wrong-path entries are un-ACE and therefore
never contribute ACE time anyway).

Front-end miss behaviour of workloads (I-cache / I-TLB misses and fetch
inefficiencies) is modelled statistically: programs may carry
``metadata["frontend_miss_rate"]`` (per-instruction probability) and
``metadata["frontend_miss_penalty"]`` (cycles), which inject fetch bubbles.

Implementation notes (hot loop)
-------------------------------
``run`` is the single hottest function of the repository — every GA fitness
evaluation is one call.  By default it executes through a *program-
specialized compiled kernel* (see :mod:`repro.uarch.kernel` and
ARCHITECTURE.md, "Kernel lifecycle"); ``run_interpreted`` below is the
reference implementation the kernels are generated from and differentially
tested against, and its inner loop avoids per-dynamic-op Python overhead:

* Static per-instruction facts (class flags, latencies, ACE fractions,
  branch behaviour) are precomputed once per run into flat tuples instead of
  being re-derived through ``Instruction`` properties per dynamic op.
* The per-cycle dispatch/commit bandwidth counters collapse to a scalar
  ``(cycle, count)`` pair each, because their accesses are monotone in the
  cycle; the issue/memory-port/ALU/multiplier counters use cycle-tagged ring
  buffers with no per-cycle clearing.  A ring slot is valid only when its
  tag equals the probed cycle; rings grow (rare) whenever an instruction's
  issue-to-dispatch span approaches the ring size, which is the exact
  condition under which two live cycles could alias.
* ACE intervals are batched into local floating-point accumulators and
  flushed into the run's :class:`~repro.vuln.ledger.VulnerabilityLedger`
  accounts once at the end of the run.  The sequence of floating-point
  additions is unchanged, so results are bit-identical with the
  straightforward per-op accounting.  Storage-structure (DL1/L2/DTLB and
  the optional L2 TLB) ACE time flows through the same ledger via the
  lifetime events the memory hierarchy emits.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.branch.predictors import HybridPredictor
from repro.isa.instructions import ARCH_REG_COUNT, Instruction, InstructionClass
from repro.isa.program import BranchBehavior, DynamicOp, Program
from repro.memory.hierarchy import MemoryAccessOutcome, MemoryHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.structures import AceAccumulator, StructureName
from repro.utils.rng import DeterministicRng
from repro.vuln.ledger import VulnerabilityLedger


@dataclass
class SimulationStats:
    """Aggregate performance-side statistics of a run."""

    total_cycles: int = 0
    committed_instructions: int = 0
    committed_ace_instructions: int = 0
    branch_count: int = 0
    branch_mispredictions: int = 0
    l2_misses: int = 0
    dl1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    dtlb_miss_rate: float = 0.0

    @property
    def ipc(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.committed_instructions / self.total_cycles

    @property
    def branch_misprediction_rate(self) -> float:
        if self.branch_count == 0:
            return 0.0
        return self.branch_mispredictions / self.branch_count


@dataclass
class SimulationResult:
    """Result of one detailed simulation: the vulnerability accounts + stats.

    ``accumulators`` is the per-structure account mapping of the run's
    :class:`~repro.vuln.ledger.VulnerabilityLedger` — every structure whose
    descriptor was enabled for the machine configuration, in registry order.
    """

    program_name: str
    config: MachineConfig
    accumulators: Mapping[StructureName, AceAccumulator]
    stats: SimulationStats
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles

    def avf(self, structure: StructureName) -> float:
        """AVF of one structure over the run."""
        return self.accumulators[structure].avf(self.stats.total_cycles)

    def occupancy(self, structure: StructureName) -> float:
        """Average occupancy of one structure over the run."""
        return self.accumulators[structure].average_occupancy(self.stats.total_cycles)

    def avf_by_structure(self) -> dict[StructureName, float]:
        """AVF of every tracked structure."""
        return {name: self.avf(name) for name in self.accumulators}


# Indices into the per-static-instruction info tuples built by
# ``OutOfOrderCore._instruction_info`` (documentation only; the run loop
# unpacks the whole tuple at once).
_INFO_FIELDS = (
    "index", "is_memory", "is_nop", "is_lq", "is_store", "is_branch",
    "is_mul", "is_arith", "writes_reg", "dest", "srcs", "ace",
    "data_frac", "width_frac", "fixed_latency", "pattern",
    "taken_probability", "loop_closing", "pc",
)


class OutOfOrderCore:
    """Out-of-order core simulator for a given :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)
        #: Kernel-backend pin (a KERNEL_BACKENDS name) — ``None`` resolves
        #: through the environment / default chain; see kernel_backends.
        self.kernel_backend: Optional[str] = None

    # ------------------------------------------------------------------ run

    def run(
        self,
        program: Program,
        max_instructions: int = 50_000,
        functional_setup: bool = True,
    ) -> SimulationResult:
        """Simulate ``program`` for up to ``max_instructions`` body instructions.

        ``functional_setup`` executes the program's setup section as a warm-up
        of the memory hierarchy (cache/TLB contents and lifetime state) without
        occupying core structures, mirroring the common practice of functional
        cache warm-up before a detailed simulation window.

        Execution is delegated to the selected *kernel backend* (see
        :mod:`repro.uarch.kernel_backends`): by default the per-program
        specialized kernels of :mod:`repro.uarch.kernel`, with the
        ``interpreted`` reference and the population-at-once ``batch`` plane
        as registered alternatives.  All backends are bit-identical to the
        interpreted reference loop — same floating-point addition order,
        same RNG consumption — so the switch is purely about speed.  Set
        ``REPRO_KERNEL=0`` to force the interpreter; invocations a compiled
        kernel does not cover (explicitly simulated setup sections, enormous
        bodies) fall back automatically.
        """
        if functional_setup:
            from repro.uarch import kernel_backends as _backends

            backend = _backends.resolve(self.kernel_backend)
            return backend.run_one(self, program, max_instructions)
        return self.run_interpreted(program, max_instructions, functional_setup)

    def run_interpreted(
        self,
        program: Program,
        max_instructions: int = 50_000,
        functional_setup: bool = True,
    ) -> SimulationResult:
        """The interpreted reference implementation of :meth:`run`.

        Kept as the semantics oracle for the generated kernels: the
        differential suite and the ``kernel-smoke`` gate compare the two
        paths cycle-for-cycle and ledger-credit-for-credit.
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")

        config = self.config
        rng = DeterministicRng(self.seed).spawn("sim", program.name)
        ledger = VulnerabilityLedger(config)
        hierarchy = MemoryHierarchy(
            dl1_config=config.dl1,
            l2_config=config.l2,
            dtlb_config=config.dtlb,
            memory_latency=config.memory_latency,
            tlb_miss_penalty=config.tlb_miss_penalty,
            ledger=ledger,
            l2_tlb_config=config.l2_tlb,
            l2_tlb_hit_latency=config.l2_tlb_hit_latency,
        )
        predictor = HybridPredictor(
            global_entries=config.branch_predictor_global_entries,
            local_history_entries=config.branch_predictor_local_entries,
            choice_entries=config.branch_predictor_choice_entries,
        )
        accumulators = ledger.accounts
        stats = SimulationStats()

        frontend_miss_rate = float(program.metadata.get("frontend_miss_rate", 0.0))
        frontend_miss_penalty = int(program.metadata.get("frontend_miss_penalty", 10))
        has_frontend_misses = frontend_miss_rate > 0.0

        # Independent, reproducible randomness streams for the different
        # stochastic behaviours of the run (addresses, branches, front-end).
        memory_rng = rng.spawn("memory")
        branch_rng = rng.spawn("branch")
        frontend_rng = rng.spawn("frontend")

        if functional_setup:
            self._run_functional_setup(program, hierarchy, rng)

        # -------------------------------------------- static precomputation
        body_infos = [
            self._instruction_info(instruction, index, False, program)
            for index, instruction in enumerate(program.body)
        ]
        setup_infos: list[tuple] = []
        if not functional_setup:
            setup_infos = [
                self._instruction_info(instruction, index, True, program)
                for index, instruction in enumerate(program.setup)
            ]

        # ------------------------------------------------ bandwidth counters
        # Dispatch and commit choices are monotone non-decreasing across ops,
        # so their per-cycle counters collapse to one (cycle, count) pair.
        disp_cycle = -1
        disp_count = 0
        commit_count = 0
        # Issue-side counters are not monotone (an independent op can issue
        # below an older long-latency op), so they live in cycle-tagged ring
        # buffers: a slot's counts are valid only when ring_tag[slot] equals
        # the probed cycle.  No per-cycle clearing is ever needed; the rings
        # grow when an op's issue-to-dispatch span approaches the ring size
        # (the exact condition under which two live cycles could alias).
        max_override = 0
        for info in body_infos:
            if info[14] is not None and info[14] > max_override:
                max_override = info[14]
        for info in setup_infos:
            if info[14] is not None and info[14] > max_override:
                max_override = info[14]
        per_op_latency_bound = (
            config.memory_latency
            + config.tlb_miss_penalty
            + max(config.multiply_latency, config.divide_latency, config.alu_latency, max_override)
            + 2
        )
        window_bound = config.rob_entries * per_op_latency_bound + 1024
        ring_size = 1 << (min(max(window_bound, 1024), 1 << 17) - 1).bit_length()
        ring_mask = ring_size - 1
        ring_tag = [-1] * ring_size
        ring_issue = [0] * ring_size
        ring_mem = [0] * ring_size
        ring_alu = [0] * ring_size
        ring_mul = [0] * ring_size

        # ------------------------------------------------- structural state
        rob_commits: deque[int] = deque()
        lq_commits: deque[int] = deque()
        sq_commits: deque[int] = deque()
        iq_issue_heap: list[int] = []
        rename_commit_heap: list[int] = []

        # Live-in architected state: the value sitting in each architected
        # register at the start of the window is ACE from cycle 0 until its
        # last read (base addresses, loop-invariant constants, etc.).
        architected = config.architected_registers
        num_regs = max(ARCH_REG_COUNT, architected)
        reg_present = [True] * architected + [False] * (num_regs - architected)
        reg_complete = [0] * num_regs
        reg_width = [1.0] * num_regs
        reg_ace = [True] * num_regs
        reg_last_read = [-1] * num_regs  # -1 == "never read by an ACE consumer"
        reg_ready = [0] * num_regs
        extra_regs: list[int] = []  # regs >= architected, in first-write order

        # --------------------------------------------------- batched sums
        # Each pair mirrors one ledger account's (occupied_entry_cycles,
        # ace_bit_cycles); the same additions happen in the same order, so
        # flushing once at the end (``ledger.credit``) is bit-identical to
        # per-op accounting.
        rob_bits = accumulators[StructureName.ROB].bits_per_entry
        iq_bits = accumulators[StructureName.IQ].bits_per_entry
        lqt_bits = accumulators[StructureName.LQ_TAG].bits_per_entry
        lqd_bits = accumulators[StructureName.LQ_DATA].bits_per_entry
        sqt_bits = accumulators[StructureName.SQ_TAG].bits_per_entry
        sqd_bits = accumulators[StructureName.SQ_DATA].bits_per_entry
        rf_bits = accumulators[StructureName.RF].bits_per_entry
        fu_bits = accumulators[StructureName.FU].bits_per_entry
        rob_occ = rob_ace = 0.0
        iq_occ = iq_ace = 0.0
        lqt_occ = lqt_ace = 0.0
        lqd_occ = lqd_ace = 0.0
        sqt_occ = sqt_ace = 0.0
        sqd_occ = sqd_ace = 0.0
        rf_occ = rf_ace = 0.0
        fu_occ = fu_ace = 0.0
        # Flag-gated post-commit store buffer (absent on the stock configs).
        sb_account = accumulators.get(StructureName.SB)
        track_sb = sb_account is not None
        sb_bits = sb_account.bits_per_entry if track_sb else 0
        sb_drain = float(config.store_buffer_drain_cycles)
        sb_occ = sb_ace = 0.0

        # ------------------------------------------------------ hot locals
        dispatch_width = config.dispatch_width
        issue_width = config.issue_width
        commit_width = config.commit_width
        memory_issue_width = config.memory_issue_width
        int_alus = config.int_alus
        int_multipliers = config.int_multipliers
        rob_entries = config.rob_entries
        iq_entries = config.iq_entries
        lq_entries = config.lq_entries
        sq_entries = config.sq_entries
        free_rename = config.free_rename_registers
        mispredict_penalty = config.branch_misprediction_penalty
        iterations_total = program.iterations
        hierarchy_access = hierarchy.access_parts
        predictor_update = predictor.update
        branch_random = branch_rng.raw().random
        frontend_random = frontend_rng.raw().random
        heappush = heapq.heappush
        heappop = heapq.heappop
        rob_append = rob_commits.append
        rob_popleft = rob_commits.popleft
        lq_append = lq_commits.append
        lq_popleft = lq_commits.popleft
        sq_append = sq_commits.append
        sq_popleft = sq_commits.popleft

        committed = 0
        committed_ace = 0
        branch_count = 0
        branch_mispredictions = 0
        l2_misses = 0

        min_dispatch_cycle = 1
        fetch_resume_cycle = 0
        last_commit_cycle = 0
        final_cycle = 1

        budget = max_instructions
        processed = 0
        done = False

        # Dynamic stream: the setup section once (only when it is not handled
        # functionally), then the body repeated per iteration, truncated at
        # the instruction budget — mirroring Program.dynamic_stream.
        def iteration_blocks():
            if setup_infos:
                yield -1, setup_infos
            for iteration in range(iterations_total):
                yield iteration, body_infos

        for iteration, infos in iteration_blocks():
            resolve_iteration = iteration if iteration > 0 else 0
            closing_taken = iteration < iterations_total - 1
            for info in infos:
                if processed >= budget:
                    done = True
                    break
                processed += 1

                (_, is_memory, is_nop, is_lq, is_store, is_branch, is_mul,
                 is_arith, writes_reg, dest, srcs, ace, data_frac, width_frac,
                 fixed_latency, pattern, taken_probability, loop_closing,
                 pc) = info

                # ------------------------------------------------ dispatch
                dispatch = min_dispatch_cycle
                if fetch_resume_cycle > dispatch:
                    dispatch = fetch_resume_cycle

                if has_frontend_misses and frontend_random() < frontend_miss_rate:
                    dispatch += frontend_miss_penalty

                if len(rob_commits) >= rob_entries and rob_commits[0] > dispatch:
                    dispatch = rob_commits[0]
                if is_lq:
                    if len(lq_commits) >= lq_entries and lq_commits[0] > dispatch:
                        dispatch = lq_commits[0]
                elif is_store:
                    if len(sq_commits) >= sq_entries and sq_commits[0] > dispatch:
                        dispatch = sq_commits[0]

                if writes_reg:
                    while rename_commit_heap and rename_commit_heap[0] <= dispatch:
                        heappop(rename_commit_heap)
                    if len(rename_commit_heap) >= free_rename:
                        if rename_commit_heap[0] > dispatch:
                            dispatch = rename_commit_heap[0]
                        while rename_commit_heap and rename_commit_heap[0] <= dispatch:
                            heappop(rename_commit_heap)

                if not is_nop:
                    while iq_issue_heap and iq_issue_heap[0] <= dispatch:
                        heappop(iq_issue_heap)
                    if len(iq_issue_heap) >= iq_entries:
                        if iq_issue_heap[0] > dispatch:
                            dispatch = iq_issue_heap[0]
                        while iq_issue_heap and iq_issue_heap[0] <= dispatch:
                            heappop(iq_issue_heap)

                if dispatch == disp_cycle:
                    if disp_count >= dispatch_width:
                        dispatch += 1
                        disp_cycle = dispatch
                        disp_count = 1
                    else:
                        disp_count += 1
                else:
                    disp_cycle = dispatch
                    disp_count = 1
                min_dispatch_cycle = dispatch

                # --------------------------------------------------- issue
                if is_nop:
                    issue = dispatch
                    complete = dispatch
                    latency = 0
                else:
                    issue = dispatch + 1
                    for src in srcs:
                        ready = reg_ready[src]
                        if ready > issue:
                            issue = ready

                    while True:
                        slot = issue & ring_mask
                        if ring_tag[slot] == issue:
                            if ring_issue[slot] >= issue_width:
                                issue += 1
                                continue
                            if is_memory:
                                if ring_mem[slot] >= memory_issue_width:
                                    issue += 1
                                    continue
                            elif is_mul:
                                if ring_mul[slot] >= int_multipliers:
                                    issue += 1
                                    continue
                            elif ring_alu[slot] >= int_alus:
                                issue += 1
                                continue
                        break

                    if issue - dispatch >= ring_size:
                        # Two live cycles could alias; regrow (rare).
                        ring_size, ring_mask, ring_tag, ring_issue, ring_mem, \
                            ring_alu, ring_mul = self._grow_rings(
                                issue - dispatch, dispatch, ring_size,
                                ring_tag, ring_issue, ring_mem, ring_alu, ring_mul,
                            )
                        slot = issue & ring_mask
                    if ring_tag[slot] == issue:
                        ring_issue[slot] += 1
                    else:
                        ring_tag[slot] = issue
                        ring_issue[slot] = 1
                        ring_mem[slot] = 0
                        ring_alu[slot] = 0
                        ring_mul[slot] = 0
                    if is_memory:
                        ring_mem[slot] += 1
                    elif is_mul:
                        ring_mul[slot] += 1
                    else:
                        ring_alu[slot] += 1

                    if fixed_latency is not None:
                        latency = fixed_latency
                    else:
                        # Load/prefetch: resolve the address and access the
                        # memory hierarchy at issue time.
                        address = pattern.resolve(resolve_iteration, memory_rng)
                        latency, dl1_hit, l2_hit, _ = hierarchy_access(address, False, issue, ace)
                        if not dl1_hit and not l2_hit:
                            l2_misses += 1
                    complete = issue + latency

                # -------------------------------------------------- commit
                commit = complete + 1
                if last_commit_cycle > commit:
                    commit = last_commit_cycle
                if commit == last_commit_cycle and commit_count >= commit_width:
                    commit += 1
                if commit == last_commit_cycle:
                    commit_count += 1
                else:
                    commit_count = 1
                last_commit_cycle = commit
                if commit > final_cycle:
                    final_cycle = commit

                # Stores update the data cache when they retire.
                if is_store and pattern is not None:
                    address = pattern.resolve(resolve_iteration, memory_rng)
                    hierarchy_access(address, True, commit, ace)

                # -------------------------------------------- branch logic
                if is_branch:
                    branch_count += 1
                    if loop_closing:
                        taken = closing_taken
                    else:
                        taken = branch_random() < taken_probability
                    if predictor_update(pc, taken):
                        branch_mispredictions += 1
                        resume = complete + mispredict_penalty
                        if resume > fetch_resume_cycle:
                            fetch_resume_cycle = resume

                # ---------------------------------------- structural state
                rob_append(commit)
                if len(rob_commits) > rob_entries:
                    rob_popleft()
                if is_lq:
                    lq_append(commit)
                    if len(lq_commits) > lq_entries:
                        lq_popleft()
                elif is_store:
                    sq_append(commit)
                    if len(sq_commits) > sq_entries:
                        sq_popleft()
                if not is_nop:
                    heappush(iq_issue_heap, issue)
                if writes_reg:
                    heappush(rename_commit_heap, commit)

                # ------------------------------------------------ ACE credit
                duration = float(commit - dispatch)
                rob_occ += duration
                if ace:
                    rob_ace += duration * rob_bits

                if not is_nop:
                    duration = float(issue - dispatch)
                    iq_occ += duration
                    if ace:
                        iq_ace += duration * iq_bits

                if is_lq:
                    lqt_occ += float(issue - dispatch)
                    duration = float(commit - issue)
                    lqt_occ += duration
                    if ace:
                        lqt_ace += duration * lqt_bits
                    lqd_occ += float(complete - dispatch)
                    duration = float(commit - complete)
                    lqd_occ += duration
                    if data_frac:
                        lqd_ace += duration * lqd_bits * data_frac
                elif is_store:
                    sqt_occ += float(issue - dispatch)
                    duration = float(commit - issue)
                    sqt_occ += duration
                    if ace:
                        sqt_ace += duration * sqt_bits
                    sqd_occ += float(issue - dispatch)
                    if data_frac:
                        sqd_ace += duration * sqd_bits * data_frac
                    sqd_occ += duration
                    if track_sb:
                        # The retired store occupies the store buffer for its
                        # drain window [commit, commit + drain); address+data
                        # must survive until the DL1 write completes.
                        sb_occ += sb_drain
                        if data_frac:
                            sb_ace += sb_drain * sb_bits * data_frac

                if is_arith:
                    duration = float(latency if latency > 1 else 1)
                    fu_occ += duration
                    if ace:
                        fu_ace += duration * fu_bits

                # Register-file lifetime: mark ACE source reads at issue, and
                # retire the overwritten destination value's ACE interval.
                if ace:
                    for src in srcs:
                        if reg_present[src] and issue > reg_last_read[src]:
                            reg_last_read[src] = issue
                if writes_reg:
                    if reg_present[dest]:
                        if reg_ace[dest]:
                            last_read = reg_last_read[dest]
                            if last_read > reg_complete[dest]:
                                duration = float(last_read - reg_complete[dest])
                                rf_occ += duration
                                rf_ace += duration * rf_bits * reg_width[dest]
                    else:
                        reg_present[dest] = True
                        extra_regs.append(dest)
                    reg_complete[dest] = complete
                    reg_width[dest] = width_frac
                    reg_ace[dest] = ace
                    reg_last_read[dest] = -1
                    reg_ready[dest] = complete

                committed += 1
                if ace:
                    committed_ace += 1
            if done:
                break

        # Finalise open register lifetimes (architected registers in index
        # order first, then late-allocated ones in first-write order — the
        # same order the per-register records were created in).
        for reg in range(architected):
            if reg_ace[reg]:
                last_read = reg_last_read[reg]
                if last_read > reg_complete[reg]:
                    duration = float(last_read - reg_complete[reg])
                    rf_occ += duration
                    rf_ace += duration * rf_bits * reg_width[reg]
        for reg in extra_regs:
            if reg_ace[reg]:
                last_read = reg_last_read[reg]
                if last_read > reg_complete[reg]:
                    duration = float(last_read - reg_complete[reg])
                    rf_occ += duration
                    rf_ace += duration * rf_bits * reg_width[reg]

        # Flush the batched sums into the ledger accounts.
        credit = ledger.credit
        credit(StructureName.ROB, rob_occ, rob_ace)
        credit(StructureName.IQ, iq_occ, iq_ace)
        credit(StructureName.LQ_TAG, lqt_occ, lqt_ace)
        credit(StructureName.LQ_DATA, lqd_occ, lqd_ace)
        credit(StructureName.SQ_TAG, sqt_occ, sqt_ace)
        credit(StructureName.SQ_DATA, sqd_occ, sqd_ace)
        credit(StructureName.RF, rf_occ, rf_ace)
        credit(StructureName.FU, fu_occ, fu_ace)
        if track_sb:
            credit(StructureName.SB, sb_occ, sb_ace)

        hierarchy.finalize(final_cycle)

        stats.committed_instructions = committed
        stats.committed_ace_instructions = committed_ace
        stats.branch_count = branch_count
        stats.branch_mispredictions = branch_mispredictions
        stats.l2_misses = l2_misses
        stats.total_cycles = final_cycle
        stats.dl1_miss_rate = hierarchy.dl1.stats.miss_rate
        stats.l2_miss_rate = hierarchy.l2.stats.miss_rate
        stats.dtlb_miss_rate = hierarchy.dtlb.stats.miss_rate

        # Fold the storage structures' lifetime totals into their accounts.
        accumulators = dict(ledger.collect())

        return SimulationResult(
            program_name=program.name,
            config=config,
            accumulators=accumulators,
            stats=stats,
            metadata=dict(program.metadata),
        )

    # -------------------------------------------------------------- helpers

    def _instruction_info(
        self, instruction: Instruction, index: int, in_setup: bool, program: Program
    ) -> tuple:
        """Precompute the per-dynamic-op facts of one static instruction.

        Field order is documented by ``_INFO_FIELDS``.  ``fixed_latency`` is
        ``None`` exactly when the latency is dynamic (a load/prefetch without
        an override, which must access the memory hierarchy at issue).
        """
        config = self.config
        opclass = instruction.opclass
        is_lq = opclass is InstructionClass.LOAD or opclass is InstructionClass.PREFETCH
        is_store = opclass is InstructionClass.STORE
        is_mul = opclass is InstructionClass.INT_MUL or opclass is InstructionClass.INT_DIV
        ace = instruction.ace
        width_frac = instruction.width.ace_fraction()

        fixed_latency: Optional[int]
        if instruction.latency_override is not None:
            fixed_latency = instruction.latency_override
        elif opclass is InstructionClass.INT_ALU or opclass is InstructionClass.BRANCH:
            fixed_latency = config.alu_latency
        elif opclass is InstructionClass.INT_MUL:
            fixed_latency = config.multiply_latency
        elif opclass is InstructionClass.INT_DIV:
            fixed_latency = config.divide_latency
        elif is_store:
            # Address generation only; the data-cache write happens at commit.
            fixed_latency = config.alu_latency
        elif is_lq:
            fixed_latency = None
        else:
            fixed_latency = 0

        return (
            index,
            opclass.is_memory,
            opclass is InstructionClass.NOP,
            is_lq,
            is_store,
            opclass is InstructionClass.BRANCH,
            is_mul,
            opclass is InstructionClass.INT_ALU or is_mul,
            instruction.dest is not None,
            instruction.dest,
            instruction.srcs,
            ace,
            width_frac if ace else 0.0,
            width_frac,
            fixed_latency,
            instruction.address_pattern,
            instruction.taken_probability,
            program.branch_behavior(index) is BranchBehavior.LOOP_CLOSING,
            4096 + index if in_setup else index,
        )

    @staticmethod
    def _grow_rings(
        span: int,
        frontier: int,
        ring_size: int,
        ring_tag: list[int],
        ring_issue: list[int],
        ring_mem: list[int],
        ring_alu: list[int],
        ring_mul: list[int],
    ) -> tuple[int, int, list[int], list[int], list[int], list[int], list[int]]:
        """Double the issue rings until ``span`` fits; re-place live slots.

        A slot is live exactly when its tagged cycle is beyond ``frontier``
        (the current dispatch cycle): earlier cycles can never be probed
        again because dispatch is monotone.
        """
        new_size = ring_size
        while new_size <= span:
            new_size <<= 1
        new_mask = new_size - 1
        new_tag = [-1] * new_size
        new_issue = [0] * new_size
        new_mem = [0] * new_size
        new_alu = [0] * new_size
        new_mul = [0] * new_size
        for slot in range(ring_size):
            tag = ring_tag[slot]
            if tag > frontier:
                new_slot = tag & new_mask
                new_tag[new_slot] = tag
                new_issue[new_slot] = ring_issue[slot]
                new_mem[new_slot] = ring_mem[slot]
                new_alu[new_slot] = ring_alu[slot]
                new_mul[new_slot] = ring_mul[slot]
        return new_size, new_mask, new_tag, new_issue, new_mem, new_alu, new_mul

    def _run_functional_setup(
        self, program: Program, hierarchy: MemoryHierarchy, rng: DeterministicRng
    ) -> None:
        """Warm the memory hierarchy with the program's declared footprint.

        Warm-up has two parts: the declared :class:`WarmupRegion` footprints
        (walked at line granularity) and the explicit setup instructions
        (replayed functionally, without core occupancy accounting).
        """
        for region in program.warmup_regions:
            hierarchy.warm_region(
                base=region.base,
                size_bytes=region.size_bytes,
                dirty=region.dirty,
                ace=region.ace,
                word_fraction=region.word_fraction,
                recurrent=region.recurrent,
            )
        setup_rng = rng.spawn("setup")
        for index, instruction in enumerate(program.setup):
            if instruction.address_pattern is None:
                continue
            address = instruction.address_pattern.resolve(index, setup_rng)
            hierarchy.access(
                address,
                is_write=instruction.is_store,
                cycle=0,
                ace=instruction.ace,
            )

    def _execution_latency(
        self,
        instruction: Instruction,
        op: DynamicOp,
        issue: int,
        hierarchy: MemoryHierarchy,
        rng: DeterministicRng,
    ) -> tuple[int, Optional[MemoryAccessOutcome]]:
        """Latency of an issued instruction; memory ops access the hierarchy.

        Kept as the reference (unbatched) formulation of the latency model
        used by the run loop's precomputed ``fixed_latency`` fast path; unit
        tests may exercise it directly.
        """
        config = self.config
        if instruction.latency_override is not None:
            return instruction.latency_override, None
        opclass = instruction.opclass
        if opclass is InstructionClass.INT_ALU or opclass is InstructionClass.BRANCH:
            return config.alu_latency, None
        if opclass is InstructionClass.INT_MUL:
            return config.multiply_latency, None
        if opclass is InstructionClass.INT_DIV:
            return config.divide_latency, None
        if opclass in (InstructionClass.LOAD, InstructionClass.PREFETCH):
            address = instruction.address_pattern.resolve(max(op.iteration, 0), rng)
            outcome = hierarchy.access(
                address, is_write=False, cycle=issue, ace=instruction.ace
            )
            return outcome.latency, outcome
        if opclass is InstructionClass.STORE:
            # Address generation only; the data-cache write happens at commit.
            return config.alu_latency, None
        return 0, None
