"""Cycle-level out-of-order core model with ACE/AVF accounting.

The model is a one-pass timing simulator: dynamic instructions are processed
in program order and their dispatch, issue, completion and commit cycles are
computed subject to the machine's structural constraints (ROB/IQ/LQ/SQ/rename
register capacity, dispatch/issue/commit bandwidth, memory-issue ports,
functional-unit counts, branch misprediction redirects and data-memory
latency).  Every dynamic instruction then contributes occupancy and ACE
intervals to the per-structure accumulators, which is exactly the information
ACE analysis needs:

* **ROB** entries are occupied from dispatch to commit and are ACE when the
  instruction is ACE.
* **IQ** entries are occupied (and ACE) from dispatch to issue.
* **LQ/SQ** entries are occupied from dispatch to commit; the tag array is
  ACE once the address is computed at issue, the LQ data array only once the
  data has returned from the memory hierarchy, and the SQ data array once the
  store's operands are ready (the paper's Section IV-A.1 distinction).
* **Rename registers** are ACE from the producer's completion until the last
  read by an ACE consumer.
* **FUs** are ACE while executing ACE arithmetic instructions.
* **DL1/DTLB/L2** ACE time comes from the lifetime analysis embedded in the
  memory hierarchy.

Branch mispredictions redirect fetch: the front-end is stalled until the
branch resolves plus the misprediction penalty, which drains the windows the
same way wrong-path flushes do (wrong-path entries are un-ACE and therefore
never contribute ACE time anyway).

Front-end miss behaviour of workloads (I-cache / I-TLB misses and fetch
inefficiencies) is modelled statistically: programs may carry
``metadata["frontend_miss_rate"]`` (per-instruction probability) and
``metadata["frontend_miss_penalty"]`` (cycles), which inject fetch bubbles.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.branch.predictors import HybridPredictor
from repro.isa.instructions import Instruction, InstructionClass
from repro.isa.program import BranchBehavior, DynamicOp, Program
from repro.memory.hierarchy import MemoryAccessOutcome, MemoryHierarchy
from repro.uarch.config import MachineConfig
from repro.uarch.structures import AceAccumulator, StructureName, core_structure_accumulators
from repro.utils.rng import DeterministicRng


@dataclass
class _RegisterRecord:
    """Lifetime record of one renamed register value."""

    complete_cycle: int
    width_fraction: float
    ace: bool
    last_ace_read: Optional[int] = None


@dataclass
class SimulationStats:
    """Aggregate performance-side statistics of a run."""

    total_cycles: int = 0
    committed_instructions: int = 0
    committed_ace_instructions: int = 0
    branch_count: int = 0
    branch_mispredictions: int = 0
    l2_misses: int = 0
    dl1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0
    dtlb_miss_rate: float = 0.0

    @property
    def ipc(self) -> float:
        if self.total_cycles <= 0:
            return 0.0
        return self.committed_instructions / self.total_cycles

    @property
    def branch_misprediction_rate(self) -> float:
        if self.branch_count == 0:
            return 0.0
        return self.branch_mispredictions / self.branch_count


@dataclass
class SimulationResult:
    """Result of one detailed simulation: ACE accumulators plus statistics."""

    program_name: str
    config: MachineConfig
    accumulators: Mapping[StructureName, AceAccumulator]
    stats: SimulationStats
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles

    def avf(self, structure: StructureName) -> float:
        """AVF of one structure over the run."""
        return self.accumulators[structure].avf(self.stats.total_cycles)

    def occupancy(self, structure: StructureName) -> float:
        """Average occupancy of one structure over the run."""
        return self.accumulators[structure].average_occupancy(self.stats.total_cycles)

    def avf_by_structure(self) -> dict[StructureName, float]:
        """AVF of every tracked structure."""
        return {name: self.avf(name) for name in self.accumulators}


class OutOfOrderCore:
    """Out-of-order core simulator for a given :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = int(seed)

    # ------------------------------------------------------------------ run

    def run(
        self,
        program: Program,
        max_instructions: int = 50_000,
        functional_setup: bool = True,
    ) -> SimulationResult:
        """Simulate ``program`` for up to ``max_instructions`` body instructions.

        ``functional_setup`` executes the program's setup section as a warm-up
        of the memory hierarchy (cache/TLB contents and lifetime state) without
        occupying core structures, mirroring the common practice of functional
        cache warm-up before a detailed simulation window.
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")

        config = self.config
        rng = DeterministicRng(self.seed).spawn("sim", program.name)
        hierarchy = MemoryHierarchy(
            dl1_config=config.dl1,
            l2_config=config.l2,
            dtlb_config=config.dtlb,
            memory_latency=config.memory_latency,
            tlb_miss_penalty=config.tlb_miss_penalty,
        )
        predictor = HybridPredictor(
            global_entries=config.branch_predictor_global_entries,
            local_history_entries=config.branch_predictor_local_entries,
            choice_entries=config.branch_predictor_choice_entries,
        )
        accumulators = core_structure_accumulators(config)
        stats = SimulationStats()

        frontend_miss_rate = float(program.metadata.get("frontend_miss_rate", 0.0))
        frontend_miss_penalty = int(program.metadata.get("frontend_miss_penalty", 10))

        # Independent, reproducible randomness streams for the different
        # stochastic behaviours of the run (addresses, branches, front-end).
        memory_rng = rng.spawn("memory")
        branch_rng = rng.spawn("branch")
        frontend_rng = rng.spawn("frontend")

        if functional_setup:
            self._run_functional_setup(program, hierarchy, rng)

        # Per-cycle bandwidth counters.
        dispatch_slots: dict[int, int] = defaultdict(int)
        issue_slots: dict[int, int] = defaultdict(int)
        mem_slots: dict[int, int] = defaultdict(int)
        alu_slots: dict[int, int] = defaultdict(int)
        mul_slots: dict[int, int] = defaultdict(int)
        commit_slots: dict[int, int] = defaultdict(int)

        # Structural occupancy state.
        rob_commits: deque[int] = deque()
        lq_commits: deque[int] = deque()
        sq_commits: deque[int] = deque()
        iq_issue_heap: list[int] = []
        rename_commit_heap: list[int] = []
        # Live-in architected state: the value sitting in each architected
        # register at the start of the window is ACE from cycle 0 until its
        # last read (base addresses, loop-invariant constants, etc.).
        register_state: dict[int, _RegisterRecord] = {
            register: _RegisterRecord(complete_cycle=0, width_fraction=1.0, ace=True)
            for register in range(config.architected_registers)
        }
        register_ready: dict[int, int] = defaultdict(int)

        min_dispatch_cycle = 1
        fetch_resume_cycle = 0
        last_commit_cycle = 0
        final_cycle = 1

        body_budget = max_instructions
        processed = 0

        for op in program.dynamic_stream():
            if op.in_setup and functional_setup:
                continue
            if processed >= body_budget:
                break
            processed += 1

            instruction = op.instruction
            is_memory = instruction.opclass.is_memory
            is_nop = instruction.opclass is InstructionClass.NOP

            # ---------------------------------------------------- dispatch
            dispatch = max(min_dispatch_cycle, fetch_resume_cycle)

            if frontend_miss_rate > 0.0 and frontend_rng.coin(frontend_miss_rate):
                dispatch += frontend_miss_penalty

            if len(rob_commits) >= config.rob_entries:
                dispatch = max(dispatch, rob_commits[0])
            if instruction.is_load or instruction.opclass is InstructionClass.PREFETCH:
                if len(lq_commits) >= config.lq_entries:
                    dispatch = max(dispatch, lq_commits[0])
            elif instruction.is_store:
                if len(sq_commits) >= config.sq_entries:
                    dispatch = max(dispatch, sq_commits[0])

            if instruction.writes_register:
                while rename_commit_heap and rename_commit_heap[0] <= dispatch:
                    heapq.heappop(rename_commit_heap)
                if len(rename_commit_heap) >= config.free_rename_registers:
                    dispatch = max(dispatch, rename_commit_heap[0])
                    while rename_commit_heap and rename_commit_heap[0] <= dispatch:
                        heapq.heappop(rename_commit_heap)

            if not is_nop:
                while iq_issue_heap and iq_issue_heap[0] <= dispatch:
                    heapq.heappop(iq_issue_heap)
                if len(iq_issue_heap) >= config.iq_entries:
                    dispatch = max(dispatch, iq_issue_heap[0])
                    while iq_issue_heap and iq_issue_heap[0] <= dispatch:
                        heapq.heappop(iq_issue_heap)

            while dispatch_slots[dispatch] >= config.dispatch_width:
                dispatch += 1
            dispatch_slots[dispatch] += 1
            min_dispatch_cycle = dispatch

            # ------------------------------------------------------- issue
            ready = dispatch
            for src in instruction.srcs:
                ready = max(ready, register_ready[src])

            if is_nop:
                issue = dispatch
                complete = dispatch
                latency = 0
            else:
                issue = max(dispatch + 1, ready)
                is_mul_class = instruction.opclass in (
                    InstructionClass.INT_MUL,
                    InstructionClass.INT_DIV,
                )
                while True:
                    if issue_slots[issue] >= config.issue_width:
                        issue += 1
                        continue
                    if is_memory and mem_slots[issue] >= config.memory_issue_width:
                        issue += 1
                        continue
                    if is_mul_class and mul_slots[issue] >= config.int_multipliers:
                        issue += 1
                        continue
                    if (
                        not is_memory
                        and not is_mul_class
                        and alu_slots[issue] >= config.int_alus
                    ):
                        issue += 1
                        continue
                    break
                issue_slots[issue] += 1
                if is_memory:
                    mem_slots[issue] += 1
                elif is_mul_class:
                    mul_slots[issue] += 1
                else:
                    alu_slots[issue] += 1

                latency, outcome = self._execution_latency(
                    instruction, op, issue, hierarchy, memory_rng
                )
                if outcome is not None and outcome.is_l2_miss:
                    stats.l2_misses += 1
                complete = issue + latency

            # ------------------------------------------------------ commit
            commit = max(complete + 1, last_commit_cycle)
            while commit_slots[commit] >= config.commit_width:
                commit += 1
            commit_slots[commit] += 1
            last_commit_cycle = commit
            final_cycle = max(final_cycle, commit)

            # Stores update the data cache when they retire.
            if instruction.is_store and instruction.address_pattern is not None:
                address = instruction.address_pattern.resolve(max(op.iteration, 0), memory_rng)
                hierarchy.access(address, is_write=True, cycle=commit, ace=instruction.ace)

            # ------------------------------------------------ branch logic
            if instruction.is_branch:
                stats.branch_count += 1
                taken = self._branch_outcome(program, op, branch_rng)
                pc = op.index_in_body if not op.in_setup else 4096 + op.index_in_body
                mispredicted = predictor.update(pc, taken)
                if mispredicted:
                    stats.branch_mispredictions += 1
                    fetch_resume_cycle = max(
                        fetch_resume_cycle, complete + config.branch_misprediction_penalty
                    )

            # -------------------------------------------- structural state
            rob_commits.append(commit)
            if len(rob_commits) > config.rob_entries:
                rob_commits.popleft()
            if instruction.is_load or instruction.opclass is InstructionClass.PREFETCH:
                lq_commits.append(commit)
                if len(lq_commits) > config.lq_entries:
                    lq_commits.popleft()
            elif instruction.is_store:
                sq_commits.append(commit)
                if len(sq_commits) > config.sq_entries:
                    sq_commits.popleft()
            if not is_nop:
                heapq.heappush(iq_issue_heap, issue)
            if instruction.writes_register:
                heapq.heappush(rename_commit_heap, commit)

            # -------------------------------------------------- ACE credit
            self._account(
                accumulators,
                instruction,
                dispatch=dispatch,
                issue=issue,
                complete=complete,
                commit=commit,
                latency=latency,
            )
            self._account_register_reads(register_state, instruction, issue)
            if instruction.writes_register and instruction.dest is not None:
                self._retire_register_record(
                    accumulators[StructureName.RF], register_state.get(instruction.dest)
                )
                register_state[instruction.dest] = _RegisterRecord(
                    complete_cycle=complete,
                    width_fraction=instruction.width.ace_fraction(),
                    ace=instruction.ace,
                )
                register_ready[instruction.dest] = complete

            stats.committed_instructions += 1
            if instruction.ace:
                stats.committed_ace_instructions += 1

        # Finalise open state.
        for record in register_state.values():
            self._retire_register_record(accumulators[StructureName.RF], record)
        hierarchy.finalize(final_cycle)

        stats.total_cycles = final_cycle
        stats.dl1_miss_rate = hierarchy.dl1.stats.miss_rate
        stats.l2_miss_rate = hierarchy.l2.stats.miss_rate
        stats.dtlb_miss_rate = hierarchy.dtlb.stats.miss_rate

        accumulators = dict(accumulators)
        accumulators[StructureName.DL1] = self._cache_accumulator(
            StructureName.DL1, hierarchy.dl1.config.num_lines,
            hierarchy.dl1.config.line_bytes * 8, hierarchy.dl1.lifetime.ace_bit_cycles(),
        )
        accumulators[StructureName.L2] = self._cache_accumulator(
            StructureName.L2, hierarchy.l2.config.num_lines,
            hierarchy.l2.config.line_bytes * 8, hierarchy.l2.lifetime.ace_bit_cycles(),
        )
        accumulators[StructureName.DTLB] = self._cache_accumulator(
            StructureName.DTLB, hierarchy.dtlb.config.entries,
            hierarchy.dtlb.config.entry_bits, hierarchy.dtlb.ace_bit_cycles(),
        )

        return SimulationResult(
            program_name=program.name,
            config=config,
            accumulators=accumulators,
            stats=stats,
            metadata=dict(program.metadata),
        )

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _cache_accumulator(
        name: StructureName, entries: int, bits_per_entry: int, ace_bit_cycles: float
    ) -> AceAccumulator:
        accumulator = AceAccumulator(name=name, entries=entries, bits_per_entry=bits_per_entry)
        accumulator.add_bit_cycles(ace_bit_cycles)
        return accumulator

    def _run_functional_setup(
        self, program: Program, hierarchy: MemoryHierarchy, rng: DeterministicRng
    ) -> None:
        """Warm the memory hierarchy with the program's declared footprint.

        Warm-up has two parts: the declared :class:`WarmupRegion` footprints
        (walked at line granularity) and the explicit setup instructions
        (replayed functionally, without core occupancy accounting).
        """
        for region in program.warmup_regions:
            hierarchy.warm_region(
                base=region.base,
                size_bytes=region.size_bytes,
                dirty=region.dirty,
                ace=region.ace,
                word_fraction=region.word_fraction,
                recurrent=region.recurrent,
            )
        setup_rng = rng.spawn("setup")
        for index, instruction in enumerate(program.setup):
            if instruction.address_pattern is None:
                continue
            address = instruction.address_pattern.resolve(index, setup_rng)
            hierarchy.access(
                address,
                is_write=instruction.is_store,
                cycle=0,
                ace=instruction.ace,
            )

    def _execution_latency(
        self,
        instruction: Instruction,
        op: DynamicOp,
        issue: int,
        hierarchy: MemoryHierarchy,
        rng: DeterministicRng,
    ) -> tuple[int, Optional[MemoryAccessOutcome]]:
        """Latency of an issued instruction; memory ops access the hierarchy."""
        config = self.config
        if instruction.latency_override is not None:
            return instruction.latency_override, None
        opclass = instruction.opclass
        if opclass is InstructionClass.INT_ALU or opclass is InstructionClass.BRANCH:
            return config.alu_latency, None
        if opclass is InstructionClass.INT_MUL:
            return config.multiply_latency, None
        if opclass is InstructionClass.INT_DIV:
            return config.divide_latency, None
        if opclass in (InstructionClass.LOAD, InstructionClass.PREFETCH):
            address = instruction.address_pattern.resolve(max(op.iteration, 0), rng)
            outcome = hierarchy.access(
                address, is_write=False, cycle=issue, ace=instruction.ace
            )
            return outcome.latency, outcome
        if opclass is InstructionClass.STORE:
            # Address generation only; the data-cache write happens at commit.
            return config.alu_latency, None
        return 0, None

    @staticmethod
    def _branch_outcome(program: Program, op: DynamicOp, rng: DeterministicRng) -> bool:
        """Dynamic outcome of a branch instance."""
        behavior = program.branch_behavior(op.index_in_body)
        if behavior is BranchBehavior.LOOP_CLOSING:
            return op.iteration < program.iterations - 1
        return rng.coin(op.instruction.taken_probability)

    def _account(
        self,
        accumulators: Mapping[StructureName, AceAccumulator],
        instruction: Instruction,
        dispatch: int,
        issue: int,
        complete: int,
        commit: int,
        latency: int,
    ) -> None:
        """Record occupancy and ACE intervals for one dynamic instruction."""
        ace = 1.0 if instruction.ace else 0.0
        width_fraction = instruction.data_ace_fraction()

        accumulators[StructureName.ROB].add_interval(dispatch, commit, ace)

        if instruction.opclass is not InstructionClass.NOP:
            accumulators[StructureName.IQ].add_interval(dispatch, issue, ace)

        if instruction.is_load or instruction.opclass is InstructionClass.PREFETCH:
            accumulators[StructureName.LQ_TAG].add_interval(dispatch, issue, 0.0)
            accumulators[StructureName.LQ_TAG].add_interval(issue, commit, ace)
            accumulators[StructureName.LQ_DATA].add_interval(dispatch, complete, 0.0)
            accumulators[StructureName.LQ_DATA].add_interval(complete, commit, width_fraction)
        elif instruction.is_store:
            accumulators[StructureName.SQ_TAG].add_interval(dispatch, issue, 0.0)
            accumulators[StructureName.SQ_TAG].add_interval(issue, commit, ace)
            accumulators[StructureName.SQ_DATA].add_interval(dispatch, issue, 0.0)
            accumulators[StructureName.SQ_DATA].add_interval(issue, commit, width_fraction)

        if instruction.is_arithmetic:
            accumulators[StructureName.FU].add_interval(issue, issue + max(1, latency), ace)

    @staticmethod
    def _account_register_reads(
        register_state: Mapping[int, _RegisterRecord], instruction: Instruction, issue: int
    ) -> None:
        """Mark source registers as read (for RF ACE lifetime) at issue time."""
        if not instruction.ace:
            return
        for src in instruction.srcs:
            record = register_state.get(src)
            if record is None:
                continue
            if record.last_ace_read is None or issue > record.last_ace_read:
                record.last_ace_read = issue

    @staticmethod
    def _retire_register_record(
        rf_accumulator: AceAccumulator, record: Optional[_RegisterRecord]
    ) -> None:
        """Credit the ACE lifetime of a register value being overwritten."""
        if record is None or not record.ace or record.last_ace_read is None:
            return
        rf_accumulator.add_interval(
            record.complete_cycle, record.last_ace_read, record.width_fraction
        )
