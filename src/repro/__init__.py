"""AVF Stressmark reproduction library.

Reproduction of "AVF Stressmark: Towards an Automated Methodology for Bounding
the Worst-Case Vulnerability to Soft Errors" (Nair, John, Eeckhout — MICRO
2010): an AVF-capable out-of-order processor model, ACE/lifetime analysis, a
knob-driven stressmark code generator, and a genetic algorithm that searches
the knob space to approach the worst-case observable SER.

Public API highlights
---------------------
``repro.uarch.baseline_config`` / ``config_a``
    The paper's machine configurations (Tables I and II).
``repro.uarch.OutOfOrderCore``
    Cycle-level simulator with ACE accounting.
``repro.avf.build_report``
    Per-structure AVF and grouped SER (units/bit) reports.
``repro.vuln``
    The pluggable vulnerability model: the ``STRUCTURES`` descriptor
    registry and the unified ``VulnerabilityLedger`` (ARCHITECTURE.md).
``repro.stressmark.StressmarkGenerator``
    GA-driven stressmark generation (the paper's primary contribution).
``repro.workloads``
    Synthetic SPEC CPU2006 / MiBench workload proxies used as the coverage
    baseline.
``repro.experiments``
    One driver per paper table and figure.
``repro.api``
    The declarative run API: component registries, JSON-serializable
    ``RunSpec`` requests / ``RunResult`` responses, and the ``Session``
    facade every front-end routes simulations through.
"""

from repro.avf import StructureGroup, build_report
from repro.uarch import (
    MachineConfig,
    OutOfOrderCore,
    baseline_config,
    config_a,
    edr_fault_rates,
    rhc_fault_rates,
    unit_fault_rates,
)

__version__ = "1.2.0"


def package_version() -> str:
    """The installed package version, falling back to the source tree's.

    Prefers importlib metadata (what ``pip install`` recorded) so a stale
    install is visible as a skew against a newer checkout; the daemon's
    ``ping`` response and ``repro --version`` both report this value.
    """
    try:
        from importlib.metadata import version

        return version("repro-avf-stressmark")
    except Exception:
        # Uninstalled source-tree runs (PYTHONPATH=src) have no metadata.
        return __version__

from repro.api import (  # noqa: E402  (api imports repro submodules, keep last)
    BACKENDS,
    CONFIGS,
    FAULT_RATES,
    FITNESS_OBJECTIVES,
    SCALES,
    WORKLOAD_SUITES,
    Registry,
    RegistryError,
    RunResult,
    RunSpec,
    Session,
    SpecError,
    registries,
)
from repro.store import (  # noqa: E402  (store imports the api, keep last)
    ResultStore,
    StoreError,
    merge_stores,
    open_store,
)
from repro.vuln import (  # noqa: E402
    STRUCTURES,
    StructureName,
    VulnerabilityLedger,
    VulnerableStructure,
    register_structure,
)
from repro.serve import (  # noqa: E402  (serve imports the api, keep last)
    RemoteError,
    RemoteRunError,
    ReproServer,
    ServeClient,
)

__all__ = [
    "StructureGroup",
    "build_report",
    "STRUCTURES",
    "StructureName",
    "VulnerabilityLedger",
    "VulnerableStructure",
    "register_structure",
    "MachineConfig",
    "OutOfOrderCore",
    "baseline_config",
    "config_a",
    "unit_fault_rates",
    "rhc_fault_rates",
    "edr_fault_rates",
    "Session",
    "RunSpec",
    "RunResult",
    "SpecError",
    "Registry",
    "RegistryError",
    "registries",
    "CONFIGS",
    "FAULT_RATES",
    "WORKLOAD_SUITES",
    "FITNESS_OBJECTIVES",
    "SCALES",
    "BACKENDS",
    "ResultStore",
    "StoreError",
    "merge_stores",
    "open_store",
    "ReproServer",
    "ServeClient",
    "RemoteError",
    "RemoteRunError",
    "package_version",
    "__version__",
]
