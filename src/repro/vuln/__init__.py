"""Pluggable vulnerability-model subsystem.

``repro.vuln`` unifies ACE/lifetime accounting behind a structure registry:

* :mod:`repro.vuln.structures` — :class:`VulnerableStructure` descriptors,
  the open :class:`StructureName` identity and the :data:`STRUCTURES`
  registry (register a structure and every report, SER group, fitness
  objective and CLI listing picks it up).
* :mod:`repro.vuln.ledger` — the :class:`VulnerabilityLedger`: one per-run
  accounting object fed by occupancy intervals (core structures) and
  fill/read/write/evict/flush lifetime events (storage structures).

See ARCHITECTURE.md for the event flow and the <20-line recipe for adding a
tracked structure.
"""

from repro.vuln.ledger import (
    AceAccumulator,
    AceEvent,
    LifetimeTracker,
    ResidencyTracker,
    VulnerabilityLedger,
)
from repro.vuln.structures import (
    STRUCTURES,
    StructureName,
    VulnerableStructure,
    enabled_structures,
    register_structure,
    structure_descriptor,
    structures_in_group,
)

__all__ = [
    "AceAccumulator",
    "AceEvent",
    "LifetimeTracker",
    "ResidencyTracker",
    "VulnerabilityLedger",
    "STRUCTURES",
    "StructureName",
    "VulnerableStructure",
    "enabled_structures",
    "register_structure",
    "structure_descriptor",
    "structures_in_group",
]
