"""The unified vulnerability ledger: one accounting surface for every structure.

Historically the repository kept two disjoint ACE bookkeeping paths — ad-hoc
``AceAccumulator`` bookkeeping inside the pipeline hot loop for core
structures, and a separate per-cache ``LifetimeTracker`` word-state machine
for storage structures.  The :class:`VulnerabilityLedger` unifies them: one
per-run object holding an account per *registered* structure (see
:mod:`repro.vuln.structures`), fed through two event surfaces:

* **interval events** for core structures — ``add_interval(name, start, end,
  ace_fraction)`` per occupancy interval, or ``credit(name, ...)`` for sums
  the simulator batches locally (the hot loop flushes once per run; the
  floating-point addition order is unchanged, so results stay bit-identical
  to per-op accounting);
* **lifetime events** for storage structures — ``fill`` / ``read`` /
  ``write`` / ``evict`` / ``flush`` keyed by ``(line, word)``, implementing
  the Biswas-style interval classification (Fill/Read/Write=>Read and ACE
  Write=>Evict are ACE; everything ending in a write or a clean eviction is
  not).

Lifetime state lives in per-structure :class:`LifetimeTracker` /
:class:`ResidencyTracker` objects that components obtain once
(:meth:`VulnerabilityLedger.word_tracker` /
:meth:`VulnerabilityLedger.residency_tracker`) and drive with bound methods,
keeping the per-event cost identical to the old embedded trackers.
:meth:`VulnerabilityLedger.collect` folds the trackers' totals into the
accounts at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

try:  # numpy only accelerates the bulk interval path; the ledger runs without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the vector-less test matrix
    _np = None

from repro.registry import RegistryError, suggest
from repro.vuln.structures import (
    STRUCTURES,
    StructureName,
    VulnerableStructure,
    enabled_structures,
)


class AceEvent(Enum):
    """Event types that bound ACE lifetime intervals."""

    FILL = "fill"
    READ = "read"
    WRITE = "write"
    EVICT = "evict"


# ------------------------------------------------------------------ accounts


@dataclass
class AceAccumulator:
    """Occupancy and ACE bit-cycles of one structure (a ledger account).

    Attributes
    ----------
    name:
        Which structure this account belongs to.
    entries:
        Number of entries in the structure.
    bits_per_entry:
        Storage bits per entry.
    """

    name: StructureName
    entries: int
    bits_per_entry: int
    ace_bit_cycles: float = 0.0
    occupied_entry_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.bits_per_entry <= 0:
            raise ValueError("entries and bits_per_entry must be positive")

    @property
    def total_bits(self) -> int:
        """Total storage bits of the structure."""
        return self.entries * self.bits_per_entry

    def add_interval(self, start: int, end: int, ace_fraction: float = 1.0) -> None:
        """Record that one entry was occupied during [start, end).

        ``ace_fraction`` is the fraction of the entry's bits that hold ACE
        state during the interval (e.g. 0.5 for a 32-bit operand in a 64-bit
        data field, or 0.0 for an un-ACE instruction).

        Degenerate inputs are rejected rather than silently accumulated:
        ``end < start`` and ``ace_fraction`` outside [0, 1] raise
        ``ValueError`` (an empty ``end == start`` interval is a no-op).
        """
        if not 0.0 <= ace_fraction <= 1.0:
            raise ValueError("ace_fraction must be within [0, 1]")
        if end < start:
            raise ValueError(f"interval end {end} precedes start {start}")
        if end == start:
            return
        duration = float(end - start)
        self.occupied_entry_cycles += duration
        self.ace_bit_cycles += duration * self.bits_per_entry * ace_fraction

    def add_intervals(self, starts, ends, ace_fractions=None) -> None:
        """Bulk :meth:`add_interval` over parallel columns of intervals.

        Semantically *exactly* the per-element loop ``for i: add_interval(
        starts[i], ends[i], ace_fractions[i])`` — same validation errors at
        the same element, same accumulator values to the last bit.  A numpy
        fast path replaces the loop only when the reduction is provably
        bit-identical: every duration and fraction contribution is an exact
        integer-valued float (fractions all 0 or 1), the accumulators hold
        integer values, and no partial sum can leave the 2**53 window where
        float addition is associative.  ``ace_fractions=None`` means 1.0 for
        every interval.  Accepts any indexable columns (lists, numpy arrays).
        """
        count = len(starts)
        if len(ends) != count or (ace_fractions is not None and len(ace_fractions) != count):
            raise ValueError("interval columns must have equal lengths")
        if _np is not None and count >= 8:
            starts_arr = _np.asarray(starts, dtype=_np.int64)
            ends_arr = _np.asarray(ends, dtype=_np.int64)
            durations = ends_arr - starts_arr
            if int(durations.min()) >= 0:
                if ace_fractions is None:
                    fractions = None
                    exact = True
                    ace_total = int(durations.sum()) * self.bits_per_entry
                else:
                    fractions = _np.asarray(ace_fractions, dtype=_np.float64)
                    exact = bool(((fractions == 0.0) | (fractions == 1.0)).all())
                    if exact:
                        ace_total = int(durations[fractions == 1.0].sum()) * self.bits_per_entry
                if exact:
                    occupied_total = int(durations.sum())
                    if (
                        self.ace_bit_cycles.is_integer()
                        and self.occupied_entry_cycles.is_integer()
                        and self.ace_bit_cycles + ace_total < 2**53
                        and self.occupied_entry_cycles + occupied_total < 2**53
                    ):
                        self.ace_bit_cycles += float(ace_total)
                        self.occupied_entry_cycles += float(occupied_total)
                        return
        add = self.add_interval
        if ace_fractions is None:
            for index in range(count):
                add(starts[index], ends[index])
        else:
            for index in range(count):
                add(starts[index], ends[index], ace_fractions[index])

    def add_bit_cycles(self, ace_bit_cycles: float, occupied_entry_cycles: float = 0.0) -> None:
        """Directly add pre-computed ACE bit-cycles (used for caches/TLB)."""
        if ace_bit_cycles < 0.0 or occupied_entry_cycles < 0.0:
            raise ValueError("bit-cycles must be non-negative")
        self.ace_bit_cycles += ace_bit_cycles
        self.occupied_entry_cycles += occupied_entry_cycles

    def avf(self, total_cycles: int) -> float:
        """Architectural Vulnerability Factor over ``total_cycles``."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.ace_bit_cycles / (self.total_bits * float(total_cycles)))

    def average_occupancy(self, total_cycles: int) -> float:
        """Mean fraction of entries occupied over the run."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.occupied_entry_cycles / (self.entries * float(total_cycles)))


# ------------------------------------------------------- lifetime state machine


class LifetimeTracker:
    """Word-granular lifetime ACE state machine (Biswas et al.).

    For writeback caches, a piece of cached data is ACE during the intervals

        Fill  => Read     (the read would consume corrupted data)
        Read  => Read
        Write => Read
        Write => Evict    (the dirty data must be written back intact)

    and un-ACE during

        Fill/Read => Evict (clean, never read again)
        *         => Write (the data is overwritten before being used)
        idle / invalid

    Events are recorded per *word* (default 8 bytes) so strided access
    patterns that do not touch every word of a line are credited only for
    the words that actually hold live data (Section IV-A.5 of the paper).
    Interval ACE-ness is additionally conditioned on whether the producing/
    consuming instruction is itself ACE: intervals closed by an un-ACE read
    (e.g. a software prefetch or a dynamically dead load) are not ACE, and a
    dirty word whose last write was un-ACE is not ACE at eviction.

    This is the :class:`VulnerabilityLedger`'s storage-structure state
    machine; it is also usable standalone (``repro.memory.lifetime``
    re-exports it for backward compatibility).
    """

    #: Word state is an immutable ``(last_event, last_cycle, last_write_ace)``
    #: tuple.  Immutability lets warm-up share one state object across a whole
    #: range of words (``dict.fromkeys``), and event updates replace the tuple
    #: — all interval credit is *integer* word-cycle arithmetic, so bulk
    #: formulations below are exactly equal to per-event accounting.

    def __init__(self, word_bits: int = 64) -> None:
        self.word_bits = word_bits
        self._live: dict[tuple[int, int], tuple[AceEvent, int, bool]] = {}
        self.ace_word_cycles = 0
        self.total_events = 0

    def record_fill(self, line: int, word: int, cycle: int, ace: bool = True) -> None:
        """A word became resident (brought in from the next level)."""
        self.total_events += 1
        key = (line, word)
        state = self._live.get(key)
        if state is not None:
            # A fill over a still-live word means the previous occupant left
            # without an explicit eviction event (e.g. a replacement the owner
            # did not report).  Close its interval as an eviction so a dirty
            # ACE write keeps its Write=>Evict credit instead of being
            # silently dropped with the overwritten state.
            if state[0] is AceEvent.WRITE and state[2]:
                duration = cycle - state[1]
                if duration > 0:
                    self.ace_word_cycles += duration
        self._live[key] = (AceEvent.FILL, cycle, False)

    def record_read(self, line: int, word: int, cycle: int, ace: bool) -> None:
        """A resident word was read by an instruction (ACE or not).

        Fill=>Read, Read=>Read and Write=>Read intervals are all ACE provided
        the consumer is an ACE instruction.
        """
        self.total_events += 1
        key = (line, word)
        state = self._live.get(key)
        if state is None:
            # A read to a word we never saw filled (e.g. structure warm-up
            # before tracking started): start tracking from this read.
            self._live[key] = (AceEvent.READ, cycle, False)
            return
        if ace:
            duration = cycle - state[1]
            if duration > 0:
                self.ace_word_cycles += duration
        self._live[key] = (AceEvent.READ, cycle, state[2])

    def record_write(self, line: int, word: int, cycle: int, ace: bool) -> None:
        """A resident word was overwritten by a store.

        Whatever was there before the write is dead: the interval leading up
        to a write is never ACE, so the interval simply restarts.
        """
        self.total_events += 1
        self._live[(line, word)] = (AceEvent.WRITE, cycle, ace)

    def warm_words(self, line: int, words: range, cycle: int, dirty: bool, ace: bool) -> None:
        """Bulk-install words during functional warm-up.

        Equivalent to a fill (plus a write when ``dirty``) of every word in
        ``words`` at ``cycle``, but without per-event bookkeeping overhead —
        warm-up touches hundreds of thousands of words, so this path matters
        for end-to-end evaluation time: one shared state tuple is installed
        for the whole range in a single C-level ``dict.update``.
        """
        state = (AceEvent.WRITE if dirty else AceEvent.FILL, cycle, dirty and ace)
        self._live.update(dict.fromkeys([(line, word) for word in words], state))
        self.total_events += len(words)

    def record_evict(self, line: int, word: int, cycle: int) -> None:
        """A resident word left the structure (eviction or invalidation).

        Only dirty data written by an ACE store must survive until writeback
        (Write=>Evict); everything else ends un-ACE.
        """
        self.total_events += 1
        state = self._live.pop((line, word), None)
        if state is None:
            return
        if state[0] is AceEvent.WRITE and state[2]:
            duration = cycle - state[1]
            if duration > 0:
                self.ace_word_cycles += duration

    def evict_words(self, line: int, words, cycle: int) -> None:
        """Evict a batch of words of one line (a cache line replacement).

        Exactly ``record_evict`` per word, without per-word method dispatch;
        interval credit is integer arithmetic, so the bulk sum is identical.
        """
        live = self._live
        pop = live.pop
        credited = 0
        write = AceEvent.WRITE
        count = 0
        for word in words:
            count += 1
            state = pop((line, word), None)
            if state is not None and state[0] is write and state[2]:
                duration = cycle - state[1]
                if duration > 0:
                    credited += duration
        self.total_events += count
        self.ace_word_cycles += credited

    def finalize(self, cycle: int) -> None:
        """Close all open intervals at the end of simulation.

        End-of-simulation is treated like an eviction: dirty ACE data is
        still needed (ACE), anything else is un-ACE.  This matches the
        conservative end-of-window treatment used in ACE analysis tools.
        The bulk pass credits exactly what per-word ``record_evict`` calls
        would (integer word-cycles), without the per-event overhead.
        """
        live = self._live
        self.total_events += len(live)
        credited = 0
        write = AceEvent.WRITE
        for state in live.values():
            if state[0] is write and state[2]:
                duration = cycle - state[1]
                if duration > 0:
                    credited += duration
        self.ace_word_cycles += credited
        live.clear()

    # ``flush`` is the ledger-event name for end-of-run closure.
    flush = finalize

    def clone(self) -> "LifetimeTracker":
        """Independent copy of this tracker's full lifetime state.

        Word states are immutable tuples, so a shallow dict copy suffices
        (and preserves insertion order, which downstream eviction-victim
        selection depends on).  Used by the batch evaluation plane to share
        one functional warm-up across a whole population.
        """
        dup = LifetimeTracker(word_bits=self.word_bits)
        dup._live = dict(self._live)
        dup.ace_word_cycles = self.ace_word_cycles
        dup.total_events = self.total_events
        return dup

    def live_words(self) -> int:
        """Number of words with an open lifetime interval (used by tests)."""
        return len(self._live)

    def ace_bit_cycles(self) -> float:
        """Total ACE bit-cycles accumulated so far."""
        return float(self.ace_word_cycles) * self.word_bits


class ResidencyTracker:
    """Entry-residency ACE accumulator for TLB-style structures.

    TLB contents are ACE between their first and last ACE use while resident
    ("read to evict is un-ACE"); the owning TLB model reports one credit per
    retiring entry.
    """

    def __init__(self, entry_bits: int = 64) -> None:
        self.entry_bits = entry_bits
        self.ace_entry_cycles = 0
        self.total_events = 0

    def credit(self, duration: int) -> None:
        """Credit one retiring entry's ACE residency interval."""
        self.total_events += 1
        if duration > 0:
            self.ace_entry_cycles += duration

    def ace_bit_cycles(self) -> float:
        """Total ACE bit-cycles accumulated so far."""
        return float(self.ace_entry_cycles) * self.entry_bits

    def clone(self) -> "ResidencyTracker":
        """Independent copy of this tracker's residency totals."""
        dup = ResidencyTracker(entry_bits=self.entry_bits)
        dup.ace_entry_cycles = self.ace_entry_cycles
        dup.total_events = self.total_events
        return dup


# -------------------------------------------------------------------- ledger


class VulnerabilityLedger:
    """Per-run accounts plus event trackers for every enabled structure.

    Constructed once per simulation from a :class:`~repro.uarch.config.
    MachineConfig`: every registered descriptor whose ``enabled`` predicate
    holds gets an :class:`AceAccumulator` account, in registration order
    (which is therefore the column order of reports).  Core structures are
    fed through :meth:`add_interval` / :meth:`credit`; storage structures
    attach :class:`LifetimeTracker` / :class:`ResidencyTracker` state
    machines whose totals :meth:`collect` folds into the accounts.
    """

    def __init__(self, config, structures: "list[VulnerableStructure] | None" = None) -> None:
        if structures is None:
            structures = enabled_structures(config)
        self.config = config
        self.accounts: dict[StructureName, AceAccumulator] = {}
        self._descriptors: dict[StructureName, VulnerableStructure] = {}
        self._word_trackers: dict[StructureName, LifetimeTracker] = {}
        self._residency_trackers: dict[StructureName, ResidencyTracker] = {}
        self._collected = False
        for descriptor in structures:
            member = descriptor.structure
            self._descriptors[member] = descriptor
            self.accounts[member] = AceAccumulator(
                member, descriptor.entries(config), descriptor.bits_per_entry(config)
            )

    # ------------------------------------------------------------- lookups

    def _resolve(self, name: "str | StructureName") -> StructureName:
        if isinstance(name, str):
            try:
                member = StructureName(name)
            except ValueError:
                raise self._unknown(name) from None
        else:
            member = name
        if member not in self.accounts:
            raise self._unknown(member.value)
        return member

    def _unknown(self, value: str) -> RegistryError:
        known = [member.value for member in self.accounts]
        message = f"structure {value!r} is not tracked by this ledger{suggest(value, known)}"
        if known:
            message += f" (tracked: {', '.join(known)})"
        if value in STRUCTURES:
            message += "; it is registered but disabled for this machine configuration"
        return RegistryError(message)

    def account(self, name: "str | StructureName") -> AceAccumulator:
        """The account of one tracked structure (nearest-match error if unknown)."""
        return self.accounts[self._resolve(name)]

    def __contains__(self, name: object) -> bool:
        try:
            member = StructureName(name) if isinstance(name, str) else name
        except ValueError:
            return False
        return member in self.accounts

    # ------------------------------------------------------ interval events

    def add_interval(
        self, name: "str | StructureName", start: int, end: int, ace_fraction: float = 1.0
    ) -> None:
        """Record one occupancy interval of a core structure."""
        self.account(name).add_interval(start, end, ace_fraction)

    def add_intervals(self, name: "str | StructureName", starts, ends, ace_fractions=None) -> None:
        """Bulk :meth:`add_interval`: parallel (start, end, ace_fraction) columns.

        Exactly equivalent to looping ``add_interval`` over the columns; see
        :meth:`AceAccumulator.add_intervals` for the bit-identical contract.
        """
        self.account(name).add_intervals(starts, ends, ace_fractions)

    def credit(
        self,
        name: "str | StructureName",
        occupied_entry_cycles: float,
        ace_bit_cycles: float,
    ) -> None:
        """Flush locally batched occupancy/ACE sums into an account.

        The simulator hot loop batches per-structure sums in local floats and
        flushes once per run; performing the same additions here keeps the
        result bit-identical to per-op accounting.  Negative sums raise
        ``ValueError`` — a sign bug must not silently deflate AVF.
        """
        self.account(name).add_bit_cycles(ace_bit_cycles, occupied_entry_cycles)

    # ------------------------------------------------------ lifetime events

    def word_tracker(
        self, name: "str | StructureName", word_bits: "int | None" = None
    ) -> LifetimeTracker:
        """The word-lifetime state machine of a storage structure.

        Components hold onto the returned tracker (and its bound methods) so
        the per-event cost matches the old embedded trackers; one tracker
        exists per structure per ledger.  ``word_bits`` defaults to the
        descriptor's event granularity (``word_bits`` if declared, else the
        full entry); passing a value that contradicts an existing tracker
        raises — one structure cannot be accounted at two granularities.
        """
        member = self._resolve(name)
        tracker = self._word_trackers.get(member)
        if word_bits is None:
            # Resolve from the descriptors this ledger was constructed with
            # (which may include unregistered ones via ``structures=``).
            word_bits = self._descriptors[member].event_word_bits(self.config)
        if tracker is None:
            tracker = LifetimeTracker(word_bits=word_bits)
            self._word_trackers[member] = tracker
        elif tracker.word_bits != word_bits:
            raise ValueError(
                f"structure {member.value!r} is already tracked at "
                f"{tracker.word_bits} bits/event, requested {word_bits}"
            )
        return tracker

    def residency_tracker(self, name: "str | StructureName", entry_bits: int = 64) -> ResidencyTracker:
        """The entry-residency accumulator of a TLB-style structure."""
        member = self._resolve(name)
        tracker = self._residency_trackers.get(member)
        if tracker is None:
            tracker = ResidencyTracker(entry_bits=entry_bits)
            self._residency_trackers[member] = tracker
        return tracker

    def fill(self, name: "str | StructureName", line: int, word: int, cycle: int, ace: bool = True) -> None:
        """Lifetime event: a word became resident."""
        self._existing_word_tracker(name).record_fill(line, word, cycle, ace=ace)

    def read(self, name: "str | StructureName", line: int, word: int, cycle: int, ace: bool = True) -> None:
        """Lifetime event: a resident word was read."""
        self._existing_word_tracker(name).record_read(line, word, cycle, ace=ace)

    def write(self, name: "str | StructureName", line: int, word: int, cycle: int, ace: bool = True) -> None:
        """Lifetime event: a resident word was overwritten."""
        self._existing_word_tracker(name).record_write(line, word, cycle, ace=ace)

    def evict(self, name: "str | StructureName", line: int, word: int, cycle: int) -> None:
        """Lifetime event: a resident word left the structure."""
        self._existing_word_tracker(name).record_evict(line, word, cycle)

    def flush(self, name: "str | StructureName", cycle: int) -> None:
        """Lifetime event: close every open interval of one structure."""
        self._existing_word_tracker(name).finalize(cycle)

    def _existing_word_tracker(self, name: "str | StructureName") -> LifetimeTracker:
        return self.word_tracker(name)

    # ------------------------------------------------------------ totals

    def collect(self) -> dict[StructureName, AceAccumulator]:
        """Fold the lifetime trackers' totals into the accounts (idempotent).

        Call after the owning components have closed their intervals (the
        memory hierarchy's ``finalize``); returns the account mapping.
        """
        if not self._collected:
            self._collected = True
            for member, tracker in self._word_trackers.items():
                self.accounts[member].add_bit_cycles(tracker.ace_bit_cycles())
            for member, tracker in self._residency_trackers.items():
                self.accounts[member].add_bit_cycles(tracker.ace_bit_cycles())
        return self.accounts

    def total_events(self) -> int:
        """Number of lifetime events recorded across all trackers."""
        return sum(t.total_events for t in self._word_trackers.values()) + sum(
            t.total_events for t in self._residency_trackers.values()
        )

    # ------------------------------------------------------------- cloning

    def clone(self) -> "VulnerabilityLedger":
        """Independent copy of the ledger: accounts plus tracker state.

        The batch evaluation plane warms one master ledger per (config,
        warm-up footprint) and clones it per genome; the clone's subsequent
        event/credit sequence is then exactly the sequence a freshly warmed
        ledger would see, so results stay bit-identical to the per-run path.
        """
        dup = VulnerabilityLedger.__new__(VulnerabilityLedger)
        dup.config = self.config
        dup.accounts = {name: replace(account) for name, account in self.accounts.items()}
        dup._descriptors = dict(self._descriptors)
        dup._word_trackers = {
            name: tracker.clone() for name, tracker in self._word_trackers.items()
        }
        dup._residency_trackers = {
            name: tracker.clone() for name, tracker in self._residency_trackers.items()
        }
        dup._collected = self._collected
        return dup
