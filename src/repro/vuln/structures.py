"""Vulnerable-structure descriptors and the ``STRUCTURES`` registry.

The paper's methodology is only as good as its coverage: a stressmark bounds
the worst-case SER of *every tracked structure*, so adding a structure to the
machine model must be a declaration, not a pipeline rewrite.  This module is
that declaration surface:

* :class:`StructureName` — an *open*, enum-like identity for tracked
  structures.  It behaves like the closed ``Enum`` it replaces (``
  StructureName.IQ``, ``StructureName("iq")``, ``.value``, identity
  comparison, pickling across worker processes), but new members are minted
  whenever a new structure is registered.
* :class:`VulnerableStructure` — the descriptor: SER group, geometry
  (entries / bits-per-entry as functions of the machine config), the
  fault-rate key and an ``enabled`` predicate for flag-gated structures.
* :data:`STRUCTURES` — the registry (same :class:`~repro.api.registry.
  Registry` machinery as configs/fault rates/suites, including nearest-match
  :class:`~repro.api.registry.RegistryError` on unknown lookups).

Everything downstream — the :class:`~repro.vuln.ledger.VulnerabilityLedger`,
SER grouping in :mod:`repro.avf.analysis`, reports, GA fitness, the CLI's
``repro list`` — iterates this registry, so a registered structure is
automatically simulated, accounted, reported and optimised against.

Registering a structure (the whole recipe, see ARCHITECTURE.md)::

    from repro.vuln import VulnerableStructure, register_structure

    register_structure(VulnerableStructure(
        name="rename_map",
        group="qs",                  # SER group it aggregates into
        kind="core",                 # occupancy-style (vs "storage")
        entries=lambda c: 2 * c.architected_registers,
        bits_per_entry=lambda c: 8,
        description="register rename map checkpoints",
    ))

and emit ``ledger.add_interval("rename_map", start, end, ace_fraction)``
(or fill/read/write/evict events) from the component that models it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

from repro.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.config import MachineConfig


# --------------------------------------------------------------- StructureName


class _StructureNameMeta(type):
    """Metaclass giving :class:`StructureName` its enum-like call/iter API."""

    def __call__(cls, value):  # noqa: D102 - enum-style lookup
        if isinstance(value, cls):
            return value
        try:
            return cls._members[value]
        except KeyError:
            raise ValueError(f"{value!r} is not a valid {cls.__name__}") from None

    def __iter__(cls) -> Iterator["StructureName"]:
        return iter(cls._members.values())

    def __len__(cls) -> int:
        return len(cls._members)


def _restore_structure_name(value: str) -> "StructureName":
    """Pickle hook: resolve (or re-mint) a member by value.

    Worker processes and result stores may deserialize members of structures
    registered only in the parent process; minting the member on demand keeps
    those payloads loadable (the descriptor metadata follows separately when
    the owning plugin is imported).
    """
    return StructureName._mint(value)


class StructureName(metaclass=_StructureNameMeta):
    """Open, enum-like identifier of a structure tracked for SER accounting.

    Members are interned singletons: ``StructureName("iq") is
    StructureName.IQ`` holds within a process, and pickling round-trips to
    the same member (old ``Enum`` pickles, which reduce to ``(class,
    (value,))``, also resolve through the metaclass call).  New members are
    minted by :func:`register_structure`.
    """

    __slots__ = ("_value", "_name", "_kind", "_group")

    _members: dict[str, "StructureName"] = {}

    @classmethod
    def _mint(cls, value: str, kind: str = "", group: str = "") -> "StructureName":
        member = cls._members.get(value)
        if member is None:
            if not value or not isinstance(value, str):
                raise ValueError(f"structure values must be non-empty strings, got {value!r}")
            member = object.__new__(cls)
            member._value = value
            member._name = value.upper()
            member._kind = kind
            member._group = group
            cls._members[value] = member
            setattr(cls, member._name, member)
        else:
            # Descriptor registration may stamp metadata onto a member that
            # was first seen via unpickling.
            if kind:
                member._kind = kind
            if group:
                member._group = group
        return member

    @property
    def value(self) -> str:
        return self._value

    @property
    def name(self) -> str:
        return self._name

    @property
    def kind(self) -> str:
        """``"core"`` (occupancy-interval) or ``"storage"`` (lifetime-event)."""
        return self._kind

    @property
    def group(self) -> str:
        """SER group key of the owning descriptor (``qs``, ``rf``, ...)."""
        return self._group

    @property
    def is_core(self) -> bool:
        """True for structures inside the core (queues, RF, FU, store buffer)."""
        return self._kind == "core"

    @property
    def is_queueing(self) -> bool:
        """True for the queueing structures (QS group of the paper)."""
        return self._group == "qs"

    def __repr__(self) -> str:
        return f"<StructureName.{self._name}: {self._value!r}>"

    def __str__(self) -> str:
        return f"StructureName.{self._name}"

    def __reduce__(self):
        return (_restore_structure_name, (self._value,))


# ----------------------------------------------------------------- descriptor


def _always_enabled(config: "MachineConfig") -> bool:
    return True


@dataclass(frozen=True)
class VulnerableStructure:
    """Declarative description of one SER-tracked hardware structure.

    Attributes
    ----------
    name:
        Stable registry key (also the :class:`StructureName` value and the
        default fault-rate key).
    group:
        SER aggregation group (``"qs"``, ``"rf"``, ``"dl1_dtlb"``, ``"l2"``);
        groups feed :class:`~repro.avf.analysis.StructureGroup` SER and the
        GA fitness objectives.
    kind:
        ``"core"`` for occupancy-interval accounting (pipeline queues, RF,
        FU) or ``"storage"`` for lifetime-event accounting (caches, TLBs).
    entries / bits_per_entry:
        Geometry as functions of the :class:`~repro.uarch.config.
        MachineConfig`, so one descriptor covers every configuration.
    fault_rate_key:
        Key the circuit-level fault-rate models use; defaults to ``name``.
    enabled:
        Predicate gating flag-guarded structures (e.g. the store buffer is
        tracked only when ``config.store_buffer_entries > 0``).
    config_flag:
        Name of the :class:`MachineConfig` field that gates the structure
        (documentation for ``repro list``; empty for always-on structures).
    """

    name: str
    group: str
    kind: str
    entries: Callable[["MachineConfig"], int]
    bits_per_entry: Callable[["MachineConfig"], int]
    fault_rate_key: str = ""
    enabled: Callable[["MachineConfig"], bool] = field(default=_always_enabled)
    config_flag: str = ""
    description: str = ""
    #: Event granularity of the lifetime state machine for ``kind="storage"``
    #: structures whose entries are tracked at sub-entry (word) granularity,
    #: e.g. cache lines tracked per 8-byte word.  ``None`` means events cover
    #: a whole entry (TLBs, and any structure without finer-grained state).
    word_bits: "Callable[[MachineConfig], int] | None" = None

    def __post_init__(self) -> None:
        if self.kind not in ("core", "storage"):
            raise ValueError(f"structure kind must be 'core' or 'storage', got {self.kind!r}")
        if not self.group or not isinstance(self.group, str):
            raise ValueError("structures must declare a non-empty SER group")
        if not self.fault_rate_key:
            object.__setattr__(self, "fault_rate_key", self.name)

    @property
    def structure(self) -> StructureName:
        """The interned :class:`StructureName` member of this descriptor."""
        return StructureName._mint(self.name, kind=self.kind, group=self.group)

    def event_word_bits(self, config: "MachineConfig") -> int:
        """Bits covered by one lifetime event (word size, or the full entry)."""
        if self.word_bits is not None:
            return self.word_bits(config)
        return self.bits_per_entry(config)


#: Vulnerable structures: ``name -> VulnerableStructure`` (registration order
#: is the accounting/report column order).
STRUCTURES = Registry("vulnerable structure")


def register_structure(descriptor: VulnerableStructure, *, replace: bool = False) -> StructureName:
    """Register a descriptor and mint its :class:`StructureName` member."""
    if not isinstance(descriptor, VulnerableStructure):
        raise TypeError("register_structure expects a VulnerableStructure")
    STRUCTURES.register(descriptor.name, descriptor, replace=replace)
    return descriptor.structure


def structure_descriptor(name: "str | StructureName") -> VulnerableStructure:
    """The descriptor registered for ``name`` (nearest-match error if unknown)."""
    key = name.value if isinstance(name, StructureName) else name
    return STRUCTURES.get(key)


def enabled_structures(config: "MachineConfig") -> list[VulnerableStructure]:
    """Descriptors active for ``config``, in registration order."""
    return [descriptor for _, descriptor in STRUCTURES.items() if descriptor.enabled(config)]


def structures_in_group(group: str) -> tuple[StructureName, ...]:
    """Registered structures belonging to one SER group, in registration order."""
    return tuple(
        descriptor.structure
        for _, descriptor in STRUCTURES.items()
        if descriptor.group == group
    )


# ------------------------------------------------------- stock registrations
#
# Registration order is deliberate: it is the insertion order of the ledger's
# accounts and therefore the column order of every report and CSV row — the
# eight core structures first (matching the paper's Figure 6), then the
# storage structures, then flag-gated extensions.


def _register_builtin_structures() -> None:
    core = [
        ("iq", "qs", lambda c: c.iq_entries, lambda c: c.iq_bits_per_entry,
         "integer issue queue"),
        ("rob", "qs", lambda c: c.rob_entries, lambda c: c.rob_bits_per_entry,
         "reorder buffer"),
        ("lq_tag", "qs", lambda c: c.lq_entries, lambda c: c.lsq_tag_bits,
         "load queue tag array"),
        ("lq_data", "qs", lambda c: c.lq_entries, lambda c: c.lsq_data_bits,
         "load queue data array"),
        ("sq_tag", "qs", lambda c: c.sq_entries, lambda c: c.lsq_tag_bits,
         "store queue tag array"),
        ("sq_data", "qs", lambda c: c.sq_entries, lambda c: c.lsq_data_bits,
         "store queue data array"),
        ("rf", "rf", lambda c: c.rename_registers, lambda c: c.register_bits,
         "integer rename register file"),
        ("fu", "qs", lambda c: c.functional_units, lambda c: c.fu_bits_per_unit,
         "functional-unit latches"),
    ]
    for name, group, entries, bits, describe in core:
        register_structure(VulnerableStructure(
            name=name, group=group, kind="core",
            entries=entries, bits_per_entry=bits, description=describe,
        ))

    register_structure(VulnerableStructure(
        name="dl1", group="dl1_dtlb", kind="storage",
        entries=lambda c: c.dl1.num_lines,
        bits_per_entry=lambda c: c.dl1.line_bytes * 8,
        word_bits=lambda c: c.dl1.word_bytes * 8,
        description="L1 data cache data array",
    ))
    register_structure(VulnerableStructure(
        name="l2", group="l2", kind="storage",
        entries=lambda c: c.l2.num_lines,
        bits_per_entry=lambda c: c.l2.line_bytes * 8,
        word_bits=lambda c: c.l2.word_bytes * 8,
        description="unified L2 cache data array",
    ))
    register_structure(VulnerableStructure(
        name="dtlb", group="dl1_dtlb", kind="storage",
        entries=lambda c: c.dtlb.entries,
        bits_per_entry=lambda c: c.dtlb.entry_bits,
        description="data TLB",
    ))

    # Flag-gated extensions (PR 4): disabled on the stock paper configs so
    # the baseline AVF/SER output is unchanged; enable via MachineConfig
    # fields (see the registered ``extended`` config).
    register_structure(VulnerableStructure(
        name="sb", group="qs", kind="core",
        entries=lambda c: c.store_buffer_entries,
        bits_per_entry=lambda c: c.store_buffer_bits_per_entry,
        enabled=lambda c: getattr(c, "store_buffer_entries", 0) > 0,
        config_flag="store_buffer_entries",
        description="post-commit store buffer (address+data, drains to DL1)",
    ))
    register_structure(VulnerableStructure(
        name="l2_tlb", group="dl1_dtlb", kind="storage",
        entries=lambda c: c.l2_tlb_entries,
        bits_per_entry=lambda c: c.dtlb.entry_bits,
        enabled=lambda c: getattr(c, "l2_tlb_entries", 0) > 0,
        config_flag="l2_tlb_entries",
        description="unified second-level TLB backing the DTLB",
    ))


_register_builtin_structures()
