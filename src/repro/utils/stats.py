"""Small statistics helpers used across AVF reporting and experiments."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class RunningMean:
    """Incremental mean/maximum tracker used for per-cycle occupancy stats."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.maximum = float("-inf")

    def add(self, value: float) -> None:
        """Accumulate one observation."""
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the accumulated observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def max(self) -> float:
        """Maximum observation (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.maximum


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; returns 0.0 when total weight is zero."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    total_weight = float(sum(weights))
    if total_weight == 0.0:
        return 0.0
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; returns 0.0 for an empty iterable."""
    items = [float(v) for v in values]
    if not items:
        return 0.0
    if any(v <= 0.0 for v in items):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval [low, high]."""
    if low > high:
        raise ValueError("clamp requires low <= high")
    return max(low, min(high, value))
