"""Shared utilities: deterministic RNG helpers and small statistics helpers."""

from repro.utils.rng import DeterministicRng, derive_seed
from repro.utils.stats import RunningMean, geometric_mean, weighted_mean

__all__ = [
    "DeterministicRng",
    "derive_seed",
    "RunningMean",
    "geometric_mean",
    "weighted_mean",
]
