"""Deterministic random-number helpers.

Every stochastic component in the library (genetic algorithm, code generator
instruction placement, synthetic workload generation) draws randomness through
an explicit :class:`DeterministicRng` seeded by the caller.  This keeps every
experiment reproducible bit-for-bit from its seed, which is essential for the
GA search results reported in EXPERIMENTS.md.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a tuple of components.

    The derivation is a stable hash, so the same ``(base_seed, components)``
    pair always produces the same child seed, across processes and platforms.
    This is used to give each GA individual, generation and workload its own
    independent but reproducible RNG stream.
    """
    text = repr((int(base_seed), tuple(repr(c) for c in components)))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


class DeterministicRng:
    """A thin, explicit wrapper around :class:`random.Random`.

    The wrapper exists so that library code never touches the global
    ``random`` module state and so seed-derivation for sub-streams is
    uniform across the codebase.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._random = random.Random(self.seed)

    def spawn(self, *components: object) -> "DeterministicRng":
        """Create an independent child RNG keyed by ``components``."""
        return DeterministicRng(derive_seed(self.seed, *components))

    def raw(self) -> random.Random:
        """The underlying :class:`random.Random` (for hot loops that hoist
        bound methods; draws interleave with the wrapper's own methods)."""
        return self._random

    def getstate(self) -> tuple:
        """Snapshot the generator state (picklable; for checkpointing)."""
        return self._random.getstate()

    def setstate(self, state: tuple) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._random.setstate(state)

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Return a float uniformly distributed in [low, high]."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in [low, high] inclusive."""
        return self._random.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Return a uniformly random element of ``options``."""
        return self._random.choice(options)

    def choices(self, options: Sequence[T], weights: Sequence[float], k: int) -> list[T]:
        """Return ``k`` elements sampled with replacement using ``weights``."""
        return self._random.choices(options, weights=weights, k=k)

    def sample(self, options: Sequence[T], k: int) -> list[T]:
        """Return ``k`` distinct elements sampled without replacement."""
        return self._random.sample(options, k)

    def shuffle(self, items: list[T]) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def gauss(self, mean: float, sigma: float) -> float:
        """Return a normally distributed float."""
        return self._random.gauss(mean, sigma)

    def permutation(self, n: int) -> list[int]:
        """Return a random permutation of ``range(n)``."""
        indices = list(range(n))
        self._random.shuffle(indices)
        return indices

    def coin(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

    def pick_weighted(self, weighted_options: Iterable[tuple[T, float]]) -> T:
        """Pick one option from ``(value, weight)`` pairs."""
        pairs = list(weighted_options)
        values = [value for value, _ in pairs]
        weights = [weight for _, weight in pairs]
        return self._random.choices(values, weights=weights, k=1)[0]
