"""Test-support utilities shipped with the package.

:mod:`repro.testing.chaos` is the fault-injection harness behind the
``chaos-smoke`` tier-2 gate: it turns the ``REPRO_CHAOS`` environment
variable into worker crashes, hangs and torn store writes so the resilience
layer (:mod:`repro.parallel.resilience`, the salvageable stores) can be
exercised end to end.  Everything here is inert unless explicitly enabled,
so shipping it costs production runs nothing.
"""

from repro.testing.chaos import (
    CHAOS_ENV_VAR,
    CHAOS_SEED_ENV_VAR,
    ChaosClause,
    ChaosDrop,
    ChaosError,
    chaos_hook,
    chaos_mangle,
    parse_chaos_spec,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "CHAOS_SEED_ENV_VAR",
    "ChaosClause",
    "ChaosDrop",
    "ChaosError",
    "chaos_hook",
    "chaos_mangle",
    "parse_chaos_spec",
]
