"""Injectable fault hooks for the chaos test harness (``REPRO_CHAOS``).

The resilience layer promises that worker crashes, hangs and torn store
writes never corrupt a run.  This module provides the faults to prove it:
instrumented call sites (worker task execution, store appends) consult the
``REPRO_CHAOS`` environment variable and, when a matching clause fires,
inject the configured failure.  With the variable unset every hook is a
single dictionary lookup, so production runs pay nothing.

Spec grammar (comma-separated clauses)::

    REPRO_CHAOS = clause ("," clause)*
    clause      = site ":" kind [":" probability [":" limit]]

``site`` names an instrumented location:

``worker``
    Task execution inside a pool worker process
    (:func:`repro.parallel.backends._run_task`).
``result-store``
    A JSONL record append in :class:`~repro.store.result_store.ResultStore`
    (the ``truncate`` kind tears the write mid-line).
``artifact-store``
    A pickled-artifact write in :class:`~repro.store.artifacts.ArtifactStore`.
``serve_conn``
    Per-request hook in a ``repro serve`` connection handler (the ``drop``
    kind severs the connection mid-conversation).
``serve_eval``
    The daemon's supervised evaluation thread, just before ``Session.run``
    (``hang`` here proves the eval-loop watchdog).
``serve_daemon``
    The daemon's evaluation loop, after a job is journaled as started
    (``exit`` here is a ``kill -9`` proxy for the whole daemon).

``kind`` is one of:

``exit``   — ``os._exit`` the current process (worker kill / OOM proxy)
``raise``  — raise :class:`ChaosError` (evaluator bug / transient error proxy)
``hang``   — sleep far past any reasonable deadline (stuck-kernel proxy)
``slow``   — sleep briefly (I/O latency proxy)
``drop``   — raise :class:`ChaosDrop` (severed-connection proxy; the serve
    connection handler maps it to an abrupt close)
``truncate`` — only meaningful via :func:`chaos_mangle`: truncate the payload
    of a write mid-record (crash-during-append proxy)

``probability`` (default 1.0) is the chance a clause fires per visit;
``limit`` (default 0 = unlimited) caps how many times it fires *per
process*.  ``REPRO_CHAOS_SEED`` seeds the per-process RNG (mixed with the
pid so workers draw independent sequences).

Process-killing kinds (``exit``, ``hang``) never fire in the process that
first imported this module — chaos must take down workers, not the
orchestrator.  Fork-based worker pools (the Linux default) inherit that
root-pid marker, so worker processes fire normally.  The ``serve_eval`` and
``serve_daemon`` sites are exempt from that guard: they exist precisely to
hang or kill a daemon *subprocess* that is the root pid of its own process
tree (the orchestrating test harness never visits those sites).

The injected failures are *random by design*: the resilience machinery
guarantees results are bit-identical to a clean serial run no matter which
subset of faults fires, so the chaos-smoke gate byte-compares outcomes
rather than fault schedules.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

#: Environment variable holding the fault-injection spec; unset = no chaos.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Optional integer seed for the per-process chaos RNG.
CHAOS_SEED_ENV_VAR = "REPRO_CHAOS_SEED"

#: Fault kinds that take down or stall the current process (``drop`` merely
#: raises :class:`ChaosDrop`, which instrumented servers map to a severed
#: connection).
PROCESS_KINDS = ("exit", "raise", "hang", "slow", "drop")

#: Sites where the root-pid guard is waived: chaos aimed at a ``repro
#: serve`` daemon must fire even though the daemon is its own root process.
UNGUARDED_SITES = frozenset({"serve_eval", "serve_daemon"})

#: Fault kinds that corrupt a payload instead (see :func:`chaos_mangle`).
MANGLE_KINDS = ("truncate",)

KINDS = PROCESS_KINDS + MANGLE_KINDS

#: Sleep used by the ``hang`` kind — far past any sane per-item deadline.
HANG_SECONDS = 3600.0

#: Sleep used by the ``slow`` kind.
SLOW_SECONDS = 0.02

#: Exit status used by the ``exit`` kind (distinctive in worker post-mortems).
EXIT_STATUS = 113

# Pid of the process that first imported this module: the orchestrator.
# Forked workers inherit this value while reporting a different os.getpid(),
# which is exactly the distinction the process-kind guard needs.
_ROOT_PID = os.getpid()


class ChaosError(RuntimeError):
    """The injected failure raised by the ``raise`` fault kind."""


class ChaosDrop(ChaosError):
    """The ``drop`` kind fired: the instrumented server severs the peer."""


@dataclass(frozen=True)
class ChaosClause:
    """One parsed ``site:kind[:probability[:limit]]`` clause."""

    site: str
    kind: str
    probability: float = 1.0
    limit: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r} (expected one of: {', '.join(KINDS)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"chaos probability must be within [0, 1], got {self.probability!r}")
        if self.limit < 0:
            raise ValueError(f"chaos limit must be >= 0, got {self.limit!r}")


def parse_chaos_spec(spec: str) -> tuple[ChaosClause, ...]:
    """Parse a ``REPRO_CHAOS`` spec string into clauses."""
    clauses: list[ChaosClause] = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(
                f"malformed chaos clause {raw!r} (expected site:kind[:probability[:limit]])"
            )
        site, kind = parts[0].strip(), parts[1].strip()
        try:
            probability = float(parts[2]) if len(parts) > 2 else 1.0
            limit = int(parts[3]) if len(parts) > 3 else 0
        except ValueError as exc:
            raise ValueError(f"malformed chaos clause {raw!r}: {exc}") from exc
        clauses.append(ChaosClause(site=site, kind=kind, probability=probability, limit=limit))
    return tuple(clauses)


class _Injector:
    """Per-process fault state: parsed clauses, RNG and fire counters."""

    def __init__(self, clauses: tuple[ChaosClause, ...], seed: int) -> None:
        self.clauses = clauses
        self._rng = random.Random(seed)
        self._fired = [0] * len(clauses)

    def _should_fire(self, index: int, clause: ChaosClause) -> bool:
        if clause.limit and self._fired[index] >= clause.limit:
            return False
        if clause.probability < 1.0 and self._rng.random() >= clause.probability:
            return False
        self._fired[index] += 1
        return True

    def fire(self, site: str) -> None:
        for index, clause in enumerate(self.clauses):
            if clause.site != site or clause.kind not in PROCESS_KINDS:
                continue
            if not self._should_fire(index, clause):
                continue
            self._execute(clause)

    @staticmethod
    def _execute(clause: ChaosClause) -> None:
        if clause.kind == "slow":
            time.sleep(SLOW_SECONDS)
            return
        if clause.kind == "raise":
            raise ChaosError(f"injected fault at {clause.site!r}")
        if clause.kind == "drop":
            raise ChaosDrop(f"injected connection drop at {clause.site!r}")
        # Process-killing kinds must never take down the orchestrator —
        # except at daemon-targeted sites, where the daemon IS the target.
        if os.getpid() == _ROOT_PID and clause.site not in UNGUARDED_SITES:
            return
        if clause.kind == "hang":
            time.sleep(HANG_SECONDS)
        elif clause.kind == "exit":
            os._exit(EXIT_STATUS)

    def mangle(self, site: str, data: bytes) -> bytes:
        for index, clause in enumerate(self.clauses):
            if clause.site != site or clause.kind not in MANGLE_KINDS:
                continue
            if not self._should_fire(index, clause):
                continue
            # Tear the write mid-record: keep a non-empty prefix so the
            # salvage path has an actual truncated fragment to skip.
            return data[: max(1, len(data) // 2)]
        return data


# Cache keyed by (spec, pid): re-parsed when the env var changes (tests
# monkeypatching REPRO_CHAOS) or after a fork (workers must not share the
# parent's RNG stream and fire counters).
_cache: tuple[str, int, _Injector] | None = None


def _injector() -> _Injector | None:
    spec = os.environ.get(CHAOS_ENV_VAR, "")
    if not spec:
        return None
    global _cache
    pid = os.getpid()
    if _cache is None or _cache[0] != spec or _cache[1] != pid:
        seed_text = os.environ.get(CHAOS_SEED_ENV_VAR, "").strip()
        seed = int(seed_text) if seed_text else 0
        _cache = (spec, pid, _Injector(parse_chaos_spec(spec), seed=seed ^ pid))
    return _cache[2]


def chaos_hook(site: str) -> None:
    """Maybe inject a process fault at ``site``; no-op unless ``REPRO_CHAOS`` is set."""
    injector = _injector()
    if injector is not None:
        injector.fire(site)


def chaos_mangle(site: str, data: bytes) -> bytes:
    """Maybe corrupt a payload written at ``site``; identity unless chaos is on."""
    injector = _injector()
    if injector is None:
        return data
    return injector.mangle(site, data)
