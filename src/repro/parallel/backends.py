"""Evaluation backends: serial and process-pool fan-out.

The GA engine, the stressmark generator and the experiment context all push
batches of independent work (fitness evaluations, workload simulations)
through an :class:`EvaluationBackend`.  The contract every backend honours:

* **Ordered results** — ``map(fn, items)`` returns results in the order of
  ``items`` regardless of which worker finished first, so GA runs are
  bit-identical no matter the worker count.
* **Per-worker state reuse** — :class:`ProcessPoolBackend` workers keep every
  task callable they have ever seen in a version-keyed registry, so expensive
  per-task state (code generator, machine configuration, compiled simulator
  kernels, fitness function) is built once per worker per task *version*
  instead of once per item — and the pool itself is **never recycled** when
  the mapped callable changes (sweeps alternating evaluators reuse the same
  warm workers).
* **Chunked dispatch** — items are shipped to workers in chunks to amortise
  IPC overhead over many small tasks.

Worker count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence, TypeVar

from repro.testing.chaos import chaos_hook

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.resilience import FailurePolicy

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Most task versions a worker-side registry retains (oldest evicted first).
#: Bounds worker memory for very long sweeps over many distinct evaluators.
TASK_REGISTRY_LIMIT = 64

# Worker-side task registry: version -> installed callable.  Task messages
# are ``(version, fn, item)``; ``fn`` pickles once per *chunk* (pickle memoises
# the repeated reference inside a chunk list), and a worker that has already
# installed ``version`` keeps using its registered instance, preserving any
# lazily built per-task state across chunks, map calls and evaluator changes.
_worker_tasks: dict[int, Callable] = {}


def _init_worker() -> None:
    _worker_tasks.clear()


def _run_task(payload):
    version, fn, item = payload
    task = _worker_tasks.get(version)
    if task is None:
        while len(_worker_tasks) >= TASK_REGISTRY_LIMIT:
            _worker_tasks.pop(min(_worker_tasks))
        _worker_tasks[version] = task = fn
    chaos_hook("worker")
    return task(item)


class _TaskVersionTable:
    """Monotone task versions for mapped callables.

    The strong references in ``_table`` also pin every seen callable's
    ``id()``, so the id-keyed lookup can never alias a collected object;
    both maps are bounded alongside the worker-side registry.
    """

    def __init__(self) -> None:
        self._table: dict[int, Callable] = {}
        self._ids: dict[int, int] = {}
        self._next_version = 0

    def version_for(self, fn: Callable) -> int:
        version = self._ids.get(id(fn))
        if version is not None and self._table.get(version) is fn:
            return version
        while len(self._table) >= TASK_REGISTRY_LIMIT:
            oldest = min(self._table)
            stale = self._table.pop(oldest)
            self._ids.pop(id(stale), None)
        self._next_version += 1
        version = self._next_version
        self._ids[id(fn)] = version
        self._table[version] = fn
        return version


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, then ``REPRO_JOBS``, then 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from exc
    return 1


class EvaluationBackend(ABC):
    """Maps a callable over a batch of items with deterministic ordering."""

    jobs: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results are in input order."""

    def evaluate_individuals(self, evaluator: Callable, individuals: Sequence) -> list[tuple[float, dict]]:
        """Evaluate GA individuals; returns ``(fitness, payload)`` per individual.

        The GA evaluator protocol mutates ``individual.payload`` in place and
        returns the fitness.  When evaluation happens in another process those
        mutations land on a pickled copy, so backends return the payload
        explicitly and the engine re-applies it on the caller side.
        """
        if not individuals:
            return []
        task = self._individual_task(evaluator)
        return self.map(task, individuals)

    def map_batches(self, fn: Callable[["EvalBatch"], R], batches: Sequence["EvalBatch"]) -> list[R]:
        """Apply ``fn`` to whole batches; per-batch results in input order.

        The base implementation treats each batch as one map item; the
        resilient backend overrides this to recover batch-level failures by
        re-running the failed batch item by item, preserving the per-item
        retry/quarantine contract.
        """
        return self.map(fn, list(batches))

    def evaluate_batch(self, evaluator: Callable, individuals: Sequence) -> list:
        """Evaluate GA individuals population-at-once.

        Individuals are partitioned into one contiguous batch per worker
        (so batch-capable evaluators amortise per-population state) and the
        per-item outcomes — ``(fitness, payload)`` tuples, or ``Quarantined``
        records from resilient backends — are returned flattened, aligned
        with the input order.
        """
        if not individuals:
            return []
        task = self._batch_task(evaluator)
        batches = partition_batches(individuals, self.jobs)
        outcomes = self.map_batches(task, batches)
        flat: list = []
        for batch, outcome in zip(batches, outcomes):
            if isinstance(outcome, list) and len(outcome) == len(batch.items):
                flat.extend(outcome)
            else:
                # A whole-batch outcome (e.g. Quarantined from a resilient
                # backend that could not salvage it): every slot inherits it.
                flat.extend([outcome] * len(batch.items))
        return flat

    def _individual_task(self, evaluator: Callable) -> "_IndividualTask":
        return self._cached_task(evaluator, _IndividualTask)

    def _batch_task(self, evaluator: Callable) -> "_BatchTask":
        return self._cached_task(evaluator, _BatchTask)

    def _cached_task(self, evaluator: Callable, wrapper: Callable):
        # Keep one stable wrapper per (evaluator, protocol) — not just the
        # most recent one — so sweeps alternating between evaluators hand
        # the pool the same callable objects, and therefore the same task
        # versions, every time they come back around.
        cache = getattr(self, "_task_cache", None)
        if cache is None:
            cache = {}
            self._task_cache = cache
        key = (id(evaluator), wrapper)
        cached = cache.get(key)
        if cached is None or cached.evaluator is not evaluator:
            while len(cache) >= TASK_REGISTRY_LIMIT:
                cache.pop(next(iter(cache)))
            cached = wrapper(evaluator)
            cache[key] = cached
        return cached

    def failure_counters(self) -> dict[str, int]:
        """Cumulative fault-tolerance counters (empty for non-resilient backends).

        Resilient backends report ``failures`` / ``retries`` / ``quarantined``
        / ``worker_restarts`` / ``degraded`` so callers (the Session) can
        attribute per-run deltas in result provenance.
        """
        return {}

    def close(self) -> None:
        """Release worker resources (no-op for serial backends)."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _IndividualTask:
    """Picklable wrapper turning the GA evaluator protocol into a pure map."""

    def __init__(self, evaluator: Callable) -> None:
        self.evaluator = evaluator

    def __call__(self, individual) -> tuple[float, dict]:
        fitness = float(self.evaluator(individual))
        return fitness, individual.payload


class EvalBatch:
    """One worker-sized slice of a generation, evaluated as a unit.

    Batching lets evaluators that implement ``evaluate_batch`` share
    per-population state (compiled batch kernels, warm cache/TLB state,
    operand plans) across the genomes of the slice; it is purely an
    execution grouping — outcomes stay per-item and ordered.
    """

    __slots__ = ("items",)

    def __init__(self, items: Sequence) -> None:
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def __getstate__(self):
        return self.items

    def __setstate__(self, items) -> None:
        self.items = items


class _BatchTask:
    """Picklable wrapper evaluating one :class:`EvalBatch` per call.

    Evaluators exposing ``evaluate_batch`` get the whole slice at once;
    anything else falls back to the per-item protocol, so batching is safe
    to use with arbitrary evaluators.
    """

    def __init__(self, evaluator: Callable) -> None:
        self.evaluator = evaluator

    def __call__(self, batch: EvalBatch) -> list[tuple[float, dict]]:
        evaluate_batch = getattr(self.evaluator, "evaluate_batch", None)
        if evaluate_batch is not None:
            return evaluate_batch(batch.items)
        return [(float(self.evaluator(item)), item.payload) for item in batch.items]


def partition_batches(items: Sequence, parts: int) -> list[EvalBatch]:
    """Split items into at most ``parts`` contiguous, balanced batches."""
    count = len(items)
    parts = max(1, min(int(parts), count))
    base, extra = divmod(count, parts)
    batches: list[EvalBatch] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        batches.append(EvalBatch(items[start:start + size]))
        start += size
    return batches


class SerialBackend(EvaluationBackend):
    """In-process evaluation; the default and the reference for determinism."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ProcessPoolBackend(EvaluationBackend):
    """Multiprocessing pool backend with chunked, order-preserving dispatch.

    The pool is created lazily on the first :meth:`map` call and stays alive
    for the backend's whole lifetime: mapped callables are assigned monotone
    *task versions* and installed into a worker-side registry on first sight,
    so changing the callable (a sweep moving to the next evaluator, the GA
    finishing one search and starting another) never tears workers down.
    """

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self._mp_context = mp_context
        self._pool = None
        self._versions = _TaskVersionTable()

    # ------------------------------------------------------------------ map

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        version = self._versions.version_for(fn)
        chunk = self.chunk_size or max(1, len(items) // (self.jobs * 4))
        payloads = [(version, fn, item) for item in items]
        return pool.map(_run_task, payloads, chunksize=chunk)

    # ------------------------------------------------------------- plumbing

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self._mp_context)
            self._pool = context.Pool(self.jobs, initializer=_init_worker)
        return self._pool

    def close(self) -> None:
        """Graceful shutdown: let workers finish before joining.

        ``terminate()`` here could kill a worker mid-write (a persistent
        fitness cache flushing sqlite, for example); it is reserved for the
        error path (:meth:`__exit__` with an exception) and :meth:`__del__`.
        """
        self._shutdown(graceful=True)

    def terminate(self) -> None:
        """Forceful shutdown for error paths: kill workers immediately."""
        self._shutdown(graceful=False)

    def _shutdown(self, graceful: bool) -> None:
        if self._pool is None:
            return
        if graceful:
            self._pool.close()
        else:
            self._pool.terminate()
        self._pool.join()
        self._pool = None

    def __exit__(self, *exc_info: object) -> None:
        if exc_info and exc_info[0] is not None:
            self.terminate()
        else:
            self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self._shutdown(graceful=False)
        except Exception:
            pass


def create_backend(
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    policy: Optional["FailurePolicy"] = None,
) -> EvaluationBackend:
    """Backend for ``jobs`` workers (resolving ``None`` via ``REPRO_JOBS``).

    ``jobs > 1`` returns the fault-tolerant
    :class:`~repro.parallel.resilience.ResilientPoolBackend` (``policy``
    defaults to the ``REPRO_RETRY_*`` environment); the chunked
    :class:`ProcessPoolBackend` stays available via the ``process`` entry of
    the BACKENDS registry.  ``chunk_size`` only applies to the latter and is
    ignored here.
    """
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return SerialBackend()
    from repro.parallel.resilience import ResilientPoolBackend

    return ResilientPoolBackend(resolved, policy=policy)
