"""Evaluation backends: serial and process-pool fan-out.

The GA engine, the stressmark generator and the experiment context all push
batches of independent work (fitness evaluations, workload simulations)
through an :class:`EvaluationBackend`.  The contract every backend honours:

* **Ordered results** — ``map(fn, items)`` returns results in the order of
  ``items`` regardless of which worker finished first, so GA runs are
  bit-identical no matter the worker count.
* **Per-worker state reuse** — :class:`ProcessPoolBackend` workers keep every
  task callable they have ever seen in a version-keyed registry, so expensive
  per-task state (code generator, machine configuration, compiled simulator
  kernels, fitness function) is built once per worker per task *version*
  instead of once per item — and the pool itself is **never recycled** when
  the mapped callable changes (sweeps alternating evaluators reuse the same
  warm workers).
* **Chunked dispatch** — items are shipped to workers in chunks to amortise
  IPC overhead over many small tasks.

Worker count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

#: Most task versions a worker-side registry retains (oldest evicted first).
#: Bounds worker memory for very long sweeps over many distinct evaluators.
TASK_REGISTRY_LIMIT = 64

# Worker-side task registry: version -> installed callable.  Task messages
# are ``(version, fn, item)``; ``fn`` pickles once per *chunk* (pickle memoises
# the repeated reference inside a chunk list), and a worker that has already
# installed ``version`` keeps using its registered instance, preserving any
# lazily built per-task state across chunks, map calls and evaluator changes.
_worker_tasks: dict[int, Callable] = {}


def _init_worker() -> None:
    _worker_tasks.clear()


def _run_task(payload):
    version, fn, item = payload
    task = _worker_tasks.get(version)
    if task is None:
        while len(_worker_tasks) >= TASK_REGISTRY_LIMIT:
            _worker_tasks.pop(min(_worker_tasks))
        _worker_tasks[version] = task = fn
    return task(item)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, then ``REPRO_JOBS``, then 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from exc
    return 1


class EvaluationBackend(ABC):
    """Maps a callable over a batch of items with deterministic ordering."""

    jobs: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results are in input order."""

    def evaluate_individuals(self, evaluator: Callable, individuals: Sequence) -> list[tuple[float, dict]]:
        """Evaluate GA individuals; returns ``(fitness, payload)`` per individual.

        The GA evaluator protocol mutates ``individual.payload`` in place and
        returns the fitness.  When evaluation happens in another process those
        mutations land on a pickled copy, so backends return the payload
        explicitly and the engine re-applies it on the caller side.
        """
        if not individuals:
            return []
        task = self._individual_task(evaluator)
        return self.map(task, individuals)

    def _individual_task(self, evaluator: Callable) -> "_IndividualTask":
        # Keep one stable wrapper per evaluator (not just the most recent
        # one), so sweeps alternating between evaluators hand the pool the
        # same callable objects — and therefore the same task versions —
        # every time they come back around.
        cache = getattr(self, "_task_cache", None)
        if cache is None:
            cache = {}
            self._task_cache = cache
        cached = cache.get(id(evaluator))
        if cached is None or cached.evaluator is not evaluator:
            while len(cache) >= TASK_REGISTRY_LIMIT:
                cache.pop(next(iter(cache)))
            cached = _IndividualTask(evaluator)
            cache[id(evaluator)] = cached
        return cached

    def close(self) -> None:
        """Release worker resources (no-op for serial backends)."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _IndividualTask:
    """Picklable wrapper turning the GA evaluator protocol into a pure map."""

    def __init__(self, evaluator: Callable) -> None:
        self.evaluator = evaluator

    def __call__(self, individual) -> tuple[float, dict]:
        fitness = float(self.evaluator(individual))
        return fitness, individual.payload


class SerialBackend(EvaluationBackend):
    """In-process evaluation; the default and the reference for determinism."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ProcessPoolBackend(EvaluationBackend):
    """Multiprocessing pool backend with chunked, order-preserving dispatch.

    The pool is created lazily on the first :meth:`map` call and stays alive
    for the backend's whole lifetime: mapped callables are assigned monotone
    *task versions* and installed into a worker-side registry on first sight,
    so changing the callable (a sweep moving to the next evaluator, the GA
    finishing one search and starting another) never tears workers down.
    """

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self._mp_context = mp_context
        self._pool = None
        # version -> callable.  The strong references also pin every seen
        # callable's id(), so the id-keyed lookup table can never alias a
        # collected object (bounded alongside the worker-side registry).
        self._task_table: dict[int, Callable] = {}
        self._task_versions: dict[int, int] = {}
        self._next_version = 0

    # ------------------------------------------------------------------ map

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool()
        version = self._version_for(fn)
        chunk = self.chunk_size or max(1, len(items) // (self.jobs * 4))
        payloads = [(version, fn, item) for item in items]
        return pool.map(_run_task, payloads, chunksize=chunk)

    # ------------------------------------------------------------- plumbing

    def _version_for(self, fn: Callable) -> int:
        version = self._task_versions.get(id(fn))
        if version is not None and self._task_table.get(version) is fn:
            return version
        while len(self._task_table) >= TASK_REGISTRY_LIMIT:
            oldest = min(self._task_table)
            stale = self._task_table.pop(oldest)
            self._task_versions.pop(id(stale), None)
        self._next_version += 1
        version = self._next_version
        self._task_versions[id(fn)] = version
        self._task_table[version] = fn
        return version

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self._mp_context)
            self._pool = context.Pool(self.jobs, initializer=_init_worker)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.close()
        except Exception:
            pass


def create_backend(jobs: Optional[int] = None, chunk_size: Optional[int] = None) -> EvaluationBackend:
    """Backend for ``jobs`` workers (resolving ``None`` via ``REPRO_JOBS``)."""
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return SerialBackend()
    return ProcessPoolBackend(resolved, chunk_size=chunk_size)
