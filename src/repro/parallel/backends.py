"""Evaluation backends: serial and process-pool fan-out.

The GA engine, the stressmark generator and the experiment context all push
batches of independent work (fitness evaluations, workload simulations)
through an :class:`EvaluationBackend`.  The contract every backend honours:

* **Ordered results** — ``map(fn, items)`` returns results in the order of
  ``items`` regardless of which worker finished first, so GA runs are
  bit-identical no matter the worker count.
* **Per-worker state reuse** — :class:`ProcessPoolBackend` installs the task
  callable once per worker process (pool initializer), so expensive per-task
  state (code generator, machine configuration, fitness function) is built
  once per worker instead of once per item.
* **Chunked dispatch** — items are shipped to workers in chunks to amortise
  IPC overhead over many small tasks.

Worker count resolution: an explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from abc import ABC, abstractmethod
from typing import Callable, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV_VAR = "REPRO_JOBS"

# Module-global slot holding the task callable inside a worker process; set
# once by the pool initializer so per-item messages carry only the item.
_worker_fn: Optional[Callable] = None


def _init_worker(fn: Callable) -> None:
    global _worker_fn
    _worker_fn = fn


def _run_task(item):
    assert _worker_fn is not None, "worker pool used before initialisation"
    return _worker_fn(item)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, then ``REPRO_JOBS``, then 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"{JOBS_ENV_VAR} must be an integer, got {env!r}") from exc
    return 1


class EvaluationBackend(ABC):
    """Maps a callable over a batch of items with deterministic ordering."""

    jobs: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results are in input order."""

    def evaluate_individuals(self, evaluator: Callable, individuals: Sequence) -> list[tuple[float, dict]]:
        """Evaluate GA individuals; returns ``(fitness, payload)`` per individual.

        The GA evaluator protocol mutates ``individual.payload`` in place and
        returns the fitness.  When evaluation happens in another process those
        mutations land on a pickled copy, so backends return the payload
        explicitly and the engine re-applies it on the caller side.
        """
        if not individuals:
            return []
        task = self._individual_task(evaluator)
        return self.map(task, individuals)

    def _individual_task(self, evaluator: Callable) -> "_IndividualTask":
        # Keep the wrapper stable across calls with the same evaluator so
        # process pools can be reused between GA generations.
        cached = getattr(self, "_task_cache", None)
        if cached is None or cached.evaluator is not evaluator:
            cached = _IndividualTask(evaluator)
            self._task_cache = cached
        return cached

    def close(self) -> None:
        """Release worker resources (no-op for serial backends)."""

    def __enter__(self) -> "EvaluationBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _IndividualTask:
    """Picklable wrapper turning the GA evaluator protocol into a pure map."""

    def __init__(self, evaluator: Callable) -> None:
        self.evaluator = evaluator

    def __call__(self, individual) -> tuple[float, dict]:
        fitness = float(self.evaluator(individual))
        return fitness, individual.payload


class SerialBackend(EvaluationBackend):
    """In-process evaluation; the default and the reference for determinism."""

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]


class ProcessPoolBackend(EvaluationBackend):
    """Multiprocessing pool backend with chunked, order-preserving dispatch.

    The pool is created lazily on the first :meth:`map` call and kept alive
    while the mapped callable stays the same object, so per-worker state
    (installed by the pool initializer) is reused across GA generations.
    Mapping a different callable recycles the pool.
    """

    def __init__(
        self,
        jobs: int,
        chunk_size: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size
        self._mp_context = mp_context
        self._pool = None
        self._pool_fn: Optional[Callable] = None

    # ------------------------------------------------------------------ map

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        pool = self._ensure_pool(fn)
        chunk = self.chunk_size or max(1, len(items) // (self.jobs * 4))
        return pool.map(_run_task, items, chunksize=chunk)

    # ------------------------------------------------------------- plumbing

    def _ensure_pool(self, fn: Callable):
        if self._pool is None or self._pool_fn is not fn:
            self.close()
            context = multiprocessing.get_context(self._mp_context)
            self._pool = context.Pool(self.jobs, initializer=_init_worker, initargs=(fn,))
            self._pool_fn = fn
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_fn = None

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.close()
        except Exception:
            pass


def create_backend(jobs: Optional[int] = None, chunk_size: Optional[int] = None) -> EvaluationBackend:
    """Backend for ``jobs`` workers (resolving ``None`` via ``REPRO_JOBS``)."""
    resolved = resolve_jobs(jobs)
    if resolved <= 1:
        return SerialBackend()
    return ProcessPoolBackend(resolved, chunk_size=chunk_size)
