"""Fault-tolerant evaluation: the resilient worker pool and its policies.

:class:`ProcessPoolBackend` (PR 5) made the evaluation fabric *warm*; this
module makes it *durable*.  A single segfaulting worker, an OOM-killed
child, a hung simulation or a transiently failing evaluator must not
deadlock ``map`` or abort a multi-hour GA search, so
:class:`ResilientPoolBackend` dispatches items individually over per-worker
pipes and supervises every attempt:

* **Per-item deadlines** — an item running past ``RetryPolicy.timeout`` has
  its worker killed and is retried elsewhere.
* **Dead-worker detection** — a worker exiting mid-task (crash, OOM kill,
  injected chaos) is detected via its process sentinel; only the lost worker
  is respawned, and the warm task registry of the survivors is untouched
  (the respawned worker re-warms lazily from the task payloads).
* **Retries with capped exponential backoff** — a failed attempt re-queues
  the item after ``base_delay * 2**(attempt-1)`` seconds (capped at
  ``max_delay``), up to ``max_attempts`` attempts.
* **Quarantine** — an item that exhausts its attempts is *recorded* as
  :class:`Quarantined` in the result slot instead of raising, so one
  poisonous genome/workload cannot abort the surrounding search (disable
  via ``FailurePolicy.quarantine=False`` to raise :class:`TaskFailedError`).
* **Graceful degradation** — repeated pool-level failures (more worker
  losses than ``FailurePolicy.max_pool_failures``) fall the backend back to
  in-process serial execution with a warning instead of dying.

Determinism is preserved in every path: results are placed by input index,
retries and backoff never touch item ordering or any RNG, and the degraded
serial path calls ``fn(item)`` exactly like
:class:`~repro.parallel.backends.SerialBackend` — so a run under faults is
bit-identical to a clean serial run (the ``chaos-smoke`` gate enforces
this).

``RetryPolicy`` fields are configurable per run (RunSpec
``retries``/``task_timeout``, CLI ``--retries``/``--task-timeout``) or
globally via ``REPRO_RETRY_MAX_ATTEMPTS`` / ``REPRO_RETRY_BASE_DELAY`` /
``REPRO_RETRY_TIMEOUT``.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import time
import warnings
from dataclasses import dataclass, fields as dataclass_fields, replace
from multiprocessing import connection as mp_connection
from typing import Callable, Iterable, Optional, TypeVar

from repro.parallel.backends import (
    EvaluationBackend,
    _TaskVersionTable,
    _init_worker,
    _run_task,
)

T = TypeVar("T")
R = TypeVar("R")

#: Environment variables consulted by :meth:`RetryPolicy.from_env`.
RETRY_MAX_ATTEMPTS_ENV_VAR = "REPRO_RETRY_MAX_ATTEMPTS"
RETRY_BASE_DELAY_ENV_VAR = "REPRO_RETRY_BASE_DELAY"
RETRY_TIMEOUT_ENV_VAR = "REPRO_RETRY_TIMEOUT"

#: Upper bound on one supervision wait so liveness is re-checked regularly.
_MAX_WAIT_SECONDS = 0.5

#: Grace period for a worker to exit after the stop sentinel / SIGTERM.
_JOIN_GRACE_SECONDS = 2.0


class TaskFailedError(RuntimeError):
    """An item exhausted its retry attempts and quarantine is disabled."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-item retry schedule of the resilient backend.

    ``max_attempts`` counts total tries per item (1 = no retries);
    ``timeout`` is the per-item deadline in seconds (``None`` = unlimited);
    failed attempts back off ``base_delay * 2**(attempt-1)`` seconds, capped
    at ``max_delay``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    timeout: Optional[float] = None
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0.0:
            raise ValueError("base_delay must be non-negative")
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError("timeout must be positive (or None for unlimited)")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be at least base_delay")

    def delay_for(self, attempt: int) -> float:
        """Backoff before re-dispatching after the ``attempt``-th failure (1-based)."""
        return min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))

    def derive(self, **overrides: object) -> "RetryPolicy":
        """A copy with fields overridden (spec/CLI layering)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Defaults overridden by the ``REPRO_RETRY_*`` environment variables."""
        kwargs: dict[str, object] = {}
        attempts = os.environ.get(RETRY_MAX_ATTEMPTS_ENV_VAR, "").strip()
        if attempts:
            try:
                kwargs["max_attempts"] = int(attempts)
            except ValueError as exc:
                raise ValueError(
                    f"{RETRY_MAX_ATTEMPTS_ENV_VAR} must be an integer, got {attempts!r}"
                ) from exc
        for name, env_var in (("base_delay", RETRY_BASE_DELAY_ENV_VAR),
                              ("timeout", RETRY_TIMEOUT_ENV_VAR)):
            text = os.environ.get(env_var, "").strip()
            if text:
                try:
                    kwargs[name] = float(text)
                except ValueError as exc:
                    raise ValueError(f"{env_var} must be a number, got {text!r}") from exc
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FailurePolicy:
    """How the evaluation fabric reacts when the retry schedule is exhausted.

    ``quarantine`` records permanently failing items on the result instead
    of raising; ``degrade_to_serial`` falls back to in-process execution
    after ``max_pool_failures`` worker losses instead of aborting the run.
    """

    retry: RetryPolicy = RetryPolicy()
    quarantine: bool = True
    degrade_to_serial: bool = True
    max_pool_failures: int = 8

    def __post_init__(self) -> None:
        if self.max_pool_failures < 1:
            raise ValueError("max_pool_failures must be at least 1")

    @classmethod
    def from_env(cls) -> "FailurePolicy":
        return cls(retry=RetryPolicy.from_env())


@dataclass(frozen=True)
class Quarantined:
    """Result slot recorded for an item that kept failing.

    The resilient backend never lets a permanently failing genome/workload
    abort the whole search: after ``max_attempts`` failures the item's slot
    holds this record (last error message and attempt count) and the run
    continues.  The GA engine maps it to a ``-inf`` fitness and counts it in
    :class:`~repro.ga.engine.GAResult.quarantined`.
    """

    error: str
    attempts: int


@dataclass
class FailureStats:
    """Cumulative fault counters of one :class:`ResilientPoolBackend`."""

    failures: int = 0
    retries: int = 0
    quarantined: int = 0
    worker_restarts: int = 0
    degraded: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}


def _resilient_worker(conn) -> None:  # pragma: no cover - runs in child processes
    """Worker loop: one ``(seq, payload)`` request per ``(seq, ok, value)`` reply."""
    _init_worker()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        seq, payload = message
        try:
            value = _run_task(payload)
        except BaseException as exc:
            reply = (seq, False, f"{type(exc).__name__}: {exc}")
        else:
            reply = (seq, True, value)
        try:
            conn.send(reply)
        except (EOFError, OSError, BrokenPipeError):
            break
        except Exception as exc:
            # Unpicklable result/error: report the failure instead of dying
            # silently (Connection.send pickles before writing, so the wire
            # is still clean).
            try:
                conn.send((seq, False, f"unpicklable worker reply: {type(exc).__name__}: {exc}"))
            except Exception:
                break


class _Worker:
    """One supervised worker process with a dedicated duplex pipe.

    A dedicated pipe per worker keeps a crash mid-``send`` from corrupting
    anyone else's channel (the classic reason ``concurrent.futures`` marks
    a whole pool broken): the torn stream dies with the worker.
    """

    __slots__ = ("process", "connection", "seq", "deadline")

    def __init__(self, context) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(target=_resilient_worker, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.connection = parent_conn
        self.seq: Optional[int] = None
        self.deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return self.seq is not None

    def dispatch(self, seq: int, payload: tuple, timeout: Optional[float]) -> None:
        self.connection.send((seq, payload))
        self.seq = seq
        self.deadline = None if timeout is None else time.monotonic() + timeout

    def settle(self) -> None:
        """Mark the in-flight item as answered."""
        self.seq = None
        self.deadline = None

    def stop(self) -> None:
        """Graceful shutdown: sentinel, join, then escalate if ignored."""
        try:
            self.connection.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout=_JOIN_GRACE_SECONDS)
        if self.process.is_alive():
            self.kill()
            return
        self.connection.close()

    def kill(self) -> None:
        """Forceful shutdown for hung or error-path workers."""
        self.process.terminate()
        self.process.join(timeout=_JOIN_GRACE_SECONDS)
        if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
            self.process.kill()
            self.process.join()
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class ResilientPoolBackend(EvaluationBackend):
    """Crash-surviving worker pool with retries, quarantine and degradation.

    Registered as ``resilient`` in the BACKENDS registry and the default for
    ``jobs > 1`` (see :func:`~repro.parallel.backends.create_backend`).
    Mapped callables keep the warm-task-registry contract of
    :class:`~repro.parallel.backends.ProcessPoolBackend`: versioned install
    on first sight, per-worker reuse across map calls and evaluator changes.
    """

    def __init__(
        self,
        jobs: int,
        policy: Optional[FailurePolicy] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = int(jobs)
        self.policy = policy or FailurePolicy.from_env()
        self.stats = FailureStats()
        self._mp_context = mp_context
        self._workers: list[_Worker] = []
        self._versions = _TaskVersionTable()
        self._pool_failures = 0
        self._degraded = False

    # ------------------------------------------------------------------ map

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        if self._degraded:
            return [self._run_serial(fn, item) for item in items]
        version = self._versions.version_for(fn)
        return _MapRun(self, version, fn, items).run()

    def map_batches(self, fn, batches):
        """Map over whole batches, salvaging failed batches item by item.

        A batch is one task on the wire, so a crash/timeout/poison genome
        first quarantines the *batch*.  Each quarantined batch is then
        re-run as singleton batches through the full retry schedule, so a
        single bad item only ever quarantines itself — the same per-item
        contract :meth:`map` gives unbatched callers.
        """
        batches = list(batches)
        outcomes = self.map(fn, batches)
        for index, (batch, outcome) in enumerate(zip(batches, outcomes)):
            if not isinstance(outcome, Quarantined) or len(batch.items) <= 1:
                continue
            singles = [type(batch)([item]) for item in batch.items]
            resolved: list = []
            for single in self.map(fn, singles):
                if isinstance(single, list) and len(single) == 1:
                    resolved.extend(single)
                else:
                    resolved.append(single)
            outcomes[index] = resolved
        return outcomes

    def failure_counters(self) -> dict[str, int]:
        return self.stats.as_dict()

    @property
    def degraded(self) -> bool:
        """Whether the pool has fallen back to in-process serial execution."""
        return self._degraded

    # ------------------------------------------------------- pool plumbing

    def _ensure_workers(self) -> None:
        context = multiprocessing.get_context(self._mp_context)
        while len(self._workers) < self.jobs:
            self._workers.append(_Worker(context))

    def _replace_worker(self, worker: _Worker) -> None:
        """Respawn one lost/hung worker, leaving the survivors warm."""
        worker.kill()
        self.stats.worker_restarts += 1
        self._pool_failures += 1
        index = self._workers.index(worker)
        if self._pool_failures > self.policy.max_pool_failures and self.policy.degrade_to_serial:
            self._degrade()
            return
        context = multiprocessing.get_context(self._mp_context)
        self._workers[index] = _Worker(context)

    def _degrade(self) -> None:
        warnings.warn(
            f"resilient pool lost {self._pool_failures} workers "
            f"(> max_pool_failures={self.policy.max_pool_failures}); "
            f"degrading to in-process serial evaluation",
            RuntimeWarning,
            stacklevel=3,
        )
        self.stats.degraded += 1
        self._degraded = True
        self._stop_workers(graceful=False)

    def _run_serial(self, fn: Callable[[T], R], item: T):
        """Degraded-mode execution: identical to SerialBackend, plus retries.

        No chaos hooks and no task registry — ``fn(item)`` exactly as the
        serial reference executes it, so degraded results stay bit-identical.
        """
        retry = self.policy.retry
        attempts = 0
        while True:
            try:
                return fn(item)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                attempts += 1
                self.stats.failures += 1
                error = f"{type(exc).__name__}: {exc}"
                if attempts >= retry.max_attempts:
                    return self._exhausted(error, attempts)
                self.stats.retries += 1
                time.sleep(retry.delay_for(attempts))

    def _exhausted(self, error: str, attempts: int):
        """Quarantine (or raise for) an item that used up its attempts."""
        if not self.policy.quarantine:
            raise TaskFailedError(f"item failed {attempts} attempt(s): {error}")
        warnings.warn(
            f"quarantined item after {attempts} failed attempt(s): {error}",
            RuntimeWarning,
            stacklevel=4,
        )
        self.stats.quarantined += 1
        return Quarantined(error=error, attempts=attempts)

    def _stop_workers(self, graceful: bool) -> None:
        workers, self._workers = self._workers, []
        for worker in workers:
            if graceful and not worker.busy:
                worker.stop()
            else:
                worker.kill()

    def close(self) -> None:
        self._stop_workers(graceful=True)

    def terminate(self) -> None:
        self._stop_workers(graceful=False)

    def __exit__(self, *exc_info: object) -> None:
        if exc_info and exc_info[0] is not None:
            self.terminate()
        else:
            self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self._stop_workers(graceful=False)
        except Exception:
            pass


class _MapRun:
    """State machine of one resilient ``map`` call.

    Items advance pending -> in-flight -> done (value) | quarantined; every
    failure (error reply, worker death, deadline) re-queues the item with
    backoff until its attempts are exhausted.  Results land by input index,
    so ordering is independent of completion order, worker count and fault
    schedule.
    """

    def __init__(self, backend: ResilientPoolBackend, version: int, fn: Callable, items: list) -> None:
        self.backend = backend
        self.version = version
        self.fn = fn
        self.items = items
        self.results: list = [None] * len(items)
        self.done = [False] * len(items)
        self.attempts = [0] * len(items)
        self.remaining = len(items)
        # Min-heap of (ready_time, seq): backoff schedules re-dispatches.
        self.ready: list[tuple[float, int]] = [(0.0, seq) for seq in range(len(items))]
        heapq.heapify(self.ready)

    # ------------------------------------------------------------ main loop

    def run(self) -> list:
        backend = self.backend
        while self.remaining:
            if backend._degraded:
                self._finish_serial()
                break
            backend._ensure_workers()
            now = time.monotonic()
            self._dispatch_ready(now)
            if backend._degraded:
                continue
            busy = [worker for worker in backend._workers if worker.busy]
            if not busy:
                # Nothing in flight: we are only waiting out a backoff.
                if self.ready:
                    time.sleep(min(_MAX_WAIT_SECONDS, max(0.0, self.ready[0][0] - now)))
                    continue
                raise RuntimeError("resilient map lost track of pending items")  # pragma: no cover
            self._await_events(busy)
        return self.results

    def _dispatch_ready(self, now: float) -> None:
        backend = self.backend
        idle = [worker for worker in backend._workers if not worker.busy]
        while idle and self.ready and self.ready[0][0] <= now:
            _, seq = heapq.heappop(self.ready)
            worker = idle.pop()
            payload = (self.version, self.fn, self.items[seq])
            try:
                worker.dispatch(seq, payload, backend.policy.retry.timeout)
            except (OSError, ValueError, BrokenPipeError):
                # The worker died while idle; the item never started, so
                # re-queue it without charging an attempt.
                heapq.heappush(self.ready, (now, seq))
                backend._replace_worker(worker)
                return

    def _await_events(self, busy: list[_Worker]) -> None:
        timeout = self._wait_timeout(busy)
        handles = [worker.connection for worker in busy] + [worker.process.sentinel for worker in busy]
        signalled = set(mp_connection.wait(handles, timeout))
        now = time.monotonic()
        for worker in busy:
            if self.backend._degraded:
                return
            if worker.connection in signalled:
                self._receive(worker)
            elif worker.process.sentinel in signalled or not worker.process.is_alive():
                self._worker_lost(worker, "worker process died mid-task")
            elif worker.deadline is not None and now >= worker.deadline:
                timeout_s = self.backend.policy.retry.timeout
                self._worker_lost(worker, f"task exceeded its {timeout_s}s deadline")

    def _wait_timeout(self, busy: list[_Worker]) -> float:
        now = time.monotonic()
        candidates = [_MAX_WAIT_SECONDS]
        candidates.extend(worker.deadline - now for worker in busy if worker.deadline is not None)
        if self.ready:
            candidates.append(self.ready[0][0] - now)
        return max(0.0, min(candidates))

    # ------------------------------------------------------- event handling

    def _receive(self, worker: _Worker) -> None:
        try:
            message = worker.connection.recv()
        except (EOFError, OSError):
            self._worker_lost(worker, "worker channel closed mid-task")
            return
        seq, ok, value = message
        worker.settle()
        if self.done[seq]:  # pragma: no cover - duplicate reply safety net
            return
        if ok:
            self._complete(seq, value)
        else:
            self._fail(seq, str(value))

    def _worker_lost(self, worker: _Worker, reason: str) -> None:
        seq = worker.seq
        self.backend._replace_worker(worker)
        if seq is not None and not self.done[seq]:
            self._fail(seq, reason)

    def _complete(self, seq: int, value: object) -> None:
        self.results[seq] = value
        self.done[seq] = True
        self.remaining -= 1

    def _fail(self, seq: int, error: str) -> None:
        backend = self.backend
        retry = backend.policy.retry
        self.attempts[seq] += 1
        backend.stats.failures += 1
        if self.attempts[seq] >= retry.max_attempts:
            try:
                outcome = backend._exhausted(error, self.attempts[seq])
            except TaskFailedError:
                # Aborting the map: no result may leak into a later call, so
                # tear the pool down (it respawns lazily on the next map).
                backend._stop_workers(graceful=False)
                raise
            self._complete(seq, outcome)
            return
        backend.stats.retries += 1
        ready_at = time.monotonic() + retry.delay_for(self.attempts[seq])
        heapq.heappush(self.ready, (ready_at, seq))

    # ----------------------------------------------------------- degraded

    def _finish_serial(self) -> None:
        for seq in range(len(self.items)):
            if not self.done[seq]:
                self._complete(seq, self.backend._run_serial(self.fn, self.items[seq]))
