"""Content-addressed fitness memoization for the GA.

Elites, migrants re-sampling an old genome, and duplicate genomes produced by
crossover are common in the paper's GA; each duplicate used to pay a full
cycle-level simulation.  The cache keys every evaluation by a digest of

* the genome (sorted name/value pairs, exact reprs), and
* an evaluation-context digest supplied by the caller — the machine
  configuration, fault-rate model, simulation budget and seed — so results
  can never leak between different configurations or budgets.

Only deterministic evaluators may be cached (every evaluator in this
repository is: all randomness is derived from seeds carried in the genome or
fixed per run).  Payloads are shallow-copied on both store and hit so callers
can mutate their view without corrupting the cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a fitness cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


def genome_digest(genome: Mapping[str, object], context_digest: str = "") -> str:
    """Stable content digest of a genome under one evaluation context."""
    parts = [context_digest]
    for name in sorted(genome):
        parts.append(f"{name}={genome[name]!r}")
    text = "|".join(parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def evaluation_context_digest(*components: object) -> str:
    """Digest of the evaluation context (config, fault rates, budget, seed)."""
    text = repr(tuple(repr(component) for component in components))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class FitnessCache:
    """Maps genome digests to ``(fitness, payload)`` evaluation results."""

    def __init__(self, context_digest: str = "", max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when given")
        self.context_digest = context_digest
        self.max_entries = max_entries
        self._entries: dict[str, tuple[float, dict]] = {}
        self._hits = 0
        self._misses = 0

    # ---------------------------------------------------------------- keys

    def key_for(self, genome: Mapping[str, object]) -> str:
        return genome_digest(genome, self.context_digest)

    # -------------------------------------------------------------- lookup

    def lookup(self, genome: Mapping[str, object]) -> Optional[tuple[float, dict]]:
        """Cached ``(fitness, payload)`` for a genome, or ``None`` on miss."""
        return self.lookup_key(self.key_for(genome))

    def lookup_key(self, key: str) -> Optional[tuple[float, dict]]:
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        fitness, payload = entry
        return fitness, dict(payload)

    def lookup_many(self, keys: Sequence[str]) -> dict[str, tuple[float, dict]]:
        """Cached entries for several keys at once (hits only).

        Hit/miss counters advance exactly as per-key lookups would, so
        batched callers observe the same statistics.  Persistent subclasses
        override this to resolve all in-memory misses against disk in one
        round-trip instead of one query per genome.
        """
        found: dict[str, tuple[float, dict]] = {}
        for key in keys:
            entry = self.lookup_key(key)
            if entry is not None:
                found[key] = entry
        return found

    def store(self, genome: Mapping[str, object], fitness: float, payload: Optional[dict] = None) -> str:
        key = self.key_for(genome)
        self.store_key(key, fitness, payload)
        return key

    def store_key(self, key: str, fitness: float, payload: Optional[dict] = None) -> None:
        if self.max_entries is not None and key not in self._entries:
            while len(self._entries) >= self.max_entries:
                # FIFO eviction: drop the oldest insertion.
                self._entries.pop(next(iter(self._entries)))
        self._entries[key] = (float(fitness), dict(payload or {}))

    def store_many(self, entries: Mapping[str, tuple[float, Optional[dict]]]) -> None:
        """Store several ``key -> (fitness, payload)`` entries at once.

        Persistent subclasses override this to flush the whole generation to
        disk in a single transaction.
        """
        for key, (fitness, payload) in entries.items():
            self.store_key(key, fitness, payload)

    # ------------------------------------------------------------- utility

    @property
    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries
