"""Parallel + memoized evaluation subsystem.

See PERFORMANCE.md for how the backends, the fitness cache and the
``--jobs`` / ``REPRO_JOBS`` knobs fit together.
"""

from repro.parallel.backends import (
    JOBS_ENV_VAR,
    EvaluationBackend,
    ProcessPoolBackend,
    SerialBackend,
    create_backend,
    resolve_jobs,
)
from repro.parallel.cache import (
    CacheStats,
    FitnessCache,
    evaluation_context_digest,
    genome_digest,
)
from repro.parallel.resilience import (
    FailurePolicy,
    FailureStats,
    Quarantined,
    ResilientPoolBackend,
    RetryPolicy,
    TaskFailedError,
)

__all__ = [
    "JOBS_ENV_VAR",
    "EvaluationBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ResilientPoolBackend",
    "RetryPolicy",
    "FailurePolicy",
    "FailureStats",
    "Quarantined",
    "TaskFailedError",
    "create_backend",
    "resolve_jobs",
    "FitnessCache",
    "CacheStats",
    "genome_digest",
    "evaluation_context_digest",
]
