"""Command-line interface: regenerate the paper's experiments from a shell.

Usage (after ``pip install -e .``)::

    repro list                           # experiments + registered components
    repro table1                         # print Table I
    repro figure4 --scale quick          # stressmark vs MiBench
    repro figure5 --scale default        # GA knobs + convergence
    repro table3                         # worst-case estimation comparison
    repro stressmark --fault-rates rhc   # just generate one stressmark
    repro figure6 --jobs 4               # fan simulations out over 4 workers
    repro run examples/specs/stressmark_rhc.json --jobs 2   # declarative run
    repro sweep examples/specs/sweep_fault_rates.json --out result.json
    repro bench                          # record perf baselines (PERFORMANCE.md)
    repro sweep sweep.json --store results/          # persist + resume runs
    repro sweep sweep.json --store shard1/ --shard 1/3   # one shard of three
    repro merge results/ shard1/ shard2/ shard3/     # join shard stores
    repro fsck results/                              # audit a store directory
    repro fsck results/ --repair                     # also fix salvageable damage
    repro serve --store results/ --jobs 4            # evaluation daemon
    repro run spec.json --remote HOST:9474           # run against a daemon
    repro loadtest --clients 3 --requests 8          # service benchmark
    repro --version                                  # package version

Every experiment routes through the declarative run API
(:mod:`repro.api`): a figure/table command executes its canned
:class:`~repro.api.spec.RunSpec` via a :class:`~repro.api.session.Session`,
and ``repro run`` / ``repro sweep`` execute any spec JSON file — the
``--config`` / ``--fault-rates`` / ``--scale`` choices below are read from
the component registries, so registering a new component automatically
extends the CLI.

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) runs the
independent workload simulations and GA fitness evaluations on N worker
processes; results are identical for any worker count.

``--store DIR`` attaches a persistent result store (see EXPERIMENTS.md):
finished results are served from the store instead of re-simulated — an
interrupted sweep resumes from its last finished run, figure/table commands
replay from a populated store, and ``--resume`` additionally continues an
interrupted GA search from its per-generation checkpoint.

``--retries N`` / ``--task-timeout S`` tune the fault-tolerant evaluation
backend used for ``--jobs > 1``: each simulation/GA evaluation gets up to N
attempts (with capped exponential backoff) and S seconds per attempt before
its worker is declared hung and replaced.  Defaults come from the
``REPRO_RETRY_*`` environment, then the library (3 attempts, no deadline).

``repro serve`` starts the evaluation daemon (one warm shared fabric, many
clients — see EXPERIMENTS.md, "Evaluation service"); ``repro run SPEC
--remote HOST:PORT`` executes a spec against it with byte-identical results;
``repro loadtest`` benchmarks a daemon and records ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Iterable

from repro.api import (
    CONFIGS,
    FAULT_RATES,
    KERNEL_BACKENDS,
    SCALES,
    RunSpec,
    Session,
    SpecError,
    registries,
)
from repro.api.registry import RegistryError
from repro.store import CheckpointError, StoreError
from repro.avf.analysis import StructureGroup, instantaneous_worst_case_bound
from repro.experiments.figures import figure3, figure4, figure5, figure6, figure7, figure8, figure9
from repro.experiments.tables import table1, table2, table3


def _print_rows(title: str, rows: Iterable[dict]) -> None:
    rows = list(rows)
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    print("  ".join(f"{key:>16s}" for key in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            cells.append(f"{value:>16.4f}" if isinstance(value, float) else f"{str(value):>16s}")
        print("  ".join(cells))


def _cmd_table1(session: Session, args: argparse.Namespace) -> None:
    _print_rows("Table I: baseline configuration",
                [{"parameter": k, "value": v} for k, v in table1().items()])


def _cmd_table2(session: Session, args: argparse.Namespace) -> None:
    _print_rows("Table II: Configuration A",
                [{"parameter": k, "value": v} for k, v in table2().items()])


def _cmd_table3(session: Session, args: argparse.Namespace) -> None:
    result = table3(session=session)
    _print_rows(
        "Table III: worst-case core SER estimation (units/bit)",
        [
            {
                "configuration": row.configuration,
                "stressmark": row.stressmark_ser,
                "best_program": row.best_program_name,
                "best_program_ser": row.best_program_ser,
                "sum_highest": row.sum_of_highest_per_structure_ser,
                "raw_circuit": row.raw_circuit_ser,
            }
            for row in result.rows.values()
        ],
    )


def _cmd_comparison_figure(figure_fn: Callable, title: str):
    def command(session: Session, args: argparse.Namespace) -> None:
        result = figure_fn(session=session)
        _print_rows(title, [row.as_dict() for row in result.rows])
        for group in (StructureGroup.QS, StructureGroup.QS_RF, StructureGroup.DL1_DTLB, StructureGroup.L2):
            print(f"margin over best workload [{group.value}]: {result.stressmark_margin(group):.2f}x")
    return command


def _cmd_figure5(session: Session, args: argparse.Namespace) -> None:
    result = figure5(session=session)
    _print_rows("Figure 5a: knob settings",
                [{"knob": k, "value": v} for k, v in result.knob_table.items()])
    _print_rows(
        "Figure 5b: fitness per generation",
        [
            {"generation": i, "average": avg, "best": best}
            for i, (avg, best) in enumerate(
                zip(result.average_fitness_per_generation, result.best_fitness_per_generation)
            )
        ],
    )


def _cmd_figure6(session: Session, args: argparse.Namespace) -> None:
    results = figure6(session=session)
    for suite, suite_result in results.items():
        _print_rows(
            f"Figure 6: per-structure AVF ({suite.value})",
            [
                {"program": name, **{s.value: value for s, value in row.items()}}
                for name, row in suite_result.rows.items()
            ],
        )


def _cmd_figure7(session: Session, args: argparse.Namespace) -> None:
    results = figure7(session=session)
    for label, comparison in results.items():
        _print_rows(f"Figure 7 ({label.upper()}): SER", [row.as_dict() for row in comparison.rows])


def _cmd_figure8(session: Session, args: argparse.Namespace) -> None:
    result = figure8(session=session)
    _print_rows("Figure 8a: fault rates",
                [{"scenario": s, **rates} for s, rates in result.fault_rate_table.items()])
    _print_rows("Figure 8b: stressmark queueing AVF",
                [{"scenario": s, **{k.value: v for k, v in avf.items()}}
                 for s, avf in result.queueing_avf.items()])
    for scenario, knobs in result.knob_tables.items():
        _print_rows(f"Knob settings ({scenario})", [{"knob": k, "value": v} for k, v in knobs.items()])


def _cmd_figure9(session: Session, args: argparse.Namespace) -> None:
    result = figure9(session=session)
    _print_rows(
        "Figure 9a: stressmark SER per group",
        [{"config": name, **{g.value: v for g, v in groups.items()}}
         for name, groups in result.group_ser.items()],
    )
    for name, knobs in result.knob_tables.items():
        _print_rows(f"Figure 9b: knobs ({name})", [{"knob": k, "value": v} for k, v in knobs.items()])


def _cmd_bound(session: Session, args: argparse.Namespace) -> None:
    _print_rows(
        "Instantaneous worst-case queue SER bound (Section VI)",
        [
            {"config": name, "bound": instantaneous_worst_case_bound(CONFIGS.create(name))}
            for name in CONFIGS.names()
        ],
    )


def _cmd_bench(session: Session, args: argparse.Namespace) -> None:
    from repro.experiments.bench import run_benchmarks

    metrics = run_benchmarks(jobs=args.jobs)
    pipeline = metrics["pipeline"]
    ledger = metrics["ledger"]
    ga = metrics["ga"]
    parallel = metrics["parallel"]
    kernel_batch = metrics["kernel_batch"]
    _print_rows(
        "Benchmark: single detailed simulation (BENCH_pipeline.json)",
        [{
            "instructions": pipeline["instructions"],
            "seconds": pipeline["seconds"],
            "insn_per_sec": pipeline["instructions_per_second"],
            "ipc": pipeline["ipc"],
            "kernel": str(pipeline["kernel"]),
            "kernel_speedup": pipeline["kernel_speedup"],
            "identical": str(pipeline["kernel_identical"]),
        }],
    )
    _print_rows(
        "Benchmark: vulnerability-ledger events (BENCH_pipeline.json)",
        [{
            "events": ledger["events"],
            "seconds": ledger["seconds"],
            "events_per_sec": ledger["events_per_second"],
            "credit_seconds": ledger["credit_seconds"],
        }],
    )
    _print_rows(
        "Benchmark: GA generation + parallel speedup (BENCH_ga.json)",
        [{
            "ga_seconds": ga["seconds"],
            "evaluations": ga["evaluations"],
            "cache_hits": ga["cache_hits"],
            "par_jobs": parallel["jobs"],
            "cores": parallel["cores"],
            "warmup_s": parallel["warmup_seconds"],
            "steady_s": parallel["steady_seconds"],
            "steady_speedup": parallel["speedup"],
            "deterministic": str(parallel["deterministic"]),
        }],
    )
    _print_rows(
        "Benchmark: batch kernel plane vs per-genome kernels (BENCH_ga.json)",
        [{
            "batch": kernel_batch["batch"],
            "batch_ms_per_genome": kernel_batch["batch_ms_per_genome"],
            "source_ms_per_genome": kernel_batch["source_ms_per_genome"],
            "batch_speedup": kernel_batch["speedup"],
            "deterministic": str(kernel_batch["deterministic"]),
        }],
    )
    kernel_vector = metrics["kernel_vector"]
    if kernel_vector.get("available"):
        _print_rows(
            "Benchmark: vector kernel plane vs batch plane (BENCH_ga.json)",
            [{
                "batch": kernel_vector["batch"],
                "vector_ms_per_genome": kernel_vector["vector_ms_per_genome"],
                "batch_ms_per_genome": kernel_vector["batch_ms_per_genome"],
                "vector_speedup": kernel_vector["speedup"],
                "deterministic": str(kernel_vector["deterministic"]),
            }],
        )
    else:
        print("\n=== Benchmark: vector kernel plane — skipped (numpy not "
              "installed; pip install repro-avf-stressmark[vector]) ===")


def _cmd_stressmark(session: Session, args: argparse.Namespace) -> None:
    spec = RunSpec(kind="stressmark", config=args.config, fault_rates=args.fault_rates)
    result = session.stressmark_result(spec)
    _print_rows("Stressmark knob settings", [{"knob": k, "value": v} for k, v in result.knob_table().items()])
    _print_rows(
        "Stressmark SER (units/bit)",
        [{"group": group.value, "ser": result.report.ser(group)} for group in StructureGroup],
    )


COMMANDS: dict[str, Callable[[Session, argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure3": _cmd_comparison_figure(figure3, "Figure 3: stressmark vs SPEC CPU2006"),
    "figure4": _cmd_comparison_figure(figure4, "Figure 4: stressmark vs MiBench"),
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "figure9": _cmd_figure9,
    "bound": _cmd_bound,
    "stressmark": _cmd_stressmark,
    "bench": _cmd_bench,
}

#: Spec-file commands handled outside the legacy experiment table.
SPEC_COMMANDS = ("run", "sweep")


def build_parser() -> argparse.ArgumentParser:
    from repro import package_version
    from repro.serve.server import DEFAULT_PORT, DEFAULT_QUEUE_LIMIT

    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    parser.add_argument("experiment",
                        choices=sorted(COMMANDS) + ["list", "run", "sweep", "merge", "fsck",
                                                    "serve", "loadtest"],
                        help="experiment to regenerate, 'list', 'run'/'sweep' a spec "
                             "file, 'merge' shard stores, 'fsck' a store directory, "
                             "'serve' the evaluation daemon, or 'loadtest' a daemon")
    parser.add_argument("spec", nargs="?", default=None, metavar="SPEC.json",
                        help="RunSpec JSON file (run/sweep), or the destination "
                             "store (merge), or the store to audit (fsck)")
    parser.add_argument("extra", nargs="*", default=[], metavar="STORE",
                        help="source stores to join (merge command only)")
    parser.add_argument("--scale", choices=SCALES.names(), default="quick",
                        help="simulation / GA effort (see EXPERIMENTS.md); "
                             "for run/sweep the spec's scale wins")
    parser.add_argument("--config", choices=CONFIGS.names(), default="baseline",
                        help="machine configuration (stressmark command only)")
    parser.add_argument("--fault-rates", choices=FAULT_RATES.names(), default="unit",
                        help="circuit-level fault-rate model (stressmark command only)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for simulations/GA evaluations "
                             "(default: $REPRO_JOBS, then 1; results are "
                             "identical for any worker count)")
    parser.add_argument("--out", default=None, metavar="RESULT.json",
                        help="write the RunResult JSON here (run/sweep commands only)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="persistent result store: completed results are served "
                             "from here instead of re-simulated, fresh results are "
                             "recorded (see EXPERIMENTS.md)")
    parser.add_argument("--resume", action="store_true",
                        help="resume interrupted GA searches from their per-generation "
                             "checkpoints in --store (bit-identical to an "
                             "uninterrupted run)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="run only the I-th of N round-robin shards of a sweep "
                             "(1-based; sweep command only, requires --store)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="attempts per simulation/GA evaluation before the item "
                             "is quarantined (resilient backend, --jobs > 1; "
                             "default: $REPRO_RETRY_MAX_ATTEMPTS, then 3)")
    parser.add_argument("--task-timeout", type=float, default=None, metavar="SECONDS",
                        help="per-attempt deadline before a worker is declared hung "
                             "and replaced (resilient backend, --jobs > 1; "
                             "default: $REPRO_RETRY_TIMEOUT, then unlimited)")
    parser.add_argument("--kernel-backend", choices=KERNEL_BACKENDS.names(), default=None,
                        help="how simulations execute: 'batch' (population-at-once "
                             "compiled kernels, the default), 'source' (per-program "
                             "kernels) or 'interpreted' (reference loop); all are "
                             "bit-identical (default: $REPRO_KERNEL_BACKEND, then batch)")
    parser.add_argument("--repair", action="store_true",
                        help="fsck command only: repair salvageable damage in place "
                             "(truncate torn JSONL tails, drop unloadable checkpoints, "
                             "remove temp-file debris)")
    parser.add_argument("--remote", default=None, metavar="HOST:PORT[,HOST:PORT...]",
                        help="run/loadtest: execute against a live 'repro serve' "
                             "daemon instead of this process (results are "
                             "byte-identical to a local run); a comma-separated "
                             "list enables client-side failover in endpoint order")
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                        help="serve command only: interface to listen on "
                             "(default: 127.0.0.1; never expose the daemon to "
                             "untrusted networks)")
    parser.add_argument("--port", type=int, default=None, metavar="N",
                        help=f"serve command only: TCP port (default: {DEFAULT_PORT}; "
                             f"0 picks an ephemeral port, printed at startup)")
    parser.add_argument("--queue-limit", type=int, default=None, metavar="N",
                        help=f"serve command only: bound on queued jobs before "
                             f"submits are rejected with retry_after "
                             f"(default: {DEFAULT_QUEUE_LIMIT})")
    parser.add_argument("--job-timeout", type=float, default=None, metavar="SECONDS",
                        help="serve command only: watchdog deadline per evaluation; "
                             "a job exceeding it is quarantined and its eval thread "
                             "abandoned (a spec's task_timeout wins; default: 3600)")
    parser.add_argument("--drain", action="store_true",
                        help="serve command only: on SIGTERM/SIGINT persist the "
                             "queued jobs to the job journal (next daemon on the "
                             "same --store replays them) instead of cancelling")
    parser.add_argument("--clients", type=int, default=3, metavar="N",
                        help="loadtest command only: concurrent synthetic clients "
                             "(default: 3)")
    parser.add_argument("--requests", type=int, default=8, metavar="M",
                        help="loadtest command only: requests per client, mixed "
                             "duplicate/unique specs (default: 8)")
    return parser


def _cmd_list() -> None:
    print("available experiments:")
    for name in sorted(COMMANDS):
        print(f"  {name}")
    for name in SPEC_COMMANDS:
        print(f"  {name} <spec.json>")
    print("  merge <dest-store> <src-store>...")
    print("  fsck <store> [--repair]")
    print("  serve [--host --port --store --jobs --queue-limit --job-timeout --drain]")
    print("  loadtest [--remote HOST:PORT --clients N --requests M]")
    print("\nregistered components (usable in RunSpec files):")
    labels = {
        "config": "machine configs",
        "fault_rates": "fault-rate models",
        "suite": "workload suites",
        "fitness": "fitness objectives",
        "scale": "experiment scales",
        "backend": "evaluation backends",
        "kernel_backends": "kernel backends",
        "structures": "tracked structures",
    }
    from repro.uarch.kernel_backends import unavailable_reason

    for key, registry in registries().items():
        names = registry.names()
        if key == "kernel_backends":
            # Backends stay registered even when a runtime dependency is
            # missing (specs naming them validate uniformly); the listing
            # says so instead of hiding the entry.
            names = [
                f"{name} (unavailable: {reason})"
                if (reason := unavailable_reason(name)) is not None
                else name
                for name in names
            ]
        print(f"  {labels.get(key, key):<20s} {', '.join(names)}")
    _print_structures()


def _print_structures() -> None:
    """The STRUCTURES registry rendered with geometry and gating details."""
    from repro.uarch.config import baseline_config, extended_config
    from repro.vuln import STRUCTURES

    baseline = baseline_config()
    extended = extended_config()
    print("\ntracked vulnerable structures (STRUCTURES registry; geometry for "
          "the baseline, flag-gated entries from the 'extended' config):")
    header = f"  {'name':<10s} {'group':<10s} {'kind':<8s} {'entries':>8s} {'bits':>6s}  {'fault-rate key':<15s} gate"
    print(header)
    for name, descriptor in STRUCTURES.items():
        gate = descriptor.config_flag or "-"
        try:
            if descriptor.enabled(baseline):
                config = baseline
            else:
                config = extended
                gate += " (off at baseline)"
            entries = f"{descriptor.entries(config):>8d}"
            bits = f"{descriptor.bits_per_entry(config):>6d}"
        except AttributeError:
            # Plugin structures may key their geometry off config fields the
            # stock configs do not carry; the listing must not crash on them.
            entries, bits = f"{'?':>8s}", f"{'?':>6s}"
            gate += " (custom config)"
        print(
            f"  {name:<10s} {descriptor.group:<10s} {descriptor.kind:<8s} "
            f"{entries} {bits}  {descriptor.fault_rate_key:<15s} {gate}"
        )


def _print_result_rows(result) -> None:
    """Print a RunResult's rows (leaf results of a sweep individually)."""
    if result.children:
        for child in result.children:
            _print_result_rows(child)
        return
    _print_rows(f"{result.kind}: {result.spec.label}", result.rows)
    if result.knobs:
        _print_rows(f"knob settings: {result.spec.label}",
                    [{"knob": k, "value": v} for k, v in result.knobs.items()])


def _retry_from_args(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """A pinned RetryPolicy from --retries/--task-timeout, or None."""
    if args.retries is None and args.task_timeout is None:
        return None
    from repro.parallel.resilience import RetryPolicy

    overrides: dict[str, object] = {}
    if args.retries is not None:
        overrides["max_attempts"] = args.retries
    if args.task_timeout is not None:
        overrides["timeout"] = args.task_timeout
    try:
        return RetryPolicy.from_env().derive(**overrides)
    except ValueError as exc:
        parser.error(str(exc))


def _parse_shard(parser: argparse.ArgumentParser, value: str) -> tuple[int, int]:
    try:
        index_text, count_text = value.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        parser.error(f"--shard expects I/N (e.g. 1/3), got {value!r}")
    if count < 1 or not 1 <= index <= count:
        parser.error(f"--shard must satisfy 1 <= I <= N, got {value!r}")
    return index, count


def _cmd_run_spec(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if not args.spec:
        parser.error(f"'{args.experiment}' needs a spec file: repro {args.experiment} <spec.json>")
    if args.extra:
        parser.error(f"unexpected arguments: {' '.join(args.extra)}")
    try:
        spec = RunSpec.load(args.spec)
    except (SpecError, RegistryError) as exc:
        parser.error(str(exc))
    if args.experiment == "sweep" and spec.kind != "sweep":
        parser.error(f"'repro sweep' expects a sweep spec, {args.spec} has kind={spec.kind!r} "
                     f"(use 'repro run' for single runs)")
    if args.remote is not None:
        return _run_remote(parser, args, spec)
    shard = None
    if args.shard is not None:
        if args.experiment != "sweep":
            parser.error("--shard only applies to 'repro sweep'")
        if not args.store:
            parser.error("--shard needs --store so other shards can merge the results")
        shard = _parse_shard(parser, args.shard)
    if args.resume and not args.store:
        parser.error("--resume needs --store (checkpoints live in the store)")
    try:
        with Session(jobs=args.jobs, store=args.store, resume=args.resume,
                     retry=_retry_from_args(parser, args),
                     kernel_backend=args.kernel_backend) as session:
            if shard is not None:
                result = session.run_shard(spec, *shard)
            else:
                result = session.run(spec)
    except (ValueError, RegistryError, StoreError, CheckpointError) as exc:
        # ValueError also covers structurally-valid specs whose values are
        # rejected deeper down (e.g. a GA population too small to search).
        parser.error(str(exc))
    _print_result_rows(result)
    print(f"\nspec digest: {result.spec_digest}")
    if shard is not None:
        print(f"shard: {shard[0]}/{shard[1]} "
              f"({result.provenance.get('runs', 0)} of {result.provenance.get('total_runs', 0)} runs)")
    print(f"elapsed: {result.timing.get('seconds', 0.0):.2f}s")
    if args.store:
        print(f"results stored in {args.store}")
    if args.out:
        result.save(args.out)
        print(f"result written to {args.out}")
    return 0


def _run_remote(parser: argparse.ArgumentParser, args: argparse.Namespace, spec: RunSpec) -> int:
    """Execute a spec against a live daemon (``repro run SPEC --remote``)."""
    for flag in ("store", "shard", "resume"):
        if getattr(args, flag):
            parser.error(f"--{flag} is handled by the daemon; it cannot be combined "
                         f"with --remote (start 'repro serve --store ...' instead)")
    from repro.serve.client import RemoteError, ServeClient
    from repro.serve.protocol import ProtocolError

    try:
        with ServeClient(args.remote) as client:
            info = client.ping()
            result = client.run(spec)
    except (OSError, ProtocolError, RemoteError, ValueError) as exc:
        parser.error(f"remote run against {args.remote} failed: {exc}")
    _print_result_rows(result)
    print(f"\nspec digest: {result.spec_digest}")
    print(f"served by {args.remote} (repro {info.get('server_version')}, "
          f"protocol v{info.get('protocol_version')})")
    if args.out:
        result.save(args.out)
        print(f"result written to {args.out}")
    return 0


def _cmd_serve(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Run the evaluation daemon until interrupted or told to shut down."""
    if args.spec or args.extra:
        parser.error("'serve' takes no positional arguments")
    import signal

    from repro.serve.server import DEFAULT_PORT, DEFAULT_QUEUE_LIMIT, serve

    from repro.serve.server import DEFAULT_JOB_TIMEOUT, EXIT_WATCHDOG

    try:
        server = serve(
            host=args.host,
            port=args.port if args.port is not None else DEFAULT_PORT,
            store=args.store,
            jobs=args.jobs,
            queue_limit=args.queue_limit if args.queue_limit is not None else DEFAULT_QUEUE_LIMIT,
            retry=_retry_from_args(parser, args),
            job_timeout=args.job_timeout if args.job_timeout is not None else DEFAULT_JOB_TIMEOUT,
            drain_on_stop=args.drain,
        )
    except (OSError, ValueError, StoreError) as exc:
        parser.error(f"cannot start the daemon: {exc}")
    # SIGINT and SIGTERM take the same path: drain (persist the queue to the
    # journal) when --drain was given, cancel the queue otherwise.
    signal.signal(signal.SIGTERM, lambda *_: server.stop())
    signal.signal(signal.SIGINT, lambda *_: server.stop())
    # Start (journal replay included) before reporting, so restored_jobs is
    # populated; serve_forever's own start() is an idempotent no-op then.
    server.start()
    # The "listening on" line is the startup handshake load/smoke harnesses
    # parse for the ephemeral port — keep its shape stable.
    print(f"repro serve: listening on {server.host}:{server.port} "
          f"(pid {os.getpid()}, jobs={args.jobs or 'spec'}, "
          f"store={args.store or 'none'}, "
          f"drain={'on' if args.drain else 'off'})", flush=True)
    if server.restored_jobs:
        print(f"repro serve: replayed {server.restored_jobs} journaled job(s) "
              f"from {args.store}", flush=True)
    code = server.serve_forever()
    if code == EXIT_WATCHDOG:
        print("repro serve: stopped (watchdog abandoned at least one hung "
              "evaluation; exit code 3)", flush=True)
    else:
        print("repro serve: stopped", flush=True)
    return code


def _cmd_loadtest(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Benchmark a daemon (spawning one unless --remote targets a live one)."""
    if args.spec or args.extra:
        parser.error("'loadtest' takes no positional arguments")
    from repro.serve.loadtest import SERVE_BENCH_FILE, run_loadtest

    try:
        run_loadtest(
            endpoint=args.remote,
            clients=args.clients,
            requests=args.requests,
            store=args.store,
            jobs=args.jobs,
            out=args.out or SERVE_BENCH_FILE,
        )
    except (OSError, RuntimeError, ValueError) as exc:
        parser.error(f"loadtest failed: {exc}")
    return 0


def _cmd_merge(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    destination = args.spec or args.store
    if not destination:
        parser.error("'merge' needs a destination: repro merge <dest-store> <src-store>...")
    if not args.extra:
        parser.error("'merge' needs at least one source store: "
                     "repro merge <dest-store> <src-store>...")
    from repro.store import merge_stores

    try:
        store, added = merge_stores(destination, args.extra)
    except StoreError as exc:
        parser.error(str(exc))
    print(f"merged {len(args.extra)} store(s) into {destination}: "
          f"{added} result(s) added, {len(store)} total")
    store.close()
    return 0


def _cmd_fsck(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if not args.spec:
        parser.error("'fsck' needs a store directory: repro fsck <store> [--repair]")
    if args.extra:
        parser.error(f"unexpected arguments: {' '.join(args.extra)}")
    from repro.store import fsck_store

    report = fsck_store(args.spec, repair=args.repair)
    for finding in report.findings:
        print(finding.describe())
    print(report.summary())
    unrepaired = [f for f in report.findings if not f.repaired]
    if unrepaired and not args.repair and all(f.repairable for f in unrepaired):
        print("hint: rerun with --repair to fix the salvageable problems above")
    return 0 if not unrepaired else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        _cmd_list()
        return 0
    if args.experiment == "merge":
        return _cmd_merge(parser, args)
    if args.experiment == "fsck":
        return _cmd_fsck(parser, args)
    if args.experiment == "serve":
        return _cmd_serve(parser, args)
    if args.experiment == "loadtest":
        return _cmd_loadtest(parser, args)
    if args.experiment in SPEC_COMMANDS:
        return _cmd_run_spec(parser, args)
    if args.spec or args.extra:
        stray = " ".join([args.spec, *args.extra]) if args.spec else " ".join(args.extra)
        parser.error(f"'{args.experiment}' takes no positional arguments (got: {stray})")
    if args.shard is not None:
        parser.error("--shard only applies to 'repro sweep'")
    if args.resume and not args.store:
        parser.error("--resume needs --store (checkpoints live in the store)")
    try:
        session = Session(scale=args.scale, jobs=args.jobs, store=args.store, resume=args.resume,
                          retry=_retry_from_args(parser, args),
                          kernel_backend=args.kernel_backend)
    except (ValueError, RegistryError, StoreError) as exc:
        parser.error(str(exc))
    try:
        COMMANDS[args.experiment](session, args)
    finally:
        session.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
