"""Command-line interface: regenerate the paper's experiments from a shell.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro list                      # list available experiments
    python -m repro table1                    # print Table I
    python -m repro figure4 --scale quick     # stressmark vs MiBench
    python -m repro figure5 --scale default   # GA knobs + convergence
    python -m repro table3                    # worst-case estimation comparison
    python -m repro stressmark --fault-rates rhc   # just generate one stressmark
    python -m repro figure6 --jobs 4          # fan simulations out over 4 workers
    python -m repro bench                     # record perf baselines (PERFORMANCE.md)

Every experiment prints the same rows/series the corresponding benchmark
prints; the CLI exists so results can be regenerated without pytest.

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) runs the
independent workload simulations and GA fitness evaluations on N worker
processes; results are identical for any worker count.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Iterable

from repro.avf.analysis import StructureGroup, instantaneous_worst_case_bound
from repro.experiments.figures import figure3, figure4, figure5, figure6, figure7, figure8, figure9
from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.experiments.tables import table1, table2, table3
from repro.uarch.config import baseline_config, config_a
from repro.uarch.faultrates import edr_fault_rates, rhc_fault_rates, unit_fault_rates


def _print_rows(title: str, rows: Iterable[dict]) -> None:
    rows = list(rows)
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    print("  ".join(f"{key:>16s}" for key in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            cells.append(f"{value:>16.4f}" if isinstance(value, float) else f"{str(value):>16s}")
        print("  ".join(cells))


def _scale(name: str) -> ExperimentScale:
    if name == "default":
        return ExperimentScale.default()
    if name == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.quick()


def _fault_rates(name: str):
    return {"unit": unit_fault_rates, "rhc": rhc_fault_rates, "edr": edr_fault_rates}[name]()


def _cmd_table1(context: ExperimentContext, args: argparse.Namespace) -> None:
    _print_rows("Table I: baseline configuration",
                [{"parameter": k, "value": v} for k, v in table1().items()])


def _cmd_table2(context: ExperimentContext, args: argparse.Namespace) -> None:
    _print_rows("Table II: Configuration A",
                [{"parameter": k, "value": v} for k, v in table2().items()])


def _cmd_table3(context: ExperimentContext, args: argparse.Namespace) -> None:
    result = table3(context)
    _print_rows(
        "Table III: worst-case core SER estimation (units/bit)",
        [
            {
                "configuration": row.configuration,
                "stressmark": row.stressmark_ser,
                "best_program": row.best_program_name,
                "best_program_ser": row.best_program_ser,
                "sum_highest": row.sum_of_highest_per_structure_ser,
                "raw_circuit": row.raw_circuit_ser,
            }
            for row in result.rows.values()
        ],
    )


def _cmd_comparison_figure(figure_fn: Callable, title: str):
    def command(context: ExperimentContext, args: argparse.Namespace) -> None:
        result = figure_fn(context)
        _print_rows(title, [row.as_dict() for row in result.rows])
        for group in (StructureGroup.QS, StructureGroup.QS_RF, StructureGroup.DL1_DTLB, StructureGroup.L2):
            print(f"margin over best workload [{group.value}]: {result.stressmark_margin(group):.2f}x")
    return command


def _cmd_figure5(context: ExperimentContext, args: argparse.Namespace) -> None:
    result = figure5(context)
    _print_rows("Figure 5a: knob settings",
                [{"knob": k, "value": v} for k, v in result.knob_table.items()])
    _print_rows(
        "Figure 5b: fitness per generation",
        [
            {"generation": i, "average": avg, "best": best}
            for i, (avg, best) in enumerate(
                zip(result.average_fitness_per_generation, result.best_fitness_per_generation)
            )
        ],
    )


def _cmd_figure6(context: ExperimentContext, args: argparse.Namespace) -> None:
    results = figure6(context)
    for suite, suite_result in results.items():
        _print_rows(
            f"Figure 6: per-structure AVF ({suite.value})",
            [
                {"program": name, **{s.value: value for s, value in row.items()}}
                for name, row in suite_result.rows.items()
            ],
        )


def _cmd_figure7(context: ExperimentContext, args: argparse.Namespace) -> None:
    results = figure7(context)
    for label, comparison in results.items():
        _print_rows(f"Figure 7 ({label.upper()}): SER", [row.as_dict() for row in comparison.rows])


def _cmd_figure8(context: ExperimentContext, args: argparse.Namespace) -> None:
    result = figure8(context)
    _print_rows("Figure 8a: fault rates",
                [{"scenario": s, **rates} for s, rates in result.fault_rate_table.items()])
    _print_rows("Figure 8b: stressmark queueing AVF",
                [{"scenario": s, **{k.value: v for k, v in avf.items()}}
                 for s, avf in result.queueing_avf.items()])
    for scenario, knobs in result.knob_tables.items():
        _print_rows(f"Knob settings ({scenario})", [{"knob": k, "value": v} for k, v in knobs.items()])


def _cmd_figure9(context: ExperimentContext, args: argparse.Namespace) -> None:
    result = figure9(context)
    _print_rows(
        "Figure 9a: stressmark SER per group",
        [{"config": name, **{g.value: v for g, v in groups.items()}}
         for name, groups in result.group_ser.items()],
    )
    for name, knobs in result.knob_tables.items():
        _print_rows(f"Figure 9b: knobs ({name})", [{"knob": k, "value": v} for k, v in knobs.items()])


def _cmd_bound(context: ExperimentContext, args: argparse.Namespace) -> None:
    _print_rows(
        "Instantaneous worst-case queue SER bound (Section VI)",
        [
            {"config": "baseline", "bound": instantaneous_worst_case_bound(baseline_config())},
            {"config": "config_a", "bound": instantaneous_worst_case_bound(config_a())},
        ],
    )


def _cmd_bench(context: ExperimentContext, args: argparse.Namespace) -> None:
    from repro.experiments.bench import run_benchmarks

    metrics = run_benchmarks(jobs=args.jobs)
    pipeline = metrics["pipeline"]
    ga = metrics["ga"]
    parallel = metrics["parallel"]
    _print_rows(
        "Benchmark: single detailed simulation (BENCH_pipeline.json)",
        [{
            "instructions": pipeline["instructions"],
            "seconds": pipeline["seconds"],
            "insn_per_sec": pipeline["instructions_per_second"],
            "ipc": pipeline["ipc"],
        }],
    )
    _print_rows(
        "Benchmark: GA generation + parallel speedup (BENCH_ga.json)",
        [{
            "ga_seconds": ga["seconds"],
            "evaluations": ga["evaluations"],
            "cache_hits": ga["cache_hits"],
            "par_jobs": parallel["jobs"],
            "par_speedup": parallel["speedup"],
            "deterministic": str(parallel["deterministic"]),
        }],
    )


def _cmd_stressmark(context: ExperimentContext, args: argparse.Namespace) -> None:
    config = config_a() if args.config == "config_a" else baseline_config()
    fault_rates = _fault_rates(args.fault_rates)
    result = context.stressmark(config, fault_rates)
    _print_rows("Stressmark knob settings", [{"knob": k, "value": v} for k, v in result.knob_table().items()])
    _print_rows(
        "Stressmark SER (units/bit)",
        [{"group": group.value, "ser": result.report.ser(group)} for group in StructureGroup],
    )


COMMANDS: dict[str, Callable[[ExperimentContext, argparse.Namespace], None]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "figure3": _cmd_comparison_figure(figure3, "Figure 3: stressmark vs SPEC CPU2006"),
    "figure4": _cmd_comparison_figure(figure4, "Figure 4: stressmark vs MiBench"),
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "figure9": _cmd_figure9,
    "bound": _cmd_bound,
    "stressmark": _cmd_stressmark,
    "bench": _cmd_bench,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("experiment", choices=sorted(COMMANDS) + ["list"],
                        help="experiment to regenerate (or 'list')")
    parser.add_argument("--scale", choices=["quick", "default", "paper"], default="quick",
                        help="simulation / GA effort (see EXPERIMENTS.md)")
    parser.add_argument("--config", choices=["baseline", "config_a"], default="baseline",
                        help="machine configuration (stressmark command only)")
    parser.add_argument("--fault-rates", choices=["unit", "rhc", "edr"], default="unit",
                        help="circuit-level fault-rate model (stressmark command only)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for simulations/GA evaluations "
                             "(default: $REPRO_JOBS, then 1; results are "
                             "identical for any worker count)")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(COMMANDS):
            print(f"  {name}")
        return 0
    try:
        context = ExperimentContext(_scale(args.scale), jobs=args.jobs)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        COMMANDS[args.experiment](context, args)
    finally:
        context.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
