"""Declarative run API quickstart: build a spec, run it, round-trip the result.

Usage::

    PYTHONPATH=src python examples/run_spec.py [spec.json]

Without an argument this builds a small fault-rate sweep in code; with one
it loads the given spec file (see ``examples/specs/`` for the three kinds).
Either way the result is executed through a :class:`repro.api.Session`,
saved as JSON, reloaded, and verified against the spec's content digest —
the workflow a service front-end or batch runner would use.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.api import RunResult, RunSpec, Session


def default_spec() -> RunSpec:
    """A small sweep: the RHC/EDR stressmarks at a reduced quick scale."""
    return RunSpec(
        kind="sweep",
        name="example_sweep",
        base=RunSpec(
            kind="stressmark",
            name="example_sweep/stressmark",
            scale="quick",
            scale_overrides={"ga_population": 4, "ga_generations": 3},
        ),
        axes={"fault_rates": ("rhc", "edr")},
    )


def main(argv: list[str]) -> int:
    spec = RunSpec.load(argv[0]) if argv else default_spec().validate()
    print(f"spec: {spec.label} (kind={spec.kind}, digest={spec.digest[:12]}...)")

    with Session(jobs=2) as session:
        result = session.run(spec)

    for leaf in result.children or [result]:
        print(f"\n{leaf.spec.label}:")
        for row in leaf.rows:
            core = row.get("ser_core", row.get("ser_qs", "?"))
            print(f"  {row['program']:>24s}  config={row['config']}  "
                  f"fault_rates={row['fault_rates']}  core SER={core}")
        if leaf.knobs:
            print(f"  loop size {leaf.knobs['Loop Size']}, "
                  f"{leaf.ga['evaluations']} GA evaluations")

    out = Path("example_run_result.json")
    result.save(out)
    reloaded = RunResult.load(out)
    assert reloaded.spec_digest == spec.digest, "round-trip digest mismatch"
    print(f"\nresult written to {out} (digest verified, "
          f"{result.timing['seconds']:.2f}s elapsed)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
