"""Persistent result store walkthrough: shard, interrupt, merge, replay.

Usage::

    PYTHONPATH=src python examples/resumable_sweep.py [store-dir]

Demonstrates the PR-3 persistence workflow end to end, entirely through the
public API (the CLI equivalents are shown as comments):

1. run one shard of a sweep into its own store,
2. "interrupt" the other shard after a single child,
3. resume it — completed children are served from the store,
4. merge the shard stores and assemble the full sweep without simulating,
5. verify the assembled rows are byte-identical to a fresh storeless run.
"""

from __future__ import annotations

import json
import shutil
import sys
import time
from pathlib import Path

from repro.api import RunSpec, Session
from repro.store import merge_stores


def sweep_spec() -> RunSpec:
    """A small fault-rate sweep over the MiBench-proxy workloads."""
    return RunSpec(
        kind="sweep",
        name="resumable_example",
        base=RunSpec(
            kind="simulate",
            name="resumable_example/workloads",
            suites=("mibench",),
            scale_overrides={"workload_instructions": 2_000},
        ),
        axes={"config": ("baseline", "config_a"), "fault_rates": ("unit", "rhc", "edr")},
    )


def main(argv: list[str]) -> int:
    root = Path(argv[0]) if argv else Path("example_store")
    if root.exists():
        shutil.rmtree(root)
    spec = sweep_spec().validate()
    children = spec.expand()
    print(f"sweep {spec.name}: {len(children)} children, digest {spec.digest[:12]}...")

    # 1. Shard 1 of 2 runs to completion on "machine A".
    #    CLI: repro sweep sweep.json --store shard_a --shard 1/2
    with Session(store=root / "shard_a") as session:
        shard = session.run_shard(spec, 1, 2)
    print(f"shard 1/2 done: {len(shard.children)} runs stored in {root / 'shard_a'}")

    # 2. Shard 2 of 2 is interrupted on "machine B" after one child.
    mine = children[1::2]
    with Session(store=root / "shard_b") as session:
        session.run(mine[0])
    print(f"shard 2/2 interrupted after 1 of {len(mine)} runs")

    # 3. Resume shard 2: the finished child is replayed from the store.
    #    CLI: repro sweep sweep.json --store shard_b --shard 2/2
    start = time.perf_counter()
    with Session(store=root / "shard_b") as session:
        session.run_shard(spec, 2, 2)
    print(f"shard 2/2 resumed + finished in {time.perf_counter() - start:.2f}s")

    # 4. Join the shards and assemble the sweep without re-simulating.
    #    CLI: repro merge store shard_a shard_b && repro sweep sweep.json --store store
    merged, added = merge_stores(root / "store", [root / "shard_a", root / "shard_b"])
    print(f"merged shards: {added} results, {len(merged)} total")
    start = time.perf_counter()
    with Session(store=merged) as session:
        assembled = session.run(spec)
    merged.close()
    print(f"full sweep assembled from the store in {time.perf_counter() - start:.2f}s "
          f"({len(assembled.rows)} rows)")

    # 5. The assembled rows are byte-identical to a storeless run.
    with Session() as session:
        fresh = session.run(spec)
    assert json.dumps(assembled.rows) == json.dumps(fresh.rows), "rows diverged"
    print("verified: assembled rows are byte-identical to an uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
