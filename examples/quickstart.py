#!/usr/bin/env python3
"""Quickstart: measure the AVF/SER of a candidate stressmark and a workload.

This example exercises the core public API end to end:

1. build the paper's baseline Alpha 21264-class configuration (Table I);
2. generate a candidate stressmark from the paper's published knob setting
   (Figure 5a) with the code generator;
3. simulate it on the AVF-capable out-of-order core model;
4. print per-structure AVF and normalised SER (units/bit) per structure group;
5. do the same for one synthetic SPEC CPU2006 workload proxy for contrast.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import StructureGroup, baseline_config, build_report, unit_fault_rates
from repro.stressmark import CodeGenerator
from repro.stressmark.generator import reference_knobs
from repro.uarch import OutOfOrderCore
from repro.uarch.structures import StructureName
from repro.workloads import build_workload, profile_by_name


def describe(title: str, report) -> None:
    """Print a compact AVF/SER summary for one simulated program."""
    print(f"\n=== {title} ===")
    print(f"cycles={report.total_cycles}  instructions={report.committed_instructions}  "
          f"IPC={report.ipc:.3f}")
    print("normalised SER (units/bit):")
    for group in (StructureGroup.QS, StructureGroup.CORE, StructureGroup.DL1_DTLB, StructureGroup.L2):
        print(f"  {group.value:10s} {report.ser(group):.3f}")
    print("per-structure AVF:")
    for structure in (
        StructureName.IQ,
        StructureName.ROB,
        StructureName.LQ_TAG,
        StructureName.SQ_TAG,
        StructureName.RF,
        StructureName.FU,
        StructureName.DL1,
        StructureName.DTLB,
        StructureName.L2,
    ):
        print(f"  {structure.value:10s} {report.avf(structure):.3f}")


def main() -> None:
    config = baseline_config()
    fault_rates = unit_fault_rates()
    core = OutOfOrderCore(config, seed=1)

    # --- candidate stressmark from the paper's published knob setting -------
    knobs = reference_knobs(config)
    program = CodeGenerator(config).generate(knobs, name="reference_stressmark")
    print("Reference stressmark knobs (Figure 5a):")
    for key, value in knobs.as_table().items():
        print(f"  {key}: {value}")
    result = core.run(program, max_instructions=20_000)
    describe("Reference stressmark (baseline configuration)", build_report(result, fault_rates))

    # --- one SPEC CPU2006 proxy for contrast --------------------------------
    profile = profile_by_name("403.gcc_proxy")
    workload = build_workload(profile, config, seed=11)
    result = core.run(workload, max_instructions=20_000)
    describe("Workload proxy: 403.gcc_proxy", build_report(result, fault_rates))

    print("\nThe stressmark should exceed the workload on every structure group "
          "(the paper reports 1.4x in the core, 2.5x in DL1+DTLB and 1.5x in L2 "
          "against the best of 33 workloads).")


if __name__ == "__main__":
    main()
