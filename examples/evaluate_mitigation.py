#!/usr/bin/env python3
"""Quantify SER-mitigation mechanisms with the stressmark methodology (§VII).

The paper's Section VII shows how an architect uses the stressmark to measure
the worst-case impact of protection mechanisms: radiation-hardened circuitry
(RHC) on the ROB/LQ/SQ and error detection + recovery (EDR) on the same
structures.  This example regenerates a stressmark for each fault-rate model
and reports how much the worst-case core SER drops — the adaptive property
that distinguishes the methodology from re-running a fixed workload suite.

Run:  python examples/evaluate_mitigation.py
"""

from __future__ import annotations

from repro import baseline_config
from repro.experiments import ExperimentContext, ExperimentScale
from repro.uarch import edr_fault_rates, rhc_fault_rates, unit_fault_rates


def main() -> None:
    config = baseline_config()
    context = ExperimentContext(ExperimentScale.quick())
    scenarios = {
        "baseline (unit fault rates)": unit_fault_rates(),
        "RHC (hardened ROB/LQ/SQ)": rhc_fault_rates(),
        "EDR (protected ROB/LQ/SQ)": edr_fault_rates(),
    }

    print("Worst-case core SER under each protection scenario")
    print("(stressmark regenerated per scenario vs. the best of 33 workload proxies)\n")

    baseline_ser = None
    for label, fault_rates in scenarios.items():
        stressmark = context.stressmark(config, fault_rates)
        workloads = context.workload_reports(config, fault_rates)
        best_name, best_report = workloads.best_by(lambda report: report.core_ser)

        stress_ser = stressmark.report.core_ser
        if baseline_ser is None:
            baseline_ser = stress_ser
            delta = ""
        else:
            reduction = 100.0 * (1.0 - stress_ser / baseline_ser) if baseline_ser else 0.0
            delta = f"  ({reduction:.1f}% lower than the unprotected worst case)"

        print(f"{label}")
        print(f"  stressmark worst-case core SER : {stress_ser:.3f} units/bit{delta}")
        print(f"  best workload proxy            : {best_name} at {best_report.core_ser:.3f} units/bit")
        print(f"  generator variant chosen       : {stressmark.knob_table()['Code generator']}")
        print(f"  loads/stores in the inner loop : "
              f"{stressmark.knobs.num_loads}/{stressmark.knobs.num_stores}")
        print()

    print("Expected shape (paper, Table III): the stressmark exceeds the best\n"
          "workload in every scenario, and the GA shifts away from memory-heavy\n"
          "loops once the LQ/SQ/ROB are protected (fewer loads/stores under RHC,\n"
          "the L2-hit generator under EDR).")


if __name__ == "__main__":
    main()
