#!/usr/bin/env python3
"""Generate an AVF stressmark with the genetic algorithm (Figure 2 / Figure 5).

The script runs the full closed loop of the paper: the GA proposes knob
settings, the code generator builds candidate programs, the AVF simulator
scores them, and the best candidate after the configured number of
generations is the stressmark.  It then prints the final knob table
(Figure 5a), the per-generation average fitness (Figure 5b) and the SER the
stressmark induces, compared against the strongest workload proxy.

Run:  python examples/generate_stressmark.py [--generations N] [--population N]
"""

from __future__ import annotations

import argparse

from repro import StructureGroup, baseline_config, unit_fault_rates
from repro.experiments import ExperimentContext, ExperimentScale
from repro.ga import GAParameters
from repro.stressmark import StressmarkGenerator
from repro.stressmark.generator import reference_knobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generations", type=int, default=8, help="GA generations")
    parser.add_argument("--population", type=int, default=10, help="individuals per generation")
    parser.add_argument("--instructions", type=int, default=8_000,
                        help="simulated instructions per fitness evaluation")
    parser.add_argument("--seed-reference", action="store_true",
                        help="seed the initial population with the paper's knob setting")
    args = parser.parse_args()

    config = baseline_config()
    fault_rates = unit_fault_rates()

    generator = StressmarkGenerator(
        config=config,
        fault_rates=fault_rates,
        ga_parameters=GAParameters(
            population_size=args.population,
            generations=args.generations,
            crossover_rate=0.73,
            mutation_rate=0.05,
        ),
        max_instructions=args.instructions,
    )
    seeds = [reference_knobs(config)] if args.seed_reference else None

    print(f"Running GA: {args.generations} generations x {args.population} individuals "
          f"({args.instructions} instructions per evaluation)...")
    result = generator.generate(initial_knobs=seeds)

    print("\nFinal knob settings (compare with Figure 5a):")
    for key, value in result.knob_table().items():
        print(f"  {key}: {value}")

    print("\nGA convergence — average fitness per generation (Figure 5b):")
    for generation, value in enumerate(result.convergence_trace):
        marker = "  <- cataclysm" if generation in result.ga_result.cataclysm_generations else ""
        print(f"  gen {generation:3d}: {value:.4f}{marker}")

    print(f"\nBest fitness: {result.fitness:.4f} "
          f"({result.ga_result.evaluations} candidate evaluations)")
    print("Stressmark SER (units/bit):")
    for group in (StructureGroup.QS, StructureGroup.CORE, StructureGroup.DL1_DTLB, StructureGroup.L2):
        print(f"  {group.value:10s} {result.report.ser(group):.3f}")

    # Compare against the strongest workload proxy on the same configuration.
    context = ExperimentContext(ExperimentScale.quick())
    workloads = context.workload_reports(config, fault_rates)
    best_name, best_report = workloads.best_by(lambda report: report.core_ser)
    print(f"\nBest workload proxy by core SER: {best_name} ({best_report.core_ser:.3f} units/bit)")
    if best_report.core_ser > 0:
        print(f"Stressmark / best workload core SER ratio: "
              f"{result.report.core_ser / best_report.core_ser:.2f}x (paper reports ~1.4x)")


if __name__ == "__main__":
    main()
