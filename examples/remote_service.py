"""Evaluation-service walkthrough: daemon, client proxy, dedup, store hits.

Usage::

    PYTHONPATH=src python examples/remote_service.py [store-dir]

Demonstrates the PR-7 service workflow end to end, entirely through the
public API (the CLI equivalents are shown as comments):

1. start a `repro serve` daemon on an ephemeral port with a result store,
2. run a spec remotely through the `ServeClient` proxy — the same call
   shape as a local `Session.run`,
3. re-submit the identical spec: answered from the store without queueing,
4. submit asynchronously and poll/watch the job to completion,
5. read the service counters and shut the daemon down cleanly.
"""

from __future__ import annotations

import sys
import tempfile

from repro.serve.client import ServeClient
from repro.serve.loadtest import spawn_daemon

SPEC = {
    "kind": "simulate",
    "name": "remote_service_example",
    "workloads": ["403.gcc_proxy", "429.mcf_proxy"],
    "scale": "quick",
    "scale_overrides": {"workload_instructions": 5_000},
}


def main() -> int:
    store = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="repro-serve-")
    print(f"store: {store}")

    # CLI: repro serve --store STORE   (prints "listening on HOST:PORT")
    process, endpoint = spawn_daemon(store)
    print(f"daemon: pid {process.pid} on {endpoint}")
    try:
        with ServeClient(endpoint, client_id="example") as client:
            info = client.ping()
            print(f"server: repro {info['server_version']} "
                  f"(protocol v{info['protocol_version']})")

            # CLI: repro run spec.json --remote HOST:PORT
            result = client.run(SPEC)
            print(f"remote run: {len(result.rows)} rows, digest {result.spec_digest[:12]}…")

            # The same digest again: served from the store, never queued.
            response = client.submit(SPEC)
            assert response["source"] == "store" and response["job_id"] is None
            print("duplicate submit: answered inline from the store")

            # Async mirror of Session.run: submit, then watch to completion.
            unique = dict(SPEC, name="remote_service_example/async")
            submitted = client.submit(unique)
            print(f"async submit: {submitted['job_id']} ({submitted['state']})")
            result = client.wait(submitted["job_id"])
            print(f"async result: {len(result.rows)} rows")

            stats = client.stats()
            counters = stats["counters"]
            print(f"stats: submitted={counters['submitted']} "
                  f"store_hits={counters['store_hits']} "
                  f"completed={counters['completed']}")
            client.shutdown()
    finally:
        return_code = process.wait(timeout=60.0)
        print(f"daemon exited with code {return_code}")
    return return_code


if __name__ == "__main__":
    raise SystemExit(main())
