#!/usr/bin/env python3
"""Assess the SER coverage of a workload suite (the paper's motivation).

The introduction of the paper (Figure 1) argues that without knowing the
worst-case observable SER it is impossible to judge whether a workload
suite's SER coverage — and therefore the designer's safety margin — is
adequate.  This example reproduces that analysis: it simulates all 33
synthetic workload proxies, plots (textually) where they fall in the SER
range, and shows how far the top of the suite sits below the stressmark.

Run:  python examples/workload_coverage.py
"""

from __future__ import annotations

from repro import StructureGroup, baseline_config, unit_fault_rates
from repro.experiments import ExperimentContext, ExperimentScale
from repro.workloads import WorkloadSuite


def bar(value: float, maximum: float, width: int = 46) -> str:
    """A textual bar scaled to ``maximum``."""
    filled = int(round(width * value / maximum)) if maximum > 0 else 0
    return "#" * filled


def main() -> None:
    config = baseline_config()
    fault_rates = unit_fault_rates()
    context = ExperimentContext(ExperimentScale.quick())

    stressmark = context.stressmark(config, fault_rates)
    workloads = context.workload_reports(config, fault_rates)

    worst_case = stressmark.report.core_ser
    print(f"Observable worst-case core SER (stressmark): {worst_case:.3f} units/bit\n")

    rows = sorted(
        workloads.reports.items(), key=lambda item: item[1].core_ser, reverse=True
    )
    print(f"{'workload':28s} {'suite':9s} {'core SER':>9s}  coverage")
    for name, report in rows:
        suite = report.stats.get("suite", "?") if isinstance(report.stats, dict) else "?"
        print(f"{name:28s} {suite:9s} {report.core_ser:9.3f}  {bar(report.core_ser, worst_case)}")

    best_name, best_report = workloads.best_by(lambda report: report.core_ser)
    gap = 100.0 * (1.0 - best_report.core_ser / worst_case) if worst_case else 0.0
    print(f"\nBest workload proxy: {best_name} at {best_report.core_ser:.3f} units/bit")
    print(f"Coverage gap below the worst case: {gap:.1f}% "
          "(the paper reports ~27% for its 33-program suite)")

    print("\nPer-suite averages (core SER, units/bit):")
    for suite in WorkloadSuite:
        members = workloads.by_suite(suite)
        if not members:
            continue
        average = sum(report.core_ser for report in members.values()) / len(members)
        print(f"  {suite.value:9s} {average:.3f}")

    print("\nCache coverage (DL1+DTLB) — stressmark vs best workload:")
    best_cache = max(report.ser(StructureGroup.DL1_DTLB) for report in workloads.reports.values())
    print(f"  stressmark {stressmark.report.ser(StructureGroup.DL1_DTLB):.3f}  "
          f"best workload {best_cache:.3f}  "
          f"ratio {stressmark.report.ser(StructureGroup.DL1_DTLB) / best_cache:.2f}x "
          "(paper reports ~2.5x)")


if __name__ == "__main__":
    main()
