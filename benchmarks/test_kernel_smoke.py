"""Kernel parity + throughput gate (tier-2 ``kernel_smoke``).

Two checks on the program-specialized simulator kernels (ARCHITECTURE.md):

* **Parity** — the full ``avf-smoke`` workload matrix is simulated twice,
  once through the kernels and once through the interpreted reference loop
  (``REPRO_KERNEL=0``), and the canonical AVF/SER payloads are compared
  byte for byte; the kernel payload must also still match the checked-in
  ``benchmarks/golden_avf.json``.
* **Throughput floor** — the 50k-op reference simulation through the kernel
  path must not fall more than 30% below the kernel baseline recorded in
  ``BENCH_pipeline.json``, and must beat the same entry's interpreted time
  (the kernel never being slower than the interpreter is part of the
  contract — otherwise the default path silently regresses).

Run via ``make kernel-smoke`` or ``REPRO_KERNEL_SMOKE=1``; skipped in plain
test runs (the matrix takes tens of seconds).
"""

from __future__ import annotations

import difflib
import os

import pytest

from _bench_utils import assert_kernel_throughput_floor
from repro.avf.goldens import avf_smoke_payload, golden_path, render_payload
from repro.experiments.bench import bench_pipeline
from repro.uarch import kernel

pytestmark = [pytest.mark.kernel_smoke]
if not os.environ.get("REPRO_KERNEL_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(
            reason="kernel smoke disabled (set REPRO_KERNEL_SMOKE=1 or run `make kernel-smoke`)"
        )
    )


class TestKernelParity:
    def test_golden_matrix_identical_under_kernels(self, monkeypatch):
        monkeypatch.delenv(kernel.KERNEL_ENV_VAR, raising=False)
        assert kernel.kernel_enabled()
        kernel_payload = render_payload(avf_smoke_payload())

        monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "0")
        assert not kernel.kernel_enabled()
        interpreted_payload = render_payload(avf_smoke_payload())

        if kernel_payload != interpreted_payload:
            diff = "\n".join(
                difflib.unified_diff(
                    interpreted_payload.splitlines(), kernel_payload.splitlines(),
                    fromfile="interpreted", tofile="kernel", lineterm="", n=2,
                )
            )
            pytest.fail(f"kernel path diverged from the interpreter:\n{diff[:4000]}")

        path = golden_path()
        if path.exists():
            assert kernel_payload == path.read_text(), (
                "kernel path drifted from benchmarks/golden_avf.json"
            )


class TestKernelThroughput:
    def test_kernel_throughput_floor(self, monkeypatch):
        monkeypatch.delenv(kernel.KERNEL_ENV_VAR, raising=False)
        metrics = bench_pipeline(instructions=50_000, repeats=3)
        assert metrics["kernel"], "kernel path inactive despite REPRO_KERNEL being unset"
        assert metrics["seconds"] <= metrics["interpreted_seconds"] * (1.0 + 0.05), (
            f"kernel ({metrics['seconds']:.3f}s) slower than the interpreter "
            f"({metrics['interpreted_seconds']:.3f}s)"
        )
        assert_kernel_throughput_floor(metrics, pytest)
