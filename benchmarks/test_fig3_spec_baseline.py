"""Figure 3: stressmark vs SPEC CPU2006 SER on the baseline configuration.

The paper reports the stressmark at 0.797 (queues), 0.997 (DL1+DTLB) and
0.931 (L2) units/bit, exceeding the best SPEC CPU2006 program by ~1.4x in the
core, ~2.5x in DL1+DTLB and ~1.5x in the L2.  The benchmark regenerates the
per-program series and asserts the stressmark dominates on every group.
"""

from __future__ import annotations

from repro.avf.analysis import StructureGroup
from repro.experiments.figures import figure3

from _bench_utils import print_series


def test_figure3_stressmark_vs_spec2006(benchmark, bench_context):
    result = benchmark.pedantic(figure3, args=(bench_context,), iterations=1, rounds=1)

    print_series("Figure 3: SER (units/bit), stressmark vs SPEC CPU2006",
                 [row.as_dict() for row in result.rows])
    stressmark = result.stressmark_row()
    print(f"\nstressmark margins over best SPEC program: "
          f"QS {result.stressmark_margin(StructureGroup.QS):.2f}x  "
          f"QS+RF {result.stressmark_margin(StructureGroup.QS_RF):.2f}x  "
          f"DL1+DTLB {result.stressmark_margin(StructureGroup.DL1_DTLB):.2f}x  "
          f"L2 {result.stressmark_margin(StructureGroup.L2):.2f}x "
          f"(paper: ~1.4x core, ~2.5x DL1+DTLB, ~1.5x L2)")

    assert stressmark.ser[StructureGroup.QS] > 0.6
    assert stressmark.ser[StructureGroup.DL1_DTLB] > 0.85
    assert stressmark.ser[StructureGroup.L2] > 0.8
    for group in (StructureGroup.QS, StructureGroup.QS_RF, StructureGroup.DL1_DTLB, StructureGroup.L2):
        assert result.stressmark_margin(group) > 1.0
