"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
expensive artefacts (the 33 workload simulations and the GA-generated
stressmarks per fault-rate scenario) are shared through a session-scoped
:class:`ExperimentContext` so the full harness runs in minutes at the default
``quick`` scale.  Set ``REPRO_BENCH_SCALE=default`` for a higher-fidelity run
(see EXPERIMENTS.md for the scales used in the recorded results).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentContext, ExperimentScale


def _scale_from_environment() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name == "default":
        return ExperimentScale.default()
    if name == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.quick()


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return _scale_from_environment()


@pytest.fixture(scope="session")
def bench_context(bench_scale: ExperimentScale) -> ExperimentContext:
    return ExperimentContext(bench_scale)
