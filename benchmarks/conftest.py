"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
expensive artefacts (the 33 workload simulations and the GA-generated
stressmarks per fault-rate scenario) are shared through a session-scoped
:class:`ExperimentContext` so the full harness runs in minutes at the default
``quick`` scale.  Set ``REPRO_BENCH_SCALE=default`` for a higher-fidelity run
(see EXPERIMENTS.md for the scales used in the recorded results) and
``REPRO_JOBS=N`` to fan the independent simulations out over N worker
processes (results are identical for any worker count).

The active scale and job count are printed once per session in the pytest
header so recorded figures are attributable to their settings.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentContext, ExperimentScale
from repro.parallel.backends import resolve_jobs


def _scale_from_environment() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if name == "default":
        return ExperimentScale.default()
    if name == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.quick()


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "perf_smoke: performance regression gate (run via `make bench-smoke` "
        "or REPRO_PERF_SMOKE=1; see PERFORMANCE.md)",
    )
    config.addinivalue_line(
        "markers",
        "specs_smoke: example-spec validation gate (run via `make specs-smoke` "
        "or REPRO_SPECS_SMOKE=1; see EXPERIMENTS.md)",
    )
    config.addinivalue_line(
        "markers",
        "store_smoke: result-store persistence gate — interrupt/resume/shard/merge "
        "round trips (run via `make store-smoke` or REPRO_STORE_SMOKE=1; see "
        "EXPERIMENTS.md)",
    )
    config.addinivalue_line(
        "markers",
        "avf_smoke: AVF golden-file gate — per-structure AVF/SER byte-compared "
        "against benchmarks/golden_avf.json (run via `make avf-smoke` or "
        "REPRO_AVF_SMOKE=1; regenerate via `make avf-golden`)",
    )
    config.addinivalue_line(
        "markers",
        "kernel_smoke: specialized-kernel gate — kernel/interpreter parity on "
        "the golden matrix plus a kernel throughput floor (run via "
        "`make kernel-smoke` or REPRO_KERNEL_SMOKE=1; see PERFORMANCE.md)",
    )
    config.addinivalue_line(
        "markers",
        "batch_smoke: batch evaluation-plane gate — population AVF/SER "
        "byte-compared between the batch kernel backend and the interpreter, "
        "plus a batch-vs-per-genome speedup floor (run via `make batch-smoke` "
        "or REPRO_BATCH_SMOKE=1; see PERFORMANCE.md)",
    )
    config.addinivalue_line(
        "markers",
        "chaos_smoke: fault-tolerance gate — GA under injected worker kills "
        "and torn store writes byte-compared against a clean serial run (run "
        "via `make chaos-smoke` or REPRO_CHAOS_SMOKE=1; see ARCHITECTURE.md)",
    )
    config.addinivalue_line(
        "markers",
        "serve_smoke: evaluation-service gate — real `repro serve` daemon, "
        "remote results byte-compared against local runs, concurrent clients, "
        "clean shutdown (run via `make serve-smoke` or REPRO_SERVE_SMOKE=1; "
        "see EXPERIMENTS.md)",
    )
    config.addinivalue_line(
        "markers",
        "serve_chaos_smoke: durable-service gate — daemon SIGKILLed mid-queue "
        "and restarted on the same journal with zero digest loss, chaos-hung "
        "evaluations quarantined by the watchdog, random connection drops "
        "survived by client failover (run via `make serve-chaos-smoke` or "
        "REPRO_SERVE_CHAOS_SMOKE=1; see EXPERIMENTS.md)",
    )


def pytest_report_header(config: pytest.Config) -> str:
    scale = _scale_from_environment()
    return (
        f"repro benchmarks: scale={scale.name} "
        f"(workload={scale.workload_instructions} / stressmark={scale.stressmark_instructions} insns, "
        f"GA {scale.ga_population}x{scale.ga_generations}) jobs={resolve_jobs()}"
    )


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return _scale_from_environment()


@pytest.fixture(scope="session")
def bench_context(bench_scale: ExperimentScale):
    context = ExperimentContext(bench_scale, jobs=resolve_jobs())
    yield context
    context.close()
