"""Table III: comparison of worst-case core SER estimation methodologies.

The paper's Table III compares, for the baseline/RHC/EDR fault-rate
scenarios: the stressmark-induced core SER, the best individual program from
the 33-workload suite, and the (unsound) "sum of highest per-structure SER"
estimate.  The raw circuit-level bound (1 / 0.59 / 0.39 units/bit in the
paper) is included as the fully pessimistic reference.
"""

from __future__ import annotations

from repro.experiments.tables import table3

from _bench_utils import print_series


def test_table3_worst_case_estimation_methodologies(benchmark, bench_context):
    result = benchmark.pedantic(table3, args=(bench_context,), iterations=1, rounds=1)

    print_series(
        "Table III: worst-case core SER estimation (units/bit)",
        [
            {
                "configuration": row.configuration,
                "stressmark": row.stressmark_ser,
                "best_program": row.best_program_name,
                "best_program_ser": row.best_program_ser,
                "sum_highest_per_structure": row.sum_of_highest_per_structure_ser,
                "raw_circuit": row.raw_circuit_ser,
                "margin_over_best": row.stressmark_margin_over_best_program(),
            }
            for row in result.rows.values()
        ],
    )

    for row in result.rows.values():
        # Ordering the paper establishes: individual programs < stressmark < raw circuit.
        assert row.best_program_ser < row.stressmark_ser <= row.raw_circuit_ser
        # The stressmark reveals headroom the workload suite misses (29-37% in the paper).
        assert row.stressmark_margin_over_best_program() > 1.05

    assert result.row("baseline").raw_circuit_ser == 1.0
    # Mitigation lowers the worst case monotonically.
    assert (
        result.row("baseline").stressmark_ser
        > result.row("rhc").stressmark_ser
        > result.row("edr").stressmark_ser
    )
