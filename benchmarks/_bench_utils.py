"""Helpers shared by the benchmark harness (kept out of conftest so imports
are unambiguous when tests/ and benchmarks/ are collected together)."""

from __future__ import annotations


def print_series(title: str, rows: list[dict]) -> None:
    """Print a figure's data series in a compact tabular form."""
    print(f"\n--- {title} ---")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    print("  ".join(f"{key:>14s}" for key in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.4f}")
            else:
                cells.append(f"{str(value):>14s}")
        print("  ".join(cells))
