"""Helpers shared by the benchmark harness (kept out of conftest so imports
are unambiguous when tests/ and benchmarks/ are collected together)."""

from __future__ import annotations


def print_series(title: str, rows: list[dict]) -> None:
    """Print a figure's data series in a compact tabular form."""
    print(f"\n--- {title} ---")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    print("  ".join(f"{key:>14s}" for key in keys))
    for row in rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:>14.4f}")
            else:
                cells.append(f"{str(value):>14s}")
        print("  ".join(cells))


# --------------------------------------------------------- perf-gate shared

#: Allowed slowdown versus a recorded BENCH_pipeline.json baseline, shared by
#: the bench-smoke and kernel-smoke gates so the two can never drift apart.
MAX_REGRESSION = 0.30


def pipeline_bench_path():
    """BENCH_pipeline.json at the repository root (works from any cwd)."""
    from pathlib import Path

    from repro.experiments.bench import PIPELINE_BENCH_FILE

    here = Path(__file__).resolve().parent.parent / PIPELINE_BENCH_FILE
    return here if here.exists() else Path(PIPELINE_BENCH_FILE)


def ga_bench_path():
    """BENCH_ga.json at the repository root (works from any cwd)."""
    from pathlib import Path

    from repro.experiments.bench import GA_BENCH_FILE

    here = Path(__file__).resolve().parent.parent / GA_BENCH_FILE
    return here if here.exists() else Path(GA_BENCH_FILE)


def kernel_baseline():
    """First trajectory entry recorded with the kernel path active."""
    from repro.experiments.bench import baseline_entry

    return baseline_entry(pipeline_bench_path(), lambda entry: entry.get("kernel"))


def assert_kernel_throughput_floor(metrics, pytest):
    """Shared floor assertion of the bench-smoke and kernel-smoke gates."""
    assert metrics["kernel_identical"], "kernel and interpreter disagreed on the reference run"
    recorded = kernel_baseline()
    if recorded is None:
        pytest.skip("no recorded kernel baseline (run `python -m repro bench` first)")
    floor = recorded["instructions_per_second"] * (1.0 - MAX_REGRESSION)
    assert metrics["instructions_per_second"] >= floor, (
        f"kernel throughput {metrics['instructions_per_second']:.0f} insns/s fell below "
        f"baseline {recorded['instructions_per_second']:.0f}/s "
        f"(-{MAX_REGRESSION:.0%} floor {floor:.0f}/s)"
    )
