"""Evaluation-service smoke gate (tier-2 ``serve_smoke``, ``make serve-smoke``).

End-to-end check of the service contract against a *real* ``repro serve``
daemon subprocess: every checked-in example spec run remotely must come back
byte-identical to a local :class:`Session` run (volatile timing/resilience
blocks excluded); three concurrent clients mixing duplicate, unique and
cancelled submissions must all be served correctly; store hits must skip the
queue entirely; and shutdown must be clean — daemon exit code 0, ``repro
fsck`` clean on the store it wrote, no leftover temp debris.  Like the other
tier-2 gates, the suite only runs when explicitly requested:

    make serve-smoke
    # or
    REPRO_SERVE_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_serve_smoke.py -q
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

import pytest

from repro.api import RunSpec, Session
from repro.serve.client import RemoteRunError, ServeClient
from repro.serve.loadtest import duplicate_spec, spawn_daemon, unique_spec
from repro.store import fsck_store
from repro.store.result_store import _strip_volatile

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"

pytestmark = [pytest.mark.serve_smoke]
if not os.environ.get("REPRO_SERVE_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="serve smoke disabled (set REPRO_SERVE_SMOKE=1 or run `make serve-smoke`)")
    )


def _spec_files() -> list[Path]:
    return sorted(SPECS_DIR.glob("*.json"))


@pytest.fixture(scope="module")
def serve_env():
    """Environment both sides share: byte-compare needs identical resolution.

    ``REPRO_JOBS`` is stripped so the daemon's session and the local
    comparison session record the same ``provenance.jobs``.
    """
    with pytest.MonkeyPatch.context() as patcher:
        patcher.delenv("REPRO_JOBS", raising=False)
        yield


@pytest.fixture(scope="module")
def daemon(serve_env, tmp_path_factory):
    """One live daemon (with a store) shared by the whole module."""
    store = tmp_path_factory.mktemp("serve-store")
    process, endpoint = spawn_daemon(str(store))
    yield endpoint, store
    with ServeClient(endpoint, client_id="smoke-teardown") as client:
        client.shutdown()
    assert process.wait(timeout=60.0) == 0, "daemon did not exit cleanly"


def test_example_specs_exist():
    assert _spec_files(), f"no example specs found under {SPECS_DIR}"


@pytest.mark.parametrize("path", _spec_files(), ids=lambda p: p.stem)
def test_remote_matches_local_byte_identical(daemon, path: Path):
    """Every example spec served remotely == the same spec run locally."""
    endpoint, _ = daemon
    spec = RunSpec.load(path)
    with ServeClient(endpoint, client_id="smoke-compare") as client:
        remote = client.run(spec, busy_deadline=600.0)
    with Session() as session:
        local = session.run(spec)
    assert _strip_volatile(remote.to_json_dict()) == _strip_volatile(local.to_json_dict())
    assert remote.spec_digest == local.spec_digest == spec.digest


def test_three_concurrent_clients_mixed_workload(daemon):
    """Duplicate, unique and cancelled submissions from 3 clients at once."""
    endpoint, _ = daemon
    results: dict[str, object] = {}
    errors: list[str] = []

    def duplicates() -> None:
        with ServeClient(endpoint, client_id="smoke-dup") as client:
            results["dup"] = [client.run(duplicate_spec()) for _ in range(3)]

    def uniques() -> None:
        with ServeClient(endpoint, client_id="smoke-uniq") as client:
            results["uniq"] = [client.run(unique_spec(index)) for index in range(2)]

    def cancels() -> None:
        with ServeClient(endpoint, client_id="smoke-cancel") as client:
            # Queue behind the other clients' work, then withdraw.
            submitted = client.submit(unique_spec(97))
            response = client.cancel(submitted["job_id"])
            results["cancelled"] = (submitted["job_id"], response)

    threads = [threading.Thread(target=_trap(worker, errors))
               for worker in (duplicates, uniques, cancels)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600.0)
    assert not errors, errors

    dup_docs = [r.to_json_dict() for r in results["dup"]]
    # Store-served duplicates are the original result verbatim.
    assert dup_docs[0] == dup_docs[1] == dup_docs[2]
    assert [r.spec.name for r in results["uniq"]] == ["loadtest-unique-0", "loadtest-unique-1"]

    job_id, response = results["cancelled"]
    with ServeClient(endpoint, client_id="smoke-check") as client:
        if response["cancelled"]:
            with pytest.raises(RemoteRunError) as excinfo:
                client.result(job_id)
            assert excinfo.value.code == "job_cancelled"
        else:
            # The job started before the cancel landed; it must still finish.
            client.wait(job_id)


def _trap(worker, errors: list[str]):
    def run() -> None:
        try:
            worker()
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(f"{worker.__name__}: {exc!r}")
    return run


def test_store_hits_skip_the_queue(daemon):
    """A digest already in the store is answered inline, without a job."""
    endpoint, _ = daemon
    with ServeClient(endpoint, client_id="smoke-hit") as client:
        client.run(duplicate_spec())  # ensure the digest is stored
        before = client.stats()["counters"]["store_hits"]
        response = client.submit(duplicate_spec())
        after = client.stats()["counters"]["store_hits"]
    assert response["source"] == "store"
    assert response["job_id"] is None and response["result"]["rows"]
    assert after == before + 1


def test_clean_shutdown_store_intact_no_debris(serve_env, tmp_path):
    """Fresh daemon: serve, shut down; rc 0, fsck clean, no temp debris."""
    store = tmp_path / "store"
    process, endpoint = spawn_daemon(str(store))
    with ServeClient(endpoint, client_id="smoke-shutdown") as client:
        client.run(duplicate_spec())
        client.shutdown()
    assert process.wait(timeout=60.0) == 0
    report = fsck_store(store)
    assert report.clean, [finding.describe() for finding in report.findings]
    assert report.intact_results >= 1
    assert not list(store.rglob("*.tmp")), "daemon left temp debris behind"
