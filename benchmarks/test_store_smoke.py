"""Store smoke gate (tier-2 ``store_smoke``, run via ``make store-smoke``).

End-to-end check of the persistence contract: a sweep run into a store,
interrupted, and resumed from the store must produce byte-identical rows to
an uninterrupted run — and a GA stressmark search interrupted mid-run must
resume from its per-generation checkpoint to the identical best
genome/fitness.  Like the perf and spec gates, the suite only runs when
explicitly requested:

    make store-smoke
    # or
    REPRO_STORE_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_store_smoke.py -q
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import RunSpec, Session
from repro.cli import main
from repro.store import CheckpointManager, PersistentFitnessCache, open_store

pytestmark = [pytest.mark.store_smoke]
if not os.environ.get("REPRO_STORE_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="store smoke disabled (set REPRO_STORE_SMOKE=1 or run `make store-smoke`)")
    )

#: Small but non-trivial sweep: three fault-rate scenarios plus a stressmark.
SWEEP = RunSpec(
    kind="sweep",
    name="store_smoke",
    base=RunSpec(
        kind="simulate", name="store_smoke/wl",
        workloads=("crc32_proxy", "sha_proxy"),
        scale_overrides={"workload_instructions": 1500},
    ),
    axes={"fault_rates": ("unit", "rhc", "edr")},
    runs=(
        RunSpec(
            kind="stressmark", name="store_smoke/sm",
            scale_overrides={
                "workload_instructions": 1500,
                "stressmark_instructions": 2000,
                "ga_population": 4,
                "ga_generations": 3,
            },
        ),
    ),
)


def test_interrupted_sweep_resumes_byte_identically(tmp_path):
    """run -> interrupt -> resume -> byte-compare against uninterrupted."""
    children = SWEEP.expand()
    assert len(children) >= 3

    # Uninterrupted reference, no store involved.
    with Session() as session:
        reference = session.run(SWEEP)

    # "Interrupt": a first process completes only half the children.
    store_dir = tmp_path / "store"
    with Session(store=store_dir) as session:
        for child in children[: len(children) // 2]:
            session.run(child)

    # Resume in a fresh process (session): completed children are served
    # from the store, the rest run now.
    with Session(store=store_dir) as session:
        resumed = session.run(SWEEP)

    assert json.dumps(resumed.rows) == json.dumps(reference.rows)

    # Replay of the now-complete sweep is a pure store read.
    with Session(store=store_dir) as session:
        replayed = session.run(SWEEP)
    assert replayed.to_json() == resumed.to_json()


def test_interrupted_ga_resumes_to_identical_best(tmp_path):
    """A stressmark GA killed mid-search resumes bit-identically."""
    from repro.experiments.runner import ExperimentScale
    from repro.ga.engine import GAParameters, GeneticAlgorithm
    from repro.stressmark.fitness import FitnessFunction
    from repro.stressmark.generator import StressmarkEvaluator
    from repro.stressmark.knobs import KnobSpace
    from repro.uarch.config import baseline_config
    from repro.uarch.faultrates import unit_fault_rates

    config = baseline_config()
    knob_space = KnobSpace(config)
    scale = ExperimentScale.quick().derive(stressmark_instructions=2000)
    parameters = GAParameters(population_size=4, generations=4)
    evaluator = StressmarkEvaluator(
        config=config,
        fault_rates=unit_fault_rates(),
        fitness=FitnessFunction.balanced(),
        knob_space=knob_space,
        max_instructions=scale.stressmark_instructions,
        simulation_seed=scale.simulation_seed,
    )
    context_digest = evaluator.context_digest()

    def engine(cache):
        return GeneticAlgorithm(knob_space.gene_space(), evaluator, parameters, fitness_cache=cache)

    reference = engine(PersistentFitnessCache(tmp_path / "ref.sqlite", context_digest)).run()

    class Interrupt(Exception):
        pass

    manager = CheckpointManager(tmp_path / "ga.ckpt")
    interrupted_cache = PersistentFitnessCache(tmp_path / "int.sqlite", context_digest)
    bombed = GeneticAlgorithm(
        knob_space.gene_space(), evaluator, parameters,
        fitness_cache=interrupted_cache,
        on_generation=lambda stats, pop: (_ for _ in ()).throw(Interrupt)
        if stats.generation == 1 else None,
    )
    with pytest.raises(Interrupt):
        bombed.run(checkpoint=manager)
    assert manager.exists()

    resumed = engine(PersistentFitnessCache(tmp_path / "int.sqlite", context_digest)).run(
        checkpoint=manager
    )
    assert resumed.best.genome == reference.best.genome
    assert resumed.best.fitness == reference.best.fitness
    assert [s.__dict__ for s in resumed.history] == [s.__dict__ for s in reference.history]


def test_cli_shard_merge_replay_round_trip(tmp_path):
    """The documented CLI workflow: shard -> merge -> assemble from store."""
    spec_path = tmp_path / "sweep.json"
    SWEEP.save(spec_path)
    stores = [str(tmp_path / f"shard{i}") for i in (1, 2)]
    assert main(["sweep", str(spec_path), "--store", stores[0], "--shard", "1/2"]) == 0
    assert main(["sweep", str(spec_path), "--store", stores[1], "--shard", "2/2"]) == 0

    merged = str(tmp_path / "merged")
    assert main(["merge", merged, *stores]) == 0
    with open_store(merged) as store:
        assert len(store) == len(SWEEP.expand())

    out_store, out_fresh = tmp_path / "from_store.json", tmp_path / "fresh.json"
    assert main(["sweep", str(spec_path), "--store", merged, "--out", str(out_store)]) == 0
    assert main(["sweep", str(spec_path), "--out", str(out_fresh)]) == 0
    stored_rows = json.loads(out_store.read_text())["rows"]
    fresh_rows = json.loads(out_fresh.read_text())["rows"]
    assert json.dumps(stored_rows) == json.dumps(fresh_rows)
