"""Figure 6: per-structure AVF of SPEC CPU2006 INT/FP and MiBench workloads."""

from __future__ import annotations

from repro.experiments.figures import figure6
from repro.uarch.structures import StructureName
from repro.workloads.profiles import WorkloadSuite

from _bench_utils import print_series


def test_figure6_per_structure_avf(benchmark, bench_context):
    results = benchmark.pedantic(figure6, args=(bench_context,), iterations=1, rounds=1)

    for suite, label in (
        (WorkloadSuite.SPEC_INT, "Figure 6a: SPEC CPU2006 INT"),
        (WorkloadSuite.SPEC_FP, "Figure 6b: SPEC CPU2006 FP"),
        (WorkloadSuite.MIBENCH, "Figure 6c: MiBench"),
    ):
        rows = [
            {"program": name, **{structure.value: value for structure, value in row.items()}}
            for name, row in results[suite].rows.items()
        ]
        print_series(label, rows)

    # The paper: the stressmark achieves higher AVF on all structures except
    # (sometimes) the FUs and RF.
    for suite_result in results.values():
        assert suite_result.stressmark_exceeds(StructureName.ROB)
        assert suite_result.stressmark_exceeds(StructureName.LQ_TAG)
        assert suite_result.stressmark_exceeds(StructureName.SQ_TAG)

    # FP workloads stress the queues more than MiBench (Section VI).
    fp_rob = max(
        row[StructureName.ROB]
        for name, row in results[WorkloadSuite.SPEC_FP].rows.items()
        if name != "stressmark"
    )
    mibench_rob = max(
        row[StructureName.ROB]
        for name, row in results[WorkloadSuite.MIBENCH].rows.items()
        if name != "stressmark"
    )
    assert fp_rob > mibench_rob
