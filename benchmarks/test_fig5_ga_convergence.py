"""Figure 5: GA-generated stressmark — final knob setting and convergence.

Figure 5a of the paper reports the winning knob values for the baseline
configuration (loop size 81, 29 loads, 28 stores, dependency distance 6,
80 % long-latency arithmetic, 93 % reg-reg) and Figure 5b the average fitness
per generation, including the cataclysm dip once the population converges.
"""

from __future__ import annotations

from repro.experiments.figures import figure5

from _bench_utils import print_series


def test_figure5_ga_knobs_and_convergence(benchmark, bench_context):
    result = benchmark.pedantic(figure5, args=(bench_context,), iterations=1, rounds=1)

    print_series("Figure 5a: final knob settings",
                 [{"knob": key, "value": value} for key, value in result.knob_table.items()])
    print_series(
        "Figure 5b: average fitness per generation",
        [
            {
                "generation": index,
                "average_fitness": avg,
                "best_fitness": best,
                "cataclysm": index in result.cataclysm_generations,
            }
            for index, (avg, best) in enumerate(
                zip(result.average_fitness_per_generation, result.best_fitness_per_generation)
            )
        ],
    )
    print(f"\nfinal fitness {result.final_fitness:.4f} after {result.evaluations} evaluations")

    assert result.final_fitness > 0.0
    assert result.knob_table["Loop Size"] >= 16
    # The GA must not regress: the last generation's best is the overall best.
    assert max(result.best_fitness_per_generation) <= result.final_fitness + 1e-9
