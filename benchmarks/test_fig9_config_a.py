"""Figure 9: stressmark generation for a different microarchitecture (Config A)."""

from __future__ import annotations

from repro.avf.analysis import StructureGroup
from repro.experiments.figures import figure9

from _bench_utils import print_series


def test_figure9_configuration_a(benchmark, bench_context):
    result = benchmark.pedantic(figure9, args=(bench_context,), iterations=1, rounds=1)

    print_series(
        "Figure 9a: stressmark SER per structure group",
        [
            {"config": name, **{group.value: value for group, value in groups.items()}}
            for name, groups in result.group_ser.items()
        ],
    )
    print_series("Figure 9b: knob settings (Configuration A)",
                 [{"knob": k, "value": v} for k, v in result.knob_tables["config_a"].items()])

    # The methodology adapts: high SER is reached on both microarchitectures.
    for config_name in ("baseline", "config_a"):
        assert result.group_ser[config_name][StructureGroup.QS] > 0.5
        assert result.group_ser[config_name][StructureGroup.DL1_DTLB] > 0.7

    # Config A has a larger ROB, so the loop bound (1.2x ROB) is larger too.
    assert result.knob_tables["config_a"]["Loop Size"] <= round(96 * 1.2)
