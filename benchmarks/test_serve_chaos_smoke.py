"""Durable-service chaos gate (tier-2 ``serve_chaos_smoke``, ``make serve-chaos-smoke``).

Proves the PR 10 durability contract against *real* ``repro serve`` daemon
subprocesses under injected faults:

* **kill -9 mid-queue, zero loss** — a daemon is SIGKILLed with at least
  four jobs queued and one running, a second daemon is started on the same
  store + journal, and every acknowledged digest must come back — each
  client-observed result byte-identical (volatile blocks aside) to a clean
  local ``Session.run`` of the same spec.  The client reaches the restarted
  daemon through its failover endpoint list.
* **hung evaluation, live daemon** — ``REPRO_CHAOS=serve_eval:hang`` wedges
  one evaluation; the watchdog must quarantine it within the ``--job-timeout``
  deadline, subsequent jobs must complete, and the daemon must exit with the
  watchdog status code (3).
* **random connection drops** — ``REPRO_CHAOS=serve_conn:drop`` severs live
  client connections mid-conversation; every client request must still
  complete through the client's reconnect/re-watch machinery.

Like the other tier-2 gates, the suite only runs when explicitly requested:

    make serve-chaos-smoke
    # or
    REPRO_SERVE_CHAOS_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_serve_chaos_smoke.py -q
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.api import Session
from repro.parallel.resilience import RetryPolicy
from repro.serve.client import RemoteRunError, ServeClient
from repro.serve.journal import JobJournal
from repro.serve.loadtest import spawn_daemon, unique_spec
from repro.serve.server import EXIT_WATCHDOG
from repro.store import fsck_store
from repro.store.result_store import _strip_volatile

pytestmark = [pytest.mark.serve_chaos_smoke]
if not os.environ.get("REPRO_SERVE_CHAOS_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="serve chaos smoke disabled "
                                "(set REPRO_SERVE_CHAOS_SMOKE=1 or run `make serve-chaos-smoke`)")
    )

#: Watch/resubmit schedule generous enough to bridge a daemon restart.
PATIENT_RETRY = RetryPolicy(max_attempts=60, base_delay=0.2, max_delay=2.0)


@pytest.fixture()
def serve_env():
    """Strip REPRO_JOBS so daemon and local comparison resolve identically."""
    with pytest.MonkeyPatch.context() as patcher:
        patcher.delenv("REPRO_JOBS", raising=False)
        yield


def _slow_spec() -> dict:
    """A spec heavy enough to still be running when the kill lands."""
    return {
        "kind": "simulate",
        "name": "chaos-slow",
        "workloads": ["403.gcc_proxy"],
        "scale": "quick",
        "scale_overrides": {"workload_instructions": 400000},
    }


def _reap(process) -> None:
    if process.poll() is None:
        process.kill()
        process.wait()


def test_kill9_mid_queue_restart_loses_nothing(serve_env, tmp_path):
    """SIGKILL with >=4 queued + 1 running; restart on the same journal must
    recover every digest, byte-identical to clean local runs."""
    store = tmp_path / "store"
    specs = [_slow_spec()] + [unique_spec(index) for index in range(4)]

    process_a, endpoint_a = spawn_daemon(str(store))
    try:
        with ServeClient(endpoint_a, client_id="chaos-submitter") as client:
            job_ids = [client.submit(spec)["job_id"] for spec in specs]
            assert all(job_ids)
            stats = client.stats()
            assert stats["queue_depth"] >= 4, stats
        # The journal already holds every acknowledged job.
        assert len(JobJournal(store / "journal.jsonl").outstanding()) == 5
        process_a.kill()  # SIGKILL: no drain, no cleanup, no terminal records
        process_a.wait()
    finally:
        _reap(process_a)

    # The crash is visible to fsck as salvageable damage (orphaned running
    # job), not silent corruption.
    report = fsck_store(store)
    orphans = [f for f in report.findings if "orphaned in the running state" in f.problem]
    assert orphans and all(f.repairable for f in orphans)

    process_b, endpoint_b = spawn_daemon(str(store))
    try:
        # The client's endpoint list bridges the restart: the dead daemon's
        # endpoint is tried and failed over.
        endpoints = f"{endpoint_a},{endpoint_b}"
        with ServeClient(endpoints, client_id="chaos-collector",
                         watch_retry=PATIENT_RETRY,
                         request_retry=PATIENT_RETRY) as client:
            observed = [client.run(spec, busy_deadline=600.0) for spec in specs]
        with Session() as session:
            for spec, remote in zip(specs, observed):
                local = session.run(dict(spec))
                assert _strip_volatile(remote.to_json_dict()) == \
                    _strip_volatile(local.to_json_dict()), f"divergence on {spec['name']}"
        # Zero loss: every journaled digest reached a terminal state.
        assert JobJournal(store / "journal.jsonl").outstanding() == []
        with ServeClient(endpoint_b, client_id="chaos-teardown") as client:
            client.shutdown()
        assert process_b.wait(timeout=60.0) == 0
    finally:
        _reap(process_b)
    assert fsck_store(store, repair=True).repaired >= 0  # journal auditable


def test_chaos_hung_eval_quarantined_within_deadline(serve_env, tmp_path):
    """serve_eval:hang wedges one evaluation: the watchdog quarantines it,
    later jobs complete, and the daemon exits with the watchdog code."""
    store = tmp_path / "store"
    process, endpoint = spawn_daemon(
        str(store),
        extra_env={"REPRO_CHAOS": "serve_eval:hang:1.0:1"},  # first eval only
        extra_args=["--job-timeout", "3"],
    )
    try:
        with ServeClient(endpoint, client_id="chaos-hang",
                         watch_retry=PATIENT_RETRY) as client:
            start = time.monotonic()
            with pytest.raises(RemoteRunError) as excinfo:
                client.run(unique_spec(10))
            elapsed = time.monotonic() - start
            assert excinfo.value.code == "job_quarantined"
            assert "watchdog" in str(excinfo.value)
            assert elapsed < 30.0, f"quarantine took {elapsed:.1f}s (deadline 3s)"
            # The eval loop survived: the next job completes normally.
            assert client.run(unique_spec(11)).spec.name == "loadtest-unique-11"
            stats = client.stats()
            assert stats["counters"]["watchdog_fired"] == 1
            client.shutdown()
        assert process.wait(timeout=60.0) == EXIT_WATCHDOG
    finally:
        _reap(process)


def test_chaos_connection_drops_do_not_lose_requests(serve_env, tmp_path):
    """serve_conn:drop randomly severs live connections; every request must
    still complete via client reconnect + watch re-open."""
    store = tmp_path / "store"
    process, endpoint = spawn_daemon(
        str(store),
        extra_env={"REPRO_CHAOS": "serve_conn:drop:0.15", "REPRO_CHAOS_SEED": "7"},
    )
    try:
        errors: list[str] = []
        results: dict[int, list] = {}

        def client_worker(index: int) -> None:
            try:
                with ServeClient(endpoint, client_id=f"chaos-drop-{index}",
                                 watch_retry=PATIENT_RETRY,
                                 request_retry=PATIENT_RETRY) as client:
                    results[index] = [
                        client.run(unique_spec(20 + request), busy_deadline=600.0)
                        for request in range(4)
                    ]
            except Exception as exc:  # noqa: BLE001 - surfaced via errors
                errors.append(f"client {index}: {exc!r}")

        threads = [threading.Thread(target=client_worker, args=(i,), daemon=True)
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600.0)
        assert not errors, errors
        assert all(len(results[i]) == 4 for i in range(2))
        # Both clients observed identical result documents per spec.
        for a, b in zip(results[0], results[1]):
            assert a.to_json_dict() == b.to_json_dict()
        # Teardown may itself hit drops: retry the shutdown verb briefly.
        deadline = time.monotonic() + 30.0
        while True:
            try:
                with ServeClient(endpoint, client_id="chaos-drop-teardown") as client:
                    client.shutdown()
                break
            except Exception:  # noqa: BLE001 - chaos may drop the shutdown too
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.2)
        assert process.wait(timeout=60.0) == 0
    finally:
        _reap(process)
    assert fsck_store(store).clean
