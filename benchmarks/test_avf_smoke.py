"""AVF golden-file regression gate (tier-2 ``avf_smoke``).

Reruns the small-scale workload matrix and byte-compares the per-structure
AVF / group-SER dump against ``benchmarks/golden_avf.json``:

    make avf-smoke
    # or
    REPRO_AVF_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_avf_smoke.py -q

Any numeric drift in the accounting fails the gate; regenerate the golden
only for *intentional* accounting changes, via ``make avf-golden``.  Skipped
in plain test runs (simulating the matrix takes tens of seconds).
"""

from __future__ import annotations

import difflib
import os

import pytest

from repro.avf.goldens import avf_smoke_payload, golden_path, render_payload

pytestmark = [pytest.mark.avf_smoke]
if not os.environ.get("REPRO_AVF_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="avf smoke disabled (set REPRO_AVF_SMOKE=1 or run `make avf-smoke`)")
    )


class TestAvfGolden:
    def test_avf_output_matches_golden_byte_for_byte(self):
        path = golden_path()
        if not path.exists():
            pytest.fail(
                f"no golden file at {path} — generate one with `make avf-golden` "
                f"(only for intentional accounting changes)"
            )
        expected = path.read_text()
        actual = render_payload(avf_smoke_payload())
        if actual != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(), actual.splitlines(),
                    fromfile="golden_avf.json", tofile="recomputed", lineterm="", n=2,
                )
            )
            pytest.fail(
                "per-structure AVF / group SER drifted from the golden file "
                f"(regenerate via `make avf-golden` ONLY if the change is intentional):\n{diff[:4000]}"
            )
