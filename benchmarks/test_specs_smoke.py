"""Spec-file smoke gate (tier-2 ``specs_smoke``, run via ``make specs-smoke``).

Validates and runs every checked-in example spec under ``examples/specs/``
through the declarative run API at its own (quick) scale, and asserts the
RunResult JSON round-trips with a stable spec digest.  Like the perf gate,
the suite only runs when explicitly requested:

    make specs-smoke
    # or
    REPRO_SPECS_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_specs_smoke.py -q
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.api import RunResult, RunSpec, Session

SPECS_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"

pytestmark = [pytest.mark.specs_smoke]
if not os.environ.get("REPRO_SPECS_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="specs smoke disabled (set REPRO_SPECS_SMOKE=1 or run `make specs-smoke`)")
    )


def _spec_files() -> list[Path]:
    return sorted(SPECS_DIR.glob("*.json"))


def test_example_specs_exist():
    assert _spec_files(), f"no example specs found under {SPECS_DIR}"


@pytest.mark.parametrize("path", _spec_files(), ids=lambda p: p.stem)
def test_example_spec_validates_runs_and_round_trips(path: Path, tmp_path: Path):
    spec = RunSpec.load(path)  # load() validates shape + registry names

    with Session(jobs=2) as session:
        result = session.run(spec)

    assert result.rows, f"{path.name} produced no rows"
    if spec.kind == "sweep":
        assert result.children, f"{path.name} is a sweep but produced no children"
    if spec.kind == "stressmark":
        assert result.knobs and result.ga and result.ga["evaluations"] > 0

    out = tmp_path / f"{path.stem}_result.json"
    result.save(out)
    reloaded = RunResult.load(out)
    assert reloaded.spec_digest == result.spec_digest == spec.digest
    assert reloaded.rows == result.rows
