"""Figure 8: stressmark adaptation to different circuit-level fault rates.

Figure 8a fixes the RHC/EDR fault rates, Figure 8b shows the queueing-
structure AVF the regenerated stressmark achieves per scenario, and Figures
8c/8d the knob settings the GA chooses (fewer loads/stores and longer chains
under RHC; the L2-hit generator with high FU/RF activity under EDR).
"""

from __future__ import annotations

from repro.experiments.figures import figure8
from repro.uarch.structures import StructureName

from _bench_utils import print_series


def test_figure8_adaptation_to_fault_rates(benchmark, bench_context):
    result = benchmark.pedantic(figure8, args=(bench_context,), iterations=1, rounds=1)

    print_series(
        "Figure 8a: circuit-level fault rates (units/bit)",
        [{"scenario": scenario, **rates} for scenario, rates in result.fault_rate_table.items()],
    )
    print_series(
        "Figure 8b: stressmark AVF of queueing structures per scenario",
        [
            {"scenario": scenario, **{s.value: value for s, value in avf.items()}}
            for scenario, avf in result.queueing_avf.items()
        ],
    )
    for scenario in ("rhc", "edr"):
        print_series(f"Figure 8{'c' if scenario == 'rhc' else 'd'}: knob settings ({scenario})",
                     [{"knob": k, "value": v} for k, v in result.knob_tables[scenario].items()])
    print_series("Stressmark core SER per scenario (cf. Table III column 1)",
                 [{"scenario": s, "core_ser": v} for s, v in result.core_ser.items()])

    # Figure 8a values.
    assert result.fault_rate_table["rhc"]["rob"] == 0.25
    assert result.fault_rate_table["edr"]["lq_data"] == 0.0

    # Adaptation: protecting ROB/LQ/SQ lowers the achievable worst case.
    assert result.core_ser["baseline"] > result.core_ser["rhc"] > result.core_ser["edr"]

    # The baseline stressmark keeps the memory queues highly vulnerable.
    assert result.queueing_avf["baseline"][StructureName.ROB] > 0.6
    assert result.queueing_avf["baseline"][StructureName.LQ_TAG] > 0.5
