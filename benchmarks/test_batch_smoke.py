"""Batch evaluation-plane gate (tier-2 ``batch_smoke``).

Four checks on the population-at-once kernel planes (ARCHITECTURE.md,
"Batch evaluation plane" and "Vector kernel plane"):

* **Parity** — one GA-generation-shaped population of derived stressmarks
  per config is simulated twice, once through the ``batch`` kernel backend
  (one config-specialized kernel, shared warm state, operand plans) and
  once through the interpreted reference loop, and the canonical
  per-structure AVF / group SER payloads are compared byte for byte at
  full ``repr`` precision — the same discipline as the AVF golden gate.
* **Vector parity** — the same populations through the ``vector`` backend
  (numpy-precomputed operand columns, flat-array hierarchy replica),
  byte-compared against the interpreted payloads.  Skipped with an
  explicit notice when numpy is not installed.
* **Throughput floor** — the batch-vs-per-genome microbenchmark
  (:func:`repro.experiments.bench.bench_batch_speedup`) is rerun and its
  ``speedup`` held to the first ``kernel_batch`` baseline recorded in
  ``BENCH_ga.json`` minus the shared 30% regression allowance; the batch
  plane must also never be slower than the per-genome path it replaces.
* **Vector throughput floor** — same protocol for
  :func:`repro.experiments.bench.bench_vector_speedup` against the first
  ``kernel_vector`` baseline: the vector plane must never be slower than
  the batch plane it builds on.

Run via ``make batch-smoke`` or ``REPRO_BATCH_SMOKE=1``; skipped in plain
test runs (the parity matrix takes tens of seconds).
"""

from __future__ import annotations

import difflib
import json
import os

import pytest

from _bench_utils import MAX_REGRESSION, ga_bench_path
from repro.api.registry import CONFIGS
from repro.avf.analysis import StructureGroup
from repro.avf.report import build_report
from repro.experiments.bench import baseline_entry, bench_batch_speedup, bench_vector_speedup
from repro.stressmark.generator import StressmarkGenerator, reference_knobs
from repro.uarch import kernel_batch, kernel_vector
from repro.uarch.kernel_backends import BATCH, INTERPRETED, VECTOR
from repro.uarch.pipeline import OutOfOrderCore

pytestmark = [pytest.mark.batch_smoke]
if not os.environ.get("REPRO_BATCH_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(
            reason="batch smoke disabled (set REPRO_BATCH_SMOKE=1 or run `make batch-smoke`)"
        )
    )

#: The parity matrix: both the paper baseline and the flag-gated extensions.
SMOKE_CONFIGS = ("baseline", "extended")
POPULATION = 6
INSTRUCTIONS = 4_000


def _population_payload(config_name: str, backend) -> str:
    """Canonical AVF/SER JSON of one simulated population (byte-comparable)."""
    config = CONFIGS.create(config_name)
    generator = StressmarkGenerator(config=config, max_instructions=INSTRUCTIONS)
    knobs = reference_knobs(config)
    programs = [
        generator.codegen.generate(knobs.derive(random_seed=seed))
        for seed in range(1, POPULATION + 1)
    ]
    core = OutOfOrderCore(config, seed=generator.simulation_seed)
    results = backend.run_many(core, programs, INSTRUCTIONS)
    payload: dict[str, object] = {}
    for index, result in enumerate(results):
        report = build_report(result, generator.fault_rates)
        payload[f"{config_name}/genome-{index}"] = {
            "cycles": report.total_cycles,
            "instructions": report.committed_instructions,
            "avf": {s.value: repr(v) for s, v in report.structure_avf.items()},
            "ser": {g.value: repr(report.ser(g)) for g in StructureGroup},
        }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


class TestBatchParity:
    @pytest.mark.parametrize("config_name", SMOKE_CONFIGS)
    def test_population_identical_under_batch_plane(self, config_name):
        kernel_batch.clear_batch_caches()
        batch_payload = _population_payload(config_name, BATCH)
        assert kernel_batch.STATS.batch_runs >= POPULATION, (
            "batch kernel never engaged — the gate compared nothing"
        )
        interpreted_payload = _population_payload(config_name, INTERPRETED)
        if batch_payload != interpreted_payload:
            diff = "\n".join(
                difflib.unified_diff(
                    interpreted_payload.splitlines(), batch_payload.splitlines(),
                    fromfile="interpreted", tofile="batch", lineterm="", n=2,
                )
            )
            pytest.fail(f"batch plane diverged from the interpreter:\n{diff[:4000]}")


class TestVectorParity:
    @pytest.mark.parametrize("config_name", SMOKE_CONFIGS)
    def test_population_identical_under_vector_plane(self, config_name):
        if not kernel_vector.numpy_available():
            pytest.skip(
                "numpy not installed — vector plane untested; install the "
                "[vector] extra ('pip install repro-avf-stressmark[vector]') "
                "to gate it"
            )
        kernel_vector.clear_vector_caches()
        kernel_batch.clear_batch_caches()
        vector_payload = _population_payload(config_name, VECTOR)
        assert kernel_vector.STATS.vector_runs >= POPULATION, (
            "vector kernel never engaged — the gate compared nothing "
            f"(fallbacks: {kernel_vector.STATS.fallbacks})"
        )
        interpreted_payload = _population_payload(config_name, INTERPRETED)
        if vector_payload != interpreted_payload:
            diff = "\n".join(
                difflib.unified_diff(
                    interpreted_payload.splitlines(), vector_payload.splitlines(),
                    fromfile="interpreted", tofile="vector", lineterm="", n=2,
                )
            )
            pytest.fail(f"vector plane diverged from the interpreter:\n{diff[:4000]}")


class TestBatchThroughput:
    def test_batch_speedup_floor(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        metrics = bench_batch_speedup()
        assert metrics["kernel"], "kernel path inactive despite REPRO_KERNEL being unset"
        assert metrics["deterministic"], "batch and per-genome paths disagreed"
        assert metrics["speedup"] >= 1.0, (
            f"batch plane ({metrics['batch_seconds']:.3f}s) slower than the "
            f"per-genome path ({metrics['source_seconds']:.3f}s) it replaces"
        )
        recorded = baseline_entry(
            ga_bench_path(),
            lambda entry: isinstance(entry.get("kernel_batch"), dict)
            and entry["kernel_batch"].get("kernel"),
        )
        if recorded is None:
            pytest.skip("no recorded batch baseline (run `python -m repro bench` first)")
        baseline = recorded["kernel_batch"]["speedup"]
        floor = baseline * (1.0 - MAX_REGRESSION)
        assert metrics["speedup"] >= floor, (
            f"batch speedup {metrics['speedup']:.2f}x fell below recorded "
            f"baseline {baseline:.2f}x (-{MAX_REGRESSION:.0%} floor {floor:.2f}x)"
        )


class TestVectorThroughput:
    def test_vector_speedup_floor(self, monkeypatch):
        if not kernel_vector.numpy_available():
            pytest.skip(
                "numpy not installed — vector throughput untested; install "
                "the [vector] extra to gate it"
            )
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        metrics = bench_vector_speedup()
        assert metrics["available"], "vector probe unavailable despite numpy importing"
        assert metrics["kernel"], "kernel path inactive despite REPRO_KERNEL being unset"
        assert metrics["deterministic"], "vector and batch planes disagreed"
        assert metrics["speedup"] >= 1.0, (
            f"vector plane ({metrics['vector_seconds']:.3f}s) slower than the "
            f"batch plane ({metrics['batch_seconds']:.3f}s) it builds on"
        )
        recorded = baseline_entry(
            ga_bench_path(),
            lambda entry: isinstance(entry.get("kernel_vector"), dict)
            and entry["kernel_vector"].get("available")
            and entry["kernel_vector"].get("kernel"),
        )
        if recorded is None:
            pytest.skip("no recorded vector baseline (run `python -m repro bench` first)")
        baseline = recorded["kernel_vector"]["speedup"]
        floor = baseline * (1.0 - MAX_REGRESSION)
        assert metrics["speedup"] >= floor, (
            f"vector speedup {metrics['speedup']:.2f}x fell below recorded "
            f"baseline {baseline:.2f}x (-{MAX_REGRESSION:.0%} floor {floor:.2f}x)"
        )
