"""Chaos smoke gate (tier-2 ``chaos_smoke``, run via ``make chaos-smoke``).

End-to-end check of the fault-tolerance contract under injected chaos
(see :mod:`repro.testing.chaos`): a jobs=4 GA stressmark search whose
workers are being killed must complete with results byte-identical to a
clean serial run of the same seed, recording its retries/restarts in the
result provenance — and a result store whose append is torn mid-record
must salvage on reopen, recompute the lost result, and come out clean
under ``repro fsck``.  Like the other tier-2 gates, the suite only runs
when explicitly requested:

    make chaos-smoke
    # or
    REPRO_CHAOS_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_chaos_smoke.py -q
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.api import RunSpec, Session
from repro.store.fsck import fsck_store
from repro.testing.chaos import CHAOS_ENV_VAR, CHAOS_SEED_ENV_VAR

pytestmark = [pytest.mark.chaos_smoke]
if not os.environ.get("REPRO_CHAOS_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="chaos smoke disabled (set REPRO_CHAOS_SMOKE=1 or run `make chaos-smoke`)")
    )

_SCALE = {
    "workload_instructions": 1500,
    "stressmark_instructions": 2000,
    "ga_population": 4,
    "ga_generations": 3,
}


def test_ga_under_worker_kills_is_byte_identical(monkeypatch):
    """jobs=4 GA with every worker killed on its first task == clean serial.

    The ``worker:exit:1.0:1`` clause makes each worker process die once;
    respawned workers die again, so the pool eventually degrades to serial
    — exercising kill detection, respawn, retry accounting and graceful
    degradation in one run.  The search outcome must not change at all.
    """
    spec = RunSpec(kind="stressmark", name="chaos_smoke/sm", scale_overrides=_SCALE, retries=8)

    with Session(jobs=1) as session:
        reference = session.run(spec)

    monkeypatch.setenv(CHAOS_ENV_VAR, "worker:exit:1.0:1")
    monkeypatch.setenv(CHAOS_SEED_ENV_VAR, "2010")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with Session(jobs=4) as session:
            chaotic = session.run(spec)
    monkeypatch.delenv(CHAOS_ENV_VAR)

    assert json.dumps(chaotic.rows) == json.dumps(reference.rows)
    assert chaotic.knobs == reference.knobs
    assert chaotic.ga["best_fitness"] == reference.ga["best_fitness"]
    assert chaotic.ga["best_fitness_per_generation"] == reference.ga["best_fitness_per_generation"]
    assert chaotic.ga["quarantined"] == 0

    resilience = chaotic.provenance["resilience"]
    assert resilience["worker_restarts"] > 0
    assert resilience["failures"] > 0
    assert resilience["retries"] > 0
    assert resilience["quarantined"] == 0


def test_truncated_store_write_salvages_and_recovers(tmp_path, monkeypatch):
    """A store append torn mid-record salvages on reopen and recomputes."""
    spec_a = RunSpec(
        kind="simulate", name="chaos_smoke/wl",
        workloads=("crc32_proxy", "sha_proxy"),
        scale_overrides={"workload_instructions": 1500},
    )
    spec_b = spec_a.replace(fault_rates="rhc")

    with Session() as session:
        reference = [session.run(spec_a), session.run(spec_b)]

    # First (and only) store append of this session is torn in half,
    # exactly like a crash mid-write.
    store_dir = tmp_path / "store"
    monkeypatch.setenv(CHAOS_ENV_VAR, "result-store:truncate:1.0:1")
    with Session(store=store_dir) as session:
        session.run(spec_a)
    monkeypatch.delenv(CHAOS_ENV_VAR)

    # The torn record is visible to fsck as salvageable damage.
    report = fsck_store(store_dir)
    assert any("truncated final record" in finding.problem for finding in report.findings)

    # Reopening salvages the tail; the lost result recomputes, the rest
    # run fresh, and every row is byte-identical to the clean reference.
    with Session(store=store_dir) as session:
        recovered = [session.run(spec_a), session.run(spec_b)]
    for fresh, clean in zip(recovered, reference, strict=True):
        assert json.dumps(fresh.rows) == json.dumps(clean.rows)

    # A replay session serves both from the now-complete store.
    with Session(store=store_dir) as session:
        replayed = [session.run(spec_a), session.run(spec_b)]
    for again, fresh in zip(replayed, recovered, strict=True):
        assert json.dumps(again.rows) == json.dumps(fresh.rows)

    assert fsck_store(store_dir).clean
