"""Figure 4: stressmark vs MiBench SER on the baseline configuration."""

from __future__ import annotations

from repro.avf.analysis import StructureGroup
from repro.experiments.figures import figure4

from _bench_utils import print_series


def test_figure4_stressmark_vs_mibench(benchmark, bench_context):
    result = benchmark.pedantic(figure4, args=(bench_context,), iterations=1, rounds=1)

    print_series("Figure 4: SER (units/bit), stressmark vs MiBench",
                 [row.as_dict() for row in result.rows])
    print(f"\nstressmark margins over best MiBench program: "
          f"QS {result.stressmark_margin(StructureGroup.QS):.2f}x  "
          f"DL1+DTLB {result.stressmark_margin(StructureGroup.DL1_DTLB):.2f}x  "
          f"L2 {result.stressmark_margin(StructureGroup.L2):.2f}x "
          "(the paper notes MiBench-induced SER is low)")

    # MiBench coverage is poor, so margins are large (well above the SPEC ones).
    for group in (StructureGroup.QS, StructureGroup.QS_RF, StructureGroup.DL1_DTLB, StructureGroup.L2):
        assert result.stressmark_margin(group) > 1.2
