"""Performance regression harness (tier-2 ``perf_smoke`` gate).

These tests time the simulator's hot paths at quick scale and compare
against the baselines recorded in ``BENCH_pipeline.json`` (written by
``python -m repro bench``; see PERFORMANCE.md).  Timing asserts are
inherently machine-sensitive, so the regression gate only runs when
explicitly requested:

    make bench-smoke
    # or
    REPRO_PERF_SMOKE=1 PYTHONPATH=src python -m pytest benchmarks/test_perf_simulator.py -q

In a plain test run the suite is skipped, keeping tier-1 fast and stable.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.bench import (
    PIPELINE_BENCH_FILE,
    baseline_entry,
    bench_ga,
    bench_ledger,
    bench_parallel_speedup,
    bench_pipeline,
)

#: Allowed single-thread slowdown versus the recorded baseline (shared
#: with the kernel-smoke gate via _bench_utils).
from _bench_utils import MAX_REGRESSION  # noqa: E402

pytestmark = [pytest.mark.perf_smoke]
if not os.environ.get("REPRO_PERF_SMOKE"):
    pytestmark.append(
        pytest.mark.skip(reason="perf smoke disabled (set REPRO_PERF_SMOKE=1 or run `make bench-smoke`)")
    )


def _bench_path() -> Path:
    # The trajectory file lives in the repository root (where `repro bench`
    # is run from); walk up from this file so the test works from any cwd.
    here = Path(__file__).resolve().parent.parent / PIPELINE_BENCH_FILE
    return here if here.exists() else Path(PIPELINE_BENCH_FILE)


def _pipeline_baseline() -> dict | None:
    return baseline_entry(_bench_path())


def _ledger_baseline() -> dict | None:
    """First recorded entry carrying ledger metrics (added with the ledger)."""
    entry = baseline_entry(_bench_path(), lambda e: bool(e.get("ledger")))
    return entry["ledger"] if entry else None


class TestSimulatorPerf:
    def test_single_simulation_does_not_regress(self):
        """50k-op detailed simulation stays within 30% of the baseline."""
        metrics = bench_pipeline(instructions=50_000, repeats=3)
        assert metrics["total_cycles"] > 0
        assert metrics["instructions_per_second"] > 0
        baseline = _pipeline_baseline()
        if baseline is None:
            pytest.skip("no recorded baseline (run `python -m repro bench` first)")
        budget = baseline["seconds"] * (1.0 + MAX_REGRESSION)
        assert metrics["seconds"] <= budget, (
            f"50k-op simulation took {metrics['seconds']:.3f}s, "
            f"baseline {baseline['seconds']:.3f}s (+{MAX_REGRESSION:.0%} budget {budget:.3f}s)"
        )

    def test_ledger_event_throughput_does_not_regress(self):
        """The ledger's lifetime-event path stays within budget of its baseline."""
        metrics = bench_ledger(events=100_000, repeats=3)
        assert metrics["events_per_second"] > 0
        recorded = _ledger_baseline()
        if not recorded:
            pytest.skip("no recorded ledger baseline (run `python -m repro bench` first)")
        floor = recorded["events_per_second"] * (1.0 - MAX_REGRESSION)
        assert metrics["events_per_second"] >= floor, (
            f"ledger event throughput {metrics['events_per_second']:.0f}/s fell below "
            f"baseline {recorded['events_per_second']:.0f}/s (-{MAX_REGRESSION:.0%} floor {floor:.0f}/s)"
        )

    def test_ga_generation_completes_quickly(self):
        """One quick-scale GA search finishes and reports cache statistics."""
        metrics = bench_ga(jobs=1, generations=2, population=6)
        assert metrics["evaluations"] > 0
        assert metrics["cache_hits"] + metrics["cache_misses"] >= metrics["evaluations"]
        assert metrics["seconds"] > 0

    def test_parallel_backend_is_deterministic_and_measured(self):
        """Process-pool evaluation matches serial results; timings split."""
        metrics = bench_parallel_speedup(jobs=2, batch=4)
        assert metrics["deterministic"], "parallel fitness values diverged from serial"
        assert metrics["speedup"] > 0
        assert metrics["warmup_seconds"] > 0
        assert metrics["steady_seconds"] > 0
        assert metrics["cores"] >= 1

    def test_kernel_throughput_floor(self):
        """The specialized-kernel path stays within budget of its baseline.

        The same floor (shared via ``_bench_utils``) also runs with the
        parity matrix in the dedicated ``make kernel-smoke`` gate; keeping
        it in bench-smoke means a plain perf run cannot miss a kernel
        regression.
        """
        from _bench_utils import assert_kernel_throughput_floor

        metrics = bench_pipeline(instructions=50_000, repeats=3)
        if not metrics["kernel"]:
            pytest.skip("kernel path disabled via REPRO_KERNEL")
        assert_kernel_throughput_floor(metrics, pytest)
