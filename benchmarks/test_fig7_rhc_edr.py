"""Figure 7: SER induced on the RHC and EDR protected configurations."""

from __future__ import annotations

from repro.avf.analysis import StructureGroup
from repro.experiments.figures import figure7

from _bench_utils import print_series


def test_figure7_rhc_and_edr_ser(benchmark, bench_context):
    results = benchmark.pedantic(figure7, args=(bench_context,), iterations=1, rounds=1)

    for label, title in (("rhc", "Figure 7a: Config RHC"), ("edr", "Figure 7b: Config EDR")):
        print_series(title, [row.as_dict() for row in results[label].rows])
        print(f"stressmark core margin over best workload ({label}): "
              f"{results[label].stressmark_margin(StructureGroup.QS_RF):.2f}x "
              "(paper: ~1.3x)")

    # The stressmark must exceed every workload in the core on both scenarios.
    for comparison in results.values():
        assert comparison.stressmark_margin(StructureGroup.QS_RF) > 1.0

    # Protection lowers the absolute worst case: RHC core SER below baseline-like levels,
    # EDR below RHC.
    rhc_core = results["rhc"].stressmark_row().ser[StructureGroup.QS_RF]
    edr_core = results["edr"].stressmark_row().ser[StructureGroup.QS_RF]
    assert edr_core < rhc_core
