"""Section VI analysis: instantaneous worst-case bound vs the stressmark.

The paper computes a back-of-the-envelope instantaneous worst-case queue SER
of 0.899 units/bit for the baseline configuration and argues the stressmark's
sustained 0.797 units/bit is close to that (unsustainable) ceiling, which is
the paper's evidence that the GA result is near the true worst case.
"""

from __future__ import annotations

from repro.avf.analysis import StructureGroup, instantaneous_worst_case_bound
from repro.uarch.config import baseline_config, config_a

from _bench_utils import print_series


def test_instantaneous_bound_vs_stressmark(benchmark, bench_context):
    bound = benchmark(instantaneous_worst_case_bound, baseline_config())

    stressmark = bench_context.stressmark()
    sustained = stressmark.report.ser(StructureGroup.QS)

    print_series(
        "Section VI: instantaneous bound vs sustained stressmark (queues, units/bit)",
        [
            {"quantity": "instantaneous worst-case bound (paper: 0.899)", "value": bound},
            {"quantity": "stressmark sustained queue SER (paper: 0.797)", "value": sustained},
            {"quantity": "fraction of bound achieved", "value": sustained / bound},
            {"quantity": "config A bound", "value": instantaneous_worst_case_bound(config_a())},
        ],
    )

    assert 0.85 < bound < 0.95           # paper: 0.899
    assert sustained < bound             # sustained SER cannot exceed the instantaneous ceiling
    assert sustained / bound > 0.7       # ...but the stressmark gets close to it
