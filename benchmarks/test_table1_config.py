"""Table I: baseline processor configuration (reproduction sanity benchmark)."""

from __future__ import annotations

from repro.experiments.tables import table1

from _bench_utils import print_series


def test_table1_baseline_configuration(benchmark):
    """Regenerate Table I and benchmark the (cheap) configuration construction."""
    table = benchmark(table1)
    print_series("Table I: Baseline configuration", [{"parameter": k, "value": v} for k, v in table.items()])
    assert table["ROB"].startswith("80 entries")
    assert table["Integer Issue Queue"].startswith("20 entries")
